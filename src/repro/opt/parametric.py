"""Parametric root bounds and exact search for recourse signature programs.

The recourse IP for one ``(current codes, context)`` signature is a
multiple-choice covering program

    min  sum_i c_i x_i
    s.t. sum_i g_i x_i >= needed
         sum_{i in attribute a} x_i <= 1      for each actionable a
         x in {0, 1}

whose structure (costs ``c``, gains ``g``, attribute grouping) depends
only on the *skeleton* — the current actionable codes — while ``needed``
varies per signature and refinement round.  Dualising the covering row
gives a one-dimensional concave dual

    L(y) = needed * y - sum_a h_a(y),
    h_a(y) = max(0, max_i (g_i * y - c_i)),      y >= 0,

whose maximum over ``y`` equals the LP root-relaxation bound exactly
(LPs have no Lagrangian duality gap, whichever constraints are
dualised).  Every ``h_a`` is a piecewise-linear maximum of lines fixed
by the skeleton alone, so the candidate maximisers — the breakpoint grid
— are computed once per skeleton; after that, every signature's root
bound *and* every branch-and-bound node bound is a single vectorised
evaluation with no LP solver call.  That is what lets a cohort audit
solve hundreds of near-identical signature programs at microseconds
each instead of paying a cold MILP setup per signature.

Everything here operates on plain arrays and is importable from a
freshly spawned worker process (no solver state, no table handles), so
the same functions back the serial path, the process-pool path, and the
anytime certificates.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.utils.exceptions import RecourseInfeasibleError

#: slack used when testing whether an action set covers ``needed`` —
#: mirrors the feasibility tolerance of the HiGHS MILP path.
FEASIBILITY_TOL = 1e-9

#: strict-improvement threshold for recording a new incumbent.
_RECORD_EPS = 1e-12

#: seeding slack: an externally supplied incumbent bound is loosened by
#: this before the search starts, so the search still visits (and
#: returns) its own canonical optimal solution.  This keeps the returned
#: action set independent of *which* warm start was available — solves
#: with and without donors are bit-identical.
SEED_EPS = 1e-9

#: certificate slack: a heuristic solution within this of the LP root
#: bound is accepted as optimal without running the exact search.
CERTIFICATE_TOL = 2e-10


class SignatureSkeleton:
    """Solve-ready structure for one current-code tuple.

    Parameters are parallel per-attribute sequences: candidate codes
    (excluding the current code), their costs, and their linearised
    log-odds gains.  The constructor derives everything the bound
    evaluations and the exact search need:

    * the breakpoint grid of the 1-D dual and per-attribute ``h_a``
      rows evaluated on it (suffix-summed in search order),
    * suffix sums of the best achievable gain (exact feasibility test),
    * per-attribute option orderings for deterministic branching,
    * a cached greedy preference order.

    Instances are cheap enough to rebuild inside worker processes from
    the plain payload dict (:meth:`payload` / :meth:`from_payload`).
    """

    def __init__(
        self,
        attributes: Sequence[str],
        current: Sequence[int],
        codes: Sequence[Sequence[int]],
        costs: Sequence[Sequence[float]],
        gains: Sequence[Sequence[float]],
    ):
        self.attributes = list(attributes)
        self.current = tuple(int(c) for c in current)
        self.codes = [np.asarray(c, dtype=np.int64) for c in codes]
        self.costs = [np.asarray(c, dtype=np.float64) for c in costs]
        self.gains = [np.asarray(g, dtype=np.float64) for g in gains]
        n = len(self.attributes)
        if not (len(self.codes) == len(self.costs) == len(self.gains) == n):
            raise ValueError("per-attribute arrays must align with attributes")

        self.n_variables = int(sum(len(c) for c in self.codes))
        # One exclusivity row per attribute with candidates + the
        # sufficiency row: mirrors IntegerProgram.n_constraints.
        self.n_constraints = int(sum(len(c) > 0 for c in self.codes)) + 1

        best_gain = np.array(
            [float(g.max()) if len(g) else 0.0 for g in self.gains]
        )
        # Search order: most influential attribute first (descending best
        # gain, stable) — tightens remaining-needed fastest.
        self.order = np.argsort(-best_gain, kind="stable")

        # Per-rank option tables.  Each rank's options include the no-op
        # (gain 0, cost 0, code = current) and are sorted by descending
        # gain, then ascending cost, then code — the deterministic
        # branching order the bit-identity guarantees rest on.
        self.opt_codes: list[np.ndarray] = []
        self.opt_costs: list[np.ndarray] = []
        self.opt_gains: list[np.ndarray] = []
        grid_points = [0.0]
        h_rows = np.zeros((n, 0))
        per_attr_lines = []
        for rank, a in enumerate(self.order):
            codes_a = np.concatenate([self.codes[a], [self.current[a]]])
            costs_a = np.concatenate([self.costs[a], [0.0]])
            gains_a = np.concatenate([self.gains[a], [0.0]])
            key = np.lexsort((codes_a, costs_a, -gains_a))
            self.opt_codes.append(codes_a[key])
            self.opt_costs.append(costs_a[key])
            self.opt_gains.append(gains_a[key])
            # Dual lines g_i*y - c_i (the no-op contributes the 0 line).
            slopes, intercepts = gains_a, -costs_a
            per_attr_lines.append((slopes, intercepts))
            # Candidate breakpoints: all pairwise intersections with
            # positive y.  A superset of the true envelope breakpoints
            # is harmless (h is evaluated directly on the grid), a
            # missing one would not be — so prefer the exhaustive set.
            ds = slopes[:, None] - slopes[None, :]
            db = intercepts[None, :] - intercepts[:, None]
            with np.errstate(divide="ignore", invalid="ignore"):
                ys = db / ds
            ys = ys[np.isfinite(ys) & (ys > 0.0)]
            if len(ys):
                grid_points.append(np.unique(ys))

        self.grid = np.unique(np.concatenate([np.atleast_1d(p) for p in grid_points]))
        h_rows = np.zeros((n, len(self.grid)))
        for rank, (slopes, intercepts) in enumerate(per_attr_lines):
            h_rows[rank] = np.max(
                slopes[:, None] * self.grid[None, :] + intercepts[:, None], axis=0
            )
        # suffix_h[k] = sum of h rows for ranks k.. (row n is all zeros).
        self.suffix_h = np.zeros((n + 1, len(self.grid)))
        self.suffix_h[:n] = np.cumsum(h_rows[::-1], axis=0)[::-1]
        # suffix_gain[k]: best achievable gain from ranks k.. — the
        # exact integral (and LP) feasibility frontier.
        positive_best = np.maximum(best_gain[self.order], 0.0)
        self.suffix_gain = np.zeros(n + 1)
        self.suffix_gain[:n] = np.cumsum(positive_best[::-1])[::-1]
        # suffix_negcost[k]: cost of taking every strictly negative-cost
        # option from ranks k.. — 0 for ordinary non-negative pricing.
        min_cost = np.array(
            [min(0.0, float(c.min())) if len(c) else 0.0 for c in self.costs]
        )
        self.suffix_negcost = np.zeros(n + 1)
        self.suffix_negcost[:n] = np.cumsum(min_cost[self.order][::-1])[::-1]

        # Greedy preference order over (rank, option) pairs with
        # positive gain: free/negative-cost options first (by descending
        # gain), then by descending gain/cost ratio; ties resolve by
        # rank then option index.
        entries = []
        for rank in range(n):
            for j in range(len(self.opt_gains[rank])):
                gain = float(self.opt_gains[rank][j])
                cost = float(self.opt_costs[rank][j])
                if gain <= 0.0:
                    continue
                if cost <= FEASIBILITY_TOL:
                    entries.append((0, -gain, rank, j))
                else:
                    entries.append((1, -gain / cost, rank, j))
        entries.sort()
        self.greedy_order = [(rank, j) for _, _, rank, j in entries]
        # Cheapest strictly negative-cost option per rank (or -1).
        self.negcost_option = np.full(n, -1, dtype=np.int64)
        for rank in range(n):
            costs_r = self.opt_costs[rank]
            if len(costs_r) and float(costs_r.min()) < 0.0:
                self.negcost_option[rank] = int(np.argmin(costs_r))

    # -- (de)serialisation for process-pool payloads -----------------------

    def payload(self) -> dict:
        """Plain picklable dict this skeleton can be rebuilt from."""
        return {
            "attributes": list(self.attributes),
            "current": self.current,
            "codes": [c.tolist() for c in self.codes],
            "costs": [c.tolist() for c in self.costs],
            "gains": [g.tolist() for g in self.gains],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SignatureSkeleton":
        return cls(**payload)

    # -- bounds ------------------------------------------------------------

    def lp_bound(self, needed: float, level: int = 0) -> float:
        """LP relaxation bound over the ranks ``level..``.

        Returns ``inf`` when not even the per-attribute best gains reach
        ``needed`` — which is also exact *integral* infeasibility, since
        picking the best gain per attribute is a feasible 0-1 point.
        """
        if needed > self.suffix_gain[level] + FEASIBILITY_TOL:
            return np.inf
        return float(np.max(needed * self.grid - self.suffix_h[level]))


def greedy_cover(
    skeleton: SignatureSkeleton, needed: float
) -> tuple[np.ndarray, float] | None:
    """Deterministic gain/cost greedy covering of ``needed``.

    Returns ``(selection, cost)`` where ``selection[rank]`` is an option
    index (or -1 for no action), or ``None`` when no action set can
    cover ``needed`` at all.  Used both as the anytime-mode solution and
    as the seed incumbent for the exact search.
    """
    n = len(skeleton.attributes)
    selection = np.full(n, -1, dtype=np.int64)
    gain_sum = 0.0
    if needed > skeleton.suffix_gain[0] + FEASIBILITY_TOL:
        return None
    if needed > FEASIBILITY_TOL:
        for rank, j in skeleton.greedy_order:
            if selection[rank] != -1:
                continue
            selection[rank] = j
            gain_sum += float(skeleton.opt_gains[rank][j])
            if gain_sum >= needed - FEASIBILITY_TOL:
                break
        if gain_sum < needed - FEASIBILITY_TOL:
            # Ratio order stalled: fall back to the per-attribute best
            # gain, which covers whenever covering is possible.
            selection.fill(-1)
            gain_sum = 0.0
            for rank in range(n):
                gains_r = skeleton.opt_gains[rank]
                if len(gains_r) and float(gains_r[0]) > 0.0:
                    selection[rank] = 0  # options sorted by descending gain
                    gain_sum += float(gains_r[0])
            if gain_sum < needed - FEASIBILITY_TOL:
                return None
    # Trim: drop the costliest redundant actions first.
    chosen = [
        (float(skeleton.opt_costs[r][selection[r]]), r)
        for r in range(n)
        if selection[r] != -1
    ]
    for cost_r, rank in sorted(chosen, key=lambda t: (-t[0], t[1])):
        gain_r = float(skeleton.opt_gains[rank][selection[rank]])
        if gain_sum - gain_r >= needed - FEASIBILITY_TOL and cost_r >= 0.0:
            selection[rank] = -1
            gain_sum -= gain_r
    # Attach strictly negative-cost options that do not break coverage.
    for rank in range(n):
        j = int(skeleton.negcost_option[rank])
        if j >= 0 and selection[rank] == -1:
            gain_j = float(skeleton.opt_gains[rank][j])
            if gain_sum + gain_j >= needed - FEASIBILITY_TOL:
                selection[rank] = j
                gain_sum += gain_j
    cost = float(
        sum(skeleton.opt_costs[r][selection[r]] for r in range(n) if selection[r] != -1)
    )
    return selection, cost


def solve_exact(
    skeleton: SignatureSkeleton,
    needed: float,
    seed_cost: float,
    node_limit: int | None = None,
) -> tuple[np.ndarray | None, float, int]:
    """Exact depth-first search with parametric-dual node bounds.

    ``seed_cost`` is the best known feasible cost (greedy / warm-start
    donor); it only tightens pruning.  The search still returns its own
    canonical optimal selection (see :data:`SEED_EPS`), so the answer is
    independent of which warm starts happened to be available.

    Returns ``(selection, objective, nodes)``; ``selection`` is ``None``
    only if no solution strictly below ``seed_cost + SEED_EPS`` was
    recorded (the caller then falls back to the seed's own selection).
    """
    n = len(skeleton.attributes)
    best = seed_cost + SEED_EPS
    best_sel: np.ndarray | None = None
    selection = np.full(n, -1, dtype=np.int64)
    nodes = 0

    def recurse(k: int, cost: float, remaining: float) -> None:
        nonlocal best, best_sel, nodes
        nodes += 1
        if node_limit is not None and nodes > node_limit:
            raise RecourseInfeasibleError(
                f"signature search node limit ({node_limit}) exceeded"
            )
        if remaining <= FEASIBILITY_TOL and skeleton.suffix_negcost[k] == 0.0:
            # Covered, and no negative-cost option below could reduce
            # the objective: stopping here is the optimal completion.
            if cost < best - _RECORD_EPS:
                best = cost
                best_sel = selection.copy()
                best_sel[k:] = -1
            return
        if k == n:
            if remaining <= FEASIBILITY_TOL and cost < best - _RECORD_EPS:
                best = cost
                best_sel = selection.copy()
            return
        bound = skeleton.lp_bound(remaining, k)
        if cost + bound >= best - _RECORD_EPS:
            return
        gains_k = skeleton.opt_gains[k]
        costs_k = skeleton.opt_costs[k]
        for j in range(len(gains_k)):
            selection[k] = j
            recurse(k + 1, cost + float(costs_k[j]), remaining - float(gains_k[j]))
        selection[k] = -1

    recurse(0, 0.0, needed)
    if best_sel is None:
        return None, seed_cost, nodes
    return best_sel, float(best), nodes


def selection_to_codes(
    skeleton: SignatureSkeleton, selection: np.ndarray
) -> dict[str, int]:
    """``{attribute: new code}`` for the non-trivial entries of a selection."""
    chosen: dict[str, int] = {}
    for rank, j in enumerate(selection):
        if j < 0:
            continue
        a = int(skeleton.order[rank])
        code = int(skeleton.opt_codes[rank][j])
        if code != skeleton.current[a]:
            chosen[skeleton.attributes[a]] = code
    return chosen


def selection_stats(
    skeleton: SignatureSkeleton, selection: np.ndarray
) -> tuple[float, float]:
    """(total cost, total gain) of a selection."""
    cost = 0.0
    gain = 0.0
    for rank, j in enumerate(selection):
        if j >= 0:
            cost += float(skeleton.opt_costs[rank][j])
            gain += float(skeleton.opt_gains[rank][j])
    return cost, gain


def incumbent_from_codes(
    skeleton: SignatureSkeleton, chosen: dict[str, int], needed: float
) -> float | None:
    """Cost of a donor action set mapped onto this skeleton, if feasible.

    Donor actions that land on this signature's current code degrade to
    no-ops; the rest are re-priced and re-weighted with *this*
    skeleton's costs and gains.  Returns ``None`` when the mapped set
    does not cover ``needed``.
    """
    cost = 0.0
    gain = 0.0
    index = {a: i for i, a in enumerate(skeleton.attributes)}
    for attribute, code in chosen.items():
        a = index.get(attribute)
        if a is None:
            return None
        if int(code) == skeleton.current[a]:
            continue
        hits = np.nonzero(skeleton.codes[a] == int(code))[0]
        if not len(hits):
            return None
        i = int(hits[0])
        cost += float(skeleton.costs[a][i])
        gain += float(skeleton.gains[a][i])
    if gain >= needed - FEASIBILITY_TOL:
        return cost
    return None
