"""Branch-and-bound for binary integer programs.

Depth-first best-bound search over LP relaxations solved with scipy's
HiGHS backend.  Branching variable: most fractional.  The search is exact
— it terminates with the optimal integral solution or proves
infeasibility — and comfortably handles the few hundred binaries the
recourse experiments produce.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np
from scipy.optimize import linprog

from repro.opt.integer_program import IntegerProgram, IPSolution
from repro.utils.exceptions import RecourseInfeasibleError

_INTEGRALITY_TOL = 1e-6


class BranchAndBoundSolver:
    """Exact 0-1 IP solver via LP-relaxation branch and bound."""

    def __init__(self, max_nodes: int = 200_000):
        self.max_nodes = max_nodes

    def solve(self, program: IntegerProgram) -> IPSolution:
        """Solve ``program``; raise :class:`RecourseInfeasibleError` if empty."""
        c, A_ub, b_ub, A_eq, b_eq = program.matrices()
        n = program.n_variables
        if n == 0:
            return IPSolution(values={}, objective=0.0, n_nodes=0)

        counter = itertools.count()
        # Node: (lp_bound, tiebreak, lower_fix, upper_fix)
        root = self._relax(c, A_ub, b_ub, A_eq, b_eq, np.zeros(n), np.ones(n))
        if root is None:
            raise RecourseInfeasibleError("LP relaxation infeasible at the root")
        heap = [(root[0], next(counter), np.zeros(n), np.ones(n), root[1])]

        best_objective = np.inf
        best_x: np.ndarray | None = None
        n_nodes = 0

        while heap:
            bound, _, lo, hi, x_relaxed = heapq.heappop(heap)
            if bound >= best_objective - 1e-9:
                continue
            n_nodes += 1
            if n_nodes > self.max_nodes:
                raise RecourseInfeasibleError(
                    f"branch-and-bound node limit ({self.max_nodes}) exceeded"
                )
            fractional = np.abs(x_relaxed - np.round(x_relaxed))
            branch_var = int(np.argmax(fractional))
            if fractional[branch_var] <= _INTEGRALITY_TOL:
                # Integral solution: candidate incumbent.
                objective = float(c @ np.round(x_relaxed))
                if objective < best_objective - 1e-12:
                    best_objective = objective
                    best_x = np.round(x_relaxed)
                continue
            for value in (0.0, 1.0):
                lo_child, hi_child = lo.copy(), hi.copy()
                lo_child[branch_var] = value
                hi_child[branch_var] = value
                child = self._relax(c, A_ub, b_ub, A_eq, b_eq, lo_child, hi_child)
                if child is None:
                    continue
                child_bound, child_x = child
                if child_bound < best_objective - 1e-9:
                    heapq.heappush(
                        heap,
                        (child_bound, next(counter), lo_child, hi_child, child_x),
                    )

        if best_x is None:
            raise RecourseInfeasibleError("no feasible integral assignment exists")
        return IPSolution(
            values=program.assignment_from_vector(best_x),
            objective=best_objective,
            n_nodes=n_nodes,
        )

    @staticmethod
    def _relax(c, A_ub, b_ub, A_eq, b_eq, lo, hi):
        """Solve the LP relaxation with variable bounds [lo, hi]."""
        result = linprog(
            c,
            A_ub=A_ub,
            b_ub=b_ub,
            A_eq=A_eq,
            b_eq=b_eq,
            bounds=list(zip(lo, hi)),
            method="highs",
        )
        if not result.success:
            return None
        return float(result.fun), np.asarray(result.x)


def _solve_with_highs_milp(program: IntegerProgram) -> IPSolution | None:
    """Fast path: scipy's native HiGHS MILP solver.

    Returns ``None`` when the backend is unavailable so the caller can
    fall back to the pure-Python branch and bound; raises
    :class:`RecourseInfeasibleError` on proven infeasibility.
    """
    try:
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError:  # pragma: no cover - old scipy
        return None
    c, A_ub, b_ub, A_eq, b_eq = program.matrices()
    n = program.n_variables
    constraints = []
    if A_ub is not None:
        constraints.append(LinearConstraint(A_ub, -np.inf, b_ub))
    if A_eq is not None:
        constraints.append(LinearConstraint(A_eq, b_eq, b_eq))
    result = milp(
        c,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
    )
    if result.status == 2:  # infeasible
        raise RecourseInfeasibleError("no feasible integral assignment exists")
    if not result.success:  # pragma: no cover - solver hiccup
        return None
    return IPSolution(
        values=program.assignment_from_vector(result.x),
        objective=float(result.fun),
        n_nodes=0,
    )


def solve_binary_program(program: IntegerProgram, max_nodes: int = 200_000) -> IPSolution:
    """Solve ``program`` exactly.

    Uses scipy's HiGHS MILP backend when available (orders of magnitude
    faster on the ~200-binary recourse programs) and falls back to the
    pure-Python :class:`BranchAndBoundSolver` otherwise.
    """
    if program.n_variables == 0:
        return IPSolution(values={}, objective=0.0, n_nodes=0)
    solution = _solve_with_highs_milp(program)
    if solution is not None:
        return solution
    return BranchAndBoundSolver(max_nodes=max_nodes).solve(program)  # pragma: no cover
