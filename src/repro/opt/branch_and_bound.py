"""Branch-and-bound for binary integer programs.

Depth-first best-bound search over LP relaxations solved with scipy's
HiGHS backend.  Branching variable: most fractional.  The search is exact
— it terminates with the optimal integral solution or proves
infeasibility — and comfortably handles the few hundred binaries the
recourse experiments produce.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np
from scipy.optimize import linprog

from repro.opt.integer_program import IntegerProgram, IPSolution
from repro.utils.exceptions import RecourseInfeasibleError

_INTEGRALITY_TOL = 1e-6


class BranchAndBoundSolver:
    """Exact 0-1 IP solver via LP-relaxation branch and bound."""

    def __init__(self, max_nodes: int = 200_000):
        self.max_nodes = max_nodes

    def solve(
        self,
        program: IntegerProgram,
        incumbent: dict | np.ndarray | None = None,
    ) -> IPSolution:
        """Solve ``program``; raise :class:`RecourseInfeasibleError` if empty.

        ``incumbent`` optionally warm-starts the search with a known
        feasible 0-1 assignment (a ``{variable name: 0/1}`` mapping or a
        vector in variable order): its objective becomes the initial
        upper bound, so sibling-signature solutions prune the tree from
        node one.  An infeasible incumbent is ignored.
        """
        c, A_ub, b_ub, A_eq, b_eq = program.matrices()
        n = program.n_variables
        if n == 0:
            return IPSolution(values={}, objective=0.0, n_nodes=0)

        counter = itertools.count()
        # Node: (lp_bound, tiebreak, lower_fix, upper_fix)
        root = self._relax(c, A_ub, b_ub, A_eq, b_eq, np.zeros(n), np.ones(n))
        if root is None:
            raise RecourseInfeasibleError("LP relaxation infeasible at the root")
        heap = [(root[0], next(counter), np.zeros(n), np.ones(n), root[1])]

        best_objective = np.inf
        best_x: np.ndarray | None = None
        if incumbent is not None:
            x0 = self._incumbent_vector(program, incumbent)
            if x0 is not None and self._feasible(x0, A_ub, b_ub, A_eq, b_eq):
                best_objective = float(c @ x0)
                best_x = x0
        n_nodes = 0

        while heap:
            bound, _, lo, hi, x_relaxed = heapq.heappop(heap)
            if bound >= best_objective - 1e-9:
                continue
            n_nodes += 1
            if n_nodes > self.max_nodes:
                raise RecourseInfeasibleError(
                    f"branch-and-bound node limit ({self.max_nodes}) exceeded"
                )
            fractional = np.abs(x_relaxed - np.round(x_relaxed))
            branch_var = int(np.argmax(fractional))
            if fractional[branch_var] <= _INTEGRALITY_TOL:
                # Integral solution: candidate incumbent.
                objective = float(c @ np.round(x_relaxed))
                if objective < best_objective - 1e-12:
                    best_objective = objective
                    best_x = np.round(x_relaxed)
                continue
            for value in (0.0, 1.0):
                lo_child, hi_child = lo.copy(), hi.copy()
                lo_child[branch_var] = value
                hi_child[branch_var] = value
                child = self._relax(c, A_ub, b_ub, A_eq, b_eq, lo_child, hi_child)
                if child is None:
                    continue
                child_bound, child_x = child
                if child_bound < best_objective - 1e-9:
                    heapq.heappush(
                        heap,
                        (child_bound, next(counter), lo_child, hi_child, child_x),
                    )

        if best_x is None:
            raise RecourseInfeasibleError("no feasible integral assignment exists")
        return IPSolution(
            values=program.assignment_from_vector(best_x),
            objective=best_objective,
            n_nodes=n_nodes,
        )

    @staticmethod
    def _incumbent_vector(program: IntegerProgram, incumbent) -> np.ndarray | None:
        """Normalise an incumbent to a 0-1 vector in variable order."""
        if isinstance(incumbent, np.ndarray):
            x0 = np.asarray(incumbent, dtype=np.float64)
        else:
            try:
                x0 = program.vector_from_assignment(dict(incumbent))
            except (TypeError, ValueError, KeyError):
                return None
        if len(x0) != program.n_variables:
            return None
        return np.clip(np.round(x0), 0.0, 1.0)

    @staticmethod
    def _feasible(x, A_ub, b_ub, A_eq, b_eq, tol: float = 1e-9) -> bool:
        if A_ub is not None and np.any(A_ub @ x > b_ub + tol):
            return False
        if A_eq is not None and np.any(np.abs(A_eq @ x - b_eq) > tol):
            return False
        return True

    @staticmethod
    def _relax(c, A_ub, b_ub, A_eq, b_eq, lo, hi):
        """Solve the LP relaxation with variable bounds [lo, hi]."""
        result = linprog(
            c,
            A_ub=A_ub,
            b_ub=b_ub,
            A_eq=A_eq,
            b_eq=b_eq,
            bounds=list(zip(lo, hi)),
            method="highs",
        )
        if not result.success:
            return None
        return float(result.fun), np.asarray(result.x)


def _solve_with_highs_milp(
    program: IntegerProgram,
    max_nodes: int | None = None,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
) -> IPSolution | None:
    """Fast path: scipy's native HiGHS MILP solver.

    Node/time/gap budgets are forwarded through HiGHS ``options`` so the
    limits bind here too, not only in the pure-Python fallback — a
    pathological program can no longer hang a serving thread.  Returns
    ``None`` when the backend is unavailable so the caller can fall back
    to the pure-Python branch and bound; raises
    :class:`RecourseInfeasibleError` on proven infeasibility or an
    exhausted budget.
    """
    try:
        from scipy.optimize import Bounds, LinearConstraint, milp
    except ImportError:  # pragma: no cover - old scipy
        return None
    c, A_ub, b_ub, A_eq, b_eq = program.matrices()
    n = program.n_variables
    constraints = []
    if A_ub is not None:
        constraints.append(LinearConstraint(A_ub, -np.inf, b_ub))
    if A_eq is not None:
        constraints.append(LinearConstraint(A_eq, b_eq, b_eq))
    options: dict = {}
    if max_nodes is not None:
        options["node_limit"] = int(max_nodes)
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_rel_gap is not None:
        options["mip_rel_gap"] = float(mip_rel_gap)
    result = milp(
        c,
        constraints=constraints,
        integrality=np.ones(n),
        bounds=Bounds(0, 1),
        options=options,
    )
    if result.status == 2:  # infeasible
        raise RecourseInfeasibleError("no feasible integral assignment exists")
    if result.status == 1:  # iteration / node / time limit reached
        raise RecourseInfeasibleError(
            f"MILP node/time budget exhausted (max_nodes={max_nodes}, "
            f"time_limit={time_limit})"
        )
    if not result.success:  # pragma: no cover - solver hiccup
        return None
    return IPSolution(
        values=program.assignment_from_vector(result.x),
        objective=float(result.fun),
        n_nodes=0,
    )


def solve_binary_program(
    program: IntegerProgram,
    max_nodes: int = 200_000,
    time_limit: float | None = None,
    mip_rel_gap: float | None = None,
    incumbent: dict | np.ndarray | None = None,
) -> IPSolution:
    """Solve ``program`` exactly.

    Uses scipy's HiGHS MILP backend when available (orders of magnitude
    faster on the ~200-binary recourse programs) and falls back to the
    pure-Python :class:`BranchAndBoundSolver` otherwise.  ``max_nodes``,
    ``time_limit`` and ``mip_rel_gap`` bound the search in both routes;
    ``incumbent`` warm-starts the pure-Python fallback (HiGHS via scipy
    exposes no warm-start hook).
    """
    if program.n_variables == 0:
        return IPSolution(values={}, objective=0.0, n_nodes=0)
    solution = _solve_with_highs_milp(
        program, max_nodes=max_nodes, time_limit=time_limit, mip_rel_gap=mip_rel_gap
    )
    if solution is not None:
        return solution
    return BranchAndBoundSolver(max_nodes=max_nodes).solve(  # pragma: no cover
        program, incumbent=incumbent
    )
