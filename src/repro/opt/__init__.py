"""0-1 integer programming: model container and branch-and-bound solver.

The counterfactual-recourse problem of Section 4.2 is a small binary
integer program.  No commercial solver is available offline, so this
subpackage provides a generic branch-and-bound over scipy ``linprog`` LP
relaxations, exact and fast at the scale recourse produces (one binary
per candidate value of each actionable attribute).
"""

from repro.opt.integer_program import IntegerProgram, IPSolution
from repro.opt.branch_and_bound import BranchAndBoundSolver, solve_binary_program

__all__ = [
    "IntegerProgram",
    "IPSolution",
    "BranchAndBoundSolver",
    "solve_binary_program",
]
