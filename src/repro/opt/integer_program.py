"""Binary integer program container.

A named-variable convenience layer over the matrix form
``min c.x  s.t.  A_ub x <= b_ub,  A_eq x = b_eq,  x in {0,1}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

import numpy as np


@dataclass
class IPSolution:
    """Solver output: assignment, objective, and search statistics."""

    values: dict[Hashable, int]
    objective: float
    n_nodes: int

    def chosen(self) -> list[Hashable]:
        """Names of variables set to 1."""
        return [name for name, v in self.values.items() if v == 1]


class IntegerProgram:
    """A minimisation 0-1 IP with named variables and row-wise constraints."""

    def __init__(self):
        self._names: list[Hashable] = []
        self._index: dict[Hashable, int] = {}
        self._costs: list[float] = []
        self._ub_rows: list[tuple[dict[Hashable, float], float]] = []
        self._eq_rows: list[tuple[dict[Hashable, float], float]] = []

    # -- construction ---------------------------------------------------------

    def add_variable(self, name: Hashable, cost: float = 0.0) -> None:
        """Declare a binary variable with objective coefficient ``cost``."""
        if name in self._index:
            raise ValueError(f"variable {name!r} already declared")
        self._index[name] = len(self._names)
        self._names.append(name)
        self._costs.append(float(cost))

    def add_le_constraint(self, coefficients: Mapping[Hashable, float], rhs: float) -> None:
        """Add ``sum coeff_i * x_i <= rhs``."""
        self._check_known(coefficients)
        self._ub_rows.append((dict(coefficients), float(rhs)))

    def add_ge_constraint(self, coefficients: Mapping[Hashable, float], rhs: float) -> None:
        """Add ``sum coeff_i * x_i >= rhs`` (stored as negated <=)."""
        self.add_le_constraint(
            {k: -v for k, v in coefficients.items()}, -float(rhs)
        )

    def add_eq_constraint(self, coefficients: Mapping[Hashable, float], rhs: float) -> None:
        """Add ``sum coeff_i * x_i == rhs``."""
        self._check_known(coefficients)
        self._eq_rows.append((dict(coefficients), float(rhs)))

    def _check_known(self, coefficients: Mapping[Hashable, float]) -> None:
        unknown = [k for k in coefficients if k not in self._index]
        if unknown:
            raise KeyError(f"unknown variables in constraint: {unknown}")

    # -- matrix form ------------------------------------------------------------

    @property
    def n_variables(self) -> int:
        """Number of declared binaries."""
        return len(self._names)

    @property
    def n_constraints(self) -> int:
        """Total number of constraint rows."""
        return len(self._ub_rows) + len(self._eq_rows)

    @property
    def variable_names(self) -> list[Hashable]:
        """Declared variable names in order."""
        return list(self._names)

    def matrices(self):
        """Return ``(c, A_ub, b_ub, A_eq, b_eq)`` in scipy conventions."""
        n = self.n_variables
        c = np.asarray(self._costs, dtype=float)

        def stack(rows):
            if not rows:
                return None, None
            A = np.zeros((len(rows), n))
            b = np.zeros(len(rows))
            for i, (coeffs, rhs) in enumerate(rows):
                for name, value in coeffs.items():
                    A[i, self._index[name]] = value
                b[i] = rhs
            return A, b

        A_ub, b_ub = stack(self._ub_rows)
        A_eq, b_eq = stack(self._eq_rows)
        return c, A_ub, b_ub, A_eq, b_eq

    def assignment_from_vector(self, x: np.ndarray) -> dict[Hashable, int]:
        """Translate a solver vector into ``{name: 0/1}``."""
        return {name: int(round(v)) for name, v in zip(self._names, x)}

    def vector_from_assignment(self, values: Mapping[Hashable, float]) -> np.ndarray:
        """Translate ``{name: 0/1}`` into a vector in variable order.

        Missing names default to 0; unknown names raise.  The inverse of
        :meth:`assignment_from_vector`, used to normalise warm-start
        incumbents handed to the solvers.
        """
        self._check_known(values)
        x = np.zeros(self.n_variables)
        for name, value in values.items():
            x[self._index[name]] = float(value)
        return x
