"""XAI baselines the paper compares against (Section 5.4).

From-scratch reimplementations of:

* :mod:`repro.xai.lime` — Local Interpretable Model-agnostic Explanations
  (Ribeiro et al. 2016): perturb around an instance, fit a
  kernel-weighted ridge surrogate.
* :mod:`repro.xai.shap` — Kernel SHAP (Lundberg & Lee 2017): Shapley
  values via the weighted least-squares characterisation.
* :mod:`repro.xai.feat` — permutation feature importance (Breiman 2001).
* :mod:`repro.xai.linear_ip` — LinearIP, actionable recourse for linear
  classifiers (Ustun et al. 2019).
* :mod:`repro.xai.ranking` — ranking / rank-correlation helpers used by
  the comparison experiments.
"""

from repro.xai.lime import LimeExplainer
from repro.xai.shap import KernelShapExplainer
from repro.xai.feat import permutation_importance
from repro.xai.linear_ip import LinearIPRecourse
from repro.xai.pdp import ICECurves, PartialDependence, ice_curves, partial_dependence
from repro.xai.ranking import kendall_tau, normalise_scores, rank_of

__all__ = [
    "LimeExplainer",
    "KernelShapExplainer",
    "permutation_importance",
    "LinearIPRecourse",
    "ICECurves",
    "PartialDependence",
    "ice_curves",
    "partial_dependence",
    "kendall_tau",
    "normalise_scores",
    "rank_of",
]
