"""Kernel SHAP (Lundberg & Lee 2017).

Shapley values of a black box are recovered as the solution of a
weighted least-squares problem over coalition indicators with the
Shapley kernel ``pi(s) = (M-1) / (C(M,s) * s * (M-s))``.  Coalitions are
enumerated exactly for small attribute counts and sampled otherwise;
missing attributes are imputed by draws from a background table
(the interventional/marginal expectation, as in the reference
implementation).  The efficiency constraint ``sum phi = f(x) - E[f]`` is
enforced by variable elimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from math import comb
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.data.table import Column, Table
from repro.utils.rng import as_generator


@dataclass
class ShapExplanation:
    """Per-attribute Shapley values for one instance."""

    values: dict[str, float]
    base_value: float
    prediction: float

    def ranking(self) -> list[str]:
        """Attributes by decreasing |phi|."""
        return sorted(self.values, key=lambda a: abs(self.values[a]), reverse=True)


class KernelShapExplainer:
    """Kernel SHAP over categorical tables."""

    def __init__(
        self,
        predict_positive: Callable[[Table], np.ndarray],
        background: Table,
        attributes: Sequence[str] | None = None,
        n_background: int = 50,
        max_exact_attributes: int = 12,
        n_coalitions: int = 2_048,
        seed: int | np.random.Generator | None = 0,
    ):
        self._predict = predict_positive
        self.attributes = list(attributes) if attributes is not None else background.names
        self._rng = as_generator(seed)
        rows = min(n_background, len(background))
        idx = self._rng.choice(len(background), size=rows, replace=False)
        self._background = background.take(idx)
        self.max_exact_attributes = max_exact_attributes
        self.n_coalitions = n_coalitions
        self._base_value: float | None = None

    # -- coalition machinery -----------------------------------------------

    def _coalitions(self, m: int) -> tuple[np.ndarray, np.ndarray]:
        """Return (masks, kernel weights) excluding empty/full coalitions."""
        if m <= self.max_exact_attributes:
            masks = []
            weights = []
            for size in range(1, m):
                w = (m - 1) / (comb(m, size) * size * (m - size))
                for subset in combinations(range(m), size):
                    mask = np.zeros(m, dtype=bool)
                    mask[list(subset)] = True
                    masks.append(mask)
                    weights.append(w)
            return np.array(masks), np.array(weights)
        # Sampled regime: draw sizes with probability proportional to the
        # kernel mass of that size, then a uniform subset of that size.
        sizes = np.arange(1, m)
        size_mass = (m - 1) / (sizes * (m - sizes))
        size_p = size_mass / size_mass.sum()
        masks = np.zeros((self.n_coalitions, m), dtype=bool)
        drawn = self._rng.choice(sizes, size=self.n_coalitions, p=size_p)
        for i, s in enumerate(drawn):
            masks[i, self._rng.choice(m, size=s, replace=False)] = True
        weights = np.ones(self.n_coalitions)
        return masks, weights

    def _coalition_values(
        self, row_codes: Mapping[str, int], masks: np.ndarray
    ) -> np.ndarray:
        """``v(S)`` for every coalition: expectation over background draws."""
        bg = self._background
        n_bg = len(bg)
        n_coal = len(masks)
        # Build one big table: for each coalition, n_bg hybrid rows.
        columns = []
        for j, name in enumerate(self.attributes):
            ref = bg.column(name)
            tiled = np.tile(ref.codes, n_coal)
            fixed = np.repeat(masks[:, j], n_bg)
            tiled[fixed] = int(row_codes[name])
            columns.append(Column.from_codes(name, tiled, ref.categories, ref.ordered))
        # Carry along any non-explained attributes at their background values.
        for name in bg.names:
            if name not in self.attributes:
                ref = bg.column(name)
                columns.append(
                    Column.from_codes(
                        name, np.tile(ref.codes, n_coal), ref.categories, ref.ordered
                    )
                )
        predictions = np.asarray(self._predict(Table(columns)), dtype=float)
        return predictions.reshape(n_coal, n_bg).mean(axis=1)

    def base_value(self) -> float:
        """``E[f]`` over the background sample."""
        if self._base_value is None:
            self._base_value = float(
                np.mean(np.asarray(self._predict(self._background), dtype=float))
            )
        return self._base_value

    def _instance_prediction(self, row_codes: Mapping[str, int]) -> float:
        columns = []
        for name in self._background.names:
            ref = self._background.column(name)
            code = int(row_codes.get(name, ref.codes[0]))
            columns.append(
                Column.from_codes(name, np.array([code]), ref.categories, ref.ordered)
            )
        return float(np.asarray(self._predict(Table(columns)), dtype=float)[0])

    # -- the solve -------------------------------------------------------------

    def explain(self, row_codes: Mapping[str, int]) -> ShapExplanation:
        """Shapley values for one instance (code-level input)."""
        m = len(self.attributes)
        fx = self._instance_prediction(row_codes)
        f0 = self.base_value()
        if m == 1:
            return ShapExplanation(
                values={self.attributes[0]: fx - f0}, base_value=f0, prediction=fx
            )
        masks, weights = self._coalitions(m)
        values = self._coalition_values(row_codes, masks)

        # Efficiency-constrained WLS: eliminate phi_{m-1}.
        Z = masks.astype(float)
        y = values - f0
        Z_elim = Z[:, :-1] - Z[:, [-1]]
        y_elim = y - Z[:, -1] * (fx - f0)
        A = (Z_elim * weights[:, None]).T @ Z_elim + 1e-10 * np.eye(m - 1)
        b = (Z_elim * weights[:, None]).T @ y_elim
        phi_head = np.linalg.solve(A, b)
        phi_last = (fx - f0) - phi_head.sum()
        phi = np.append(phi_head, phi_last)
        return ShapExplanation(
            values={name: float(v) for name, v in zip(self.attributes, phi)},
            base_value=f0,
            prediction=fx,
        )

    def global_importance(
        self, table: Table, n_instances: int = 50
    ) -> dict[str, float]:
        """Mean |phi| over a sample of instances — SHAP's global ranking."""
        idx = self._rng.choice(
            len(table), size=min(n_instances, len(table)), replace=False
        )
        totals = {name: 0.0 for name in self.attributes}
        for i in idx:
            explanation = self.explain(table.row_codes(int(i)))
            for name, v in explanation.values.items():
                totals[name] += abs(v)
        return {name: v / len(idx) for name, v in totals.items()}
