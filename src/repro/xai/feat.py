"""Permutation feature importance (Breiman 2001) — the paper's "Feat".

The importance of an attribute is the increase in the algorithm's
prediction error after randomly permuting that attribute's column,
averaged over repeats.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.table import Table
from repro.utils.rng import as_generator


def permutation_importance(
    predict_positive: Callable[[Table], np.ndarray],
    table: Table,
    reference: np.ndarray,
    attributes: Sequence[str] | None = None,
    n_repeats: int = 5,
    seed: int | np.random.Generator | None = 0,
) -> dict[str, float]:
    """Error increase per attribute after permuting its values.

    Parameters
    ----------
    predict_positive:
        The black box as a positive-decision function over tables.
    reference:
        The target the error is measured against (e.g. true labels as a
        0/1 vector, or the unpermuted predictions).
    """
    rng = as_generator(seed)
    attributes = list(attributes) if attributes is not None else table.names
    reference = np.asarray(reference, dtype=float)
    baseline_error = float(
        np.mean(np.asarray(predict_positive(table), dtype=float) != reference)
    )
    importances: dict[str, float] = {}
    for name in attributes:
        col = table.column(name)
        increase = 0.0
        for _ in range(n_repeats):
            permuted = table.with_column(
                col.replaced(rng.permutation(col.codes))
            )
            error = float(
                np.mean(
                    np.asarray(predict_positive(permuted), dtype=float) != reference
                )
            )
            increase += error - baseline_error
        importances[name] = max(0.0, increase / n_repeats)
    return importances
