"""LinearIP: actionable recourse for linear classifiers (Ustun et al. 2019).

The baseline the paper compares its recourse against (Section 5.4).  A
logistic surrogate (or any linear model over one-hot features) is fit to
the black box's decisions; recourse is then the minimum-cost change of
the actionable attributes that pushes the linear score past the decision
threshold.  Unlike LEWIS, the constraint bounds the *classifier score*
directly, ignores causal structure entirely, and — as the paper observes
— often fails to return any solution for high success thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.recourse import CostFn, RecourseAction, unit_step_cost
from repro.data.encoding import OneHotEncoder
from repro.data.table import Table
from repro.estimation.logit import logit
from repro.models.linear import LogisticRegression
from repro.opt.branch_and_bound import solve_binary_program
from repro.opt.integer_program import IntegerProgram
from repro.utils.validation import check_probability


@dataclass
class LinearIPResult:
    """The baseline's recommended action set."""

    actions: list[RecourseAction]
    total_cost: float
    achieved_probability: float


class LinearIPRecourse:
    """Recourse over a linear surrogate of the black box."""

    def __init__(
        self,
        table: Table,
        positive: np.ndarray,
        actionable: Sequence[str],
        cost_fn: CostFn | None = None,
    ):
        if not actionable:
            raise ValueError("actionable set must not be empty")
        self.actionable = list(actionable)
        self.cost_fn = cost_fn or unit_step_cost
        self._table = table
        self._encoder = OneHotEncoder(drop_first=True).fit(table)
        X = self._encoder.transform(table)
        self._model = LogisticRegression(l2=0.1)
        self._model.fit(X, np.asarray(positive, dtype=int))

    def _coefficient(self, attribute: str, code: int) -> float:
        if code == 0:
            return 0.0
        block = self._encoder.feature_slice(attribute)
        return float(self._model.coef_[0][block.start + code - 1])

    def _score(self, codes: Mapping[str, int]) -> float:
        row = self._encoder.transform_codes(
            {name: int(codes[name]) for name in self._table.names}
        )
        return float(self._model.decision_function(row.reshape(1, -1))[0])

    def solve(
        self,
        row_codes: Mapping[str, int],
        success_probability: float = 0.5,
    ) -> LinearIPResult:
        """Minimum-cost action set reaching the target linear-score threshold.

        Raises :class:`RecourseInfeasibleError` when no assignment of the
        actionable attributes reaches it — the failure mode the paper
        reports for thresholds above 0.8.
        """
        check_probability(success_probability, "success_probability")
        base_score = self._score(row_codes)
        needed = logit(success_probability) - base_score

        program = IntegerProgram()
        gain: dict = {}
        for attribute in self.actionable:
            col = self._table.column(attribute)
            current = int(row_codes[attribute])
            exclusivity: dict = {}
            for code in range(col.cardinality):
                if code == current:
                    continue
                name = (attribute, code)
                program.add_variable(name, cost=self.cost_fn(attribute, current, code))
                gain[name] = self._coefficient(attribute, code) - self._coefficient(
                    attribute, current
                )
                exclusivity[name] = 1.0
            if exclusivity:
                program.add_le_constraint(exclusivity, 1.0)
        program.add_ge_constraint(gain, needed)
        solution = solve_binary_program(program)

        new_codes = {a: int(row_codes[a]) for a in self.actionable}
        for (attribute, code), chosen in solution.values.items():
            if chosen:
                new_codes[attribute] = code
        achieved = 1.0 / (
            1.0 + np.exp(-self._score({**dict(row_codes), **new_codes}))
        )
        actions = []
        for attribute, code in new_codes.items():
            current = int(row_codes[attribute])
            if code == current:
                continue
            categories = self._table.column(attribute).categories
            actions.append(
                RecourseAction(
                    attribute=attribute,
                    current_value=categories[current],
                    new_value=categories[code],
                    cost=self.cost_fn(attribute, current, code),
                )
            )
        return LinearIPResult(
            actions=actions,
            total_cost=solution.objective,
            achieved_probability=float(achieved),
        )
