"""Partial dependence and ICE curves (Friedman 2001; Goldstein et al. 2015).

Two of the associational influence methods the paper's related work
surveys. Both probe the black box by *setting* an attribute to each of
its values — mechanically like LEWIS's ordering probe — but report raw
average predictions without any causal adjustment, so they inherit the
correlation-vs-causation caveats the paper raises (a useful contrast in
the comparison experiments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.table import Column, Table
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class PartialDependence:
    """Average positive rate per value of one attribute."""

    attribute: str
    values: tuple
    averages: tuple

    def as_dict(self) -> dict:
        """``{value: average prediction}``."""
        return dict(zip(self.values, self.averages))

    @property
    def range(self) -> float:
        """Max-minus-min average — a crude global importance measure."""
        return max(self.averages) - min(self.averages)


@dataclass(frozen=True)
class ICECurves:
    """Per-row prediction curves; ``matrix[i, j]`` = row i at value j."""

    attribute: str
    values: tuple
    matrix: np.ndarray

    @property
    def partial_dependence(self) -> PartialDependence:
        """The PDP is the mean ICE curve."""
        return PartialDependence(
            attribute=self.attribute,
            values=self.values,
            averages=tuple(float(v) for v in self.matrix.mean(axis=0)),
        )

    def heterogeneity(self) -> float:
        """Mean per-value standard deviation across rows.

        Large values mean the attribute's effect differs across
        individuals — exactly where a single global number misleads and
        LEWIS's contextual scores add information.
        """
        return float(self.matrix.std(axis=0).mean())


def partial_dependence(
    predict_positive: Callable[[Table], np.ndarray],
    table: Table,
    attribute: str,
    max_rows: int = 2_000,
    seed: int | np.random.Generator | None = 0,
) -> PartialDependence:
    """PDP of ``attribute``: set every row to each value, average."""
    return ice_curves(
        predict_positive, table, attribute, max_rows=max_rows, seed=seed
    ).partial_dependence


def ice_curves(
    predict_positive: Callable[[Table], np.ndarray],
    table: Table,
    attribute: str,
    max_rows: int = 2_000,
    seed: int | np.random.Generator | None = 0,
) -> ICECurves:
    """Individual conditional expectation curves for ``attribute``."""
    col = table.column(attribute)
    if len(table) > max_rows:
        rng = as_generator(seed)
        table = table.take(rng.choice(len(table), max_rows, replace=False))
        col = table.column(attribute)
    matrix = np.empty((len(table), col.cardinality))
    for code in range(col.cardinality):
        probed = table.with_column(
            Column.from_codes(
                attribute,
                np.full(len(table), code, dtype=np.int64),
                col.categories,
                col.ordered,
            )
        )
        matrix[:, code] = np.asarray(predict_positive(probed), dtype=float)
    return ICECurves(attribute=attribute, values=col.categories, matrix=matrix)
