"""Ranking helpers for the method-comparison experiments (Figures 8-10)."""

from __future__ import annotations

from typing import Mapping, Sequence


def normalise_scores(scores: Mapping[str, float]) -> dict[str, float]:
    """Scale scores so the maximum |value| is 1 (paper's normalised plots)."""
    peak = max((abs(v) for v in scores.values()), default=0.0)
    if peak == 0:
        return dict(scores)
    return {k: v / peak for k, v in scores.items()}


def ranking_from_scores(scores: Mapping[str, float]) -> list[str]:
    """Keys ordered by decreasing |score| (ties broken by name)."""
    return sorted(scores, key=lambda k: (-abs(scores[k]), k))


def rank_of(scores: Mapping[str, float], attribute: str) -> int:
    """1-based rank of ``attribute`` by |score|."""
    return ranking_from_scores(scores).index(attribute) + 1


def kendall_tau(order_a: Sequence[str], order_b: Sequence[str]) -> float:
    """Kendall rank correlation between two orderings of the same items.

    Items missing from either ordering are ignored; returns a value in
    [-1, 1] (1 = identical order).
    """
    common = [x for x in order_a if x in set(order_b)]
    if len(common) < 2:
        return 1.0
    pos_b = {x: i for i, x in enumerate(order_b)}
    concordant = discordant = 0
    for i in range(len(common)):
        for j in range(i + 1, len(common)):
            a_i, a_j = common[i], common[j]
            if (pos_b[a_i] - pos_b[a_j]) < 0:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total if total else 1.0
