"""Estimator protocols shared by the ML substrate."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_fitted


def _as_matrix(X) -> np.ndarray:
    """Coerce input features to a 2-D float matrix."""
    X = np.asarray(X, dtype=np.float64)
    if X.ndim == 1:
        X = X.reshape(1, -1)
    if X.ndim != 2:
        raise ValueError(f"expected 2-D feature matrix, got shape {X.shape}")
    return X


class BaseClassifier:
    """Common surface for classifiers: fit / predict / predict_proba.

    Subclasses implement ``_fit(X, y_indices, n_classes)`` and
    ``_predict_proba(X)``; label-to-index bookkeeping lives here.
    """

    def __init__(self):
        self.classes_: np.ndarray | None = None

    def fit(self, X, y) -> "BaseClassifier":
        """Fit on features ``X`` and integer/categorical labels ``y``."""
        X = _as_matrix(X)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        self.classes_, y_idx = np.unique(y, return_inverse=True)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes to fit a classifier")
        self._fit(X, y_idx.astype(np.int64), len(self.classes_))
        return self

    def predict_proba(self, X) -> np.ndarray:
        """Return an ``(n, n_classes)`` matrix of class probabilities."""
        check_fitted(self, "classes_")
        return self._predict_proba(_as_matrix(X))

    def predict(self, X) -> np.ndarray:
        """Return the most probable class label per row."""
        proba = self.predict_proba(X)
        return self.classes_[np.argmax(proba, axis=1)]

    def score(self, X, y) -> float:
        """Accuracy on ``(X, y)``."""
        return float(np.mean(self.predict(X) == np.asarray(y)))

    # -- subclass hooks ---------------------------------------------------

    def _fit(self, X: np.ndarray, y_idx: np.ndarray, n_classes: int) -> None:
        raise NotImplementedError

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError


class BaseRegressor:
    """Common surface for regressors: fit / predict."""

    def __init__(self):
        self.is_fitted_: bool | None = None

    def fit(self, X, y) -> "BaseRegressor":
        """Fit on features ``X`` and real-valued targets ``y``."""
        X = _as_matrix(X)
        y = np.asarray(y, dtype=np.float64)
        if len(X) != len(y):
            raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
        self._fit(X, y)
        self.is_fitted_ = True
        return self

    def predict(self, X) -> np.ndarray:
        """Return predicted targets for each row of ``X``."""
        check_fitted(self, "is_fitted_")
        return self._predict(_as_matrix(X))

    def score(self, X, y) -> float:
        """R^2 on ``(X, y)``."""
        y = np.asarray(y, dtype=np.float64)
        pred = self.predict(X)
        ss_res = float(np.sum((y - pred) ** 2))
        ss_tot = float(np.sum((y - y.mean()) ** 2))
        if ss_tot == 0:
            return 0.0
        return 1.0 - ss_res / ss_tot

    # -- subclass hooks ---------------------------------------------------

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError
