"""CART decision trees (classification and regression).

Split search is histogram-style: candidate thresholds are midpoints
between consecutive distinct feature values at the node, and impurity is
evaluated from prefix sums in one vectorised pass per feature.  This is
fast for the low-cardinality ordinal/one-hot matrices the library feeds
models with, while remaining correct for arbitrary float features.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.base import BaseClassifier, BaseRegressor
from repro.utils.rng import as_generator


@dataclass
class _Node:
    """One tree node; leaves have ``feature = -1``."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray | float | None = None  # class counts or mean target
    n_samples: int = 0
    impurity: float = 0.0
    leaf_id: int = -1


def _class_impurity(counts: np.ndarray, criterion: str) -> np.ndarray:
    """Gini or entropy from a ``(..., n_classes)`` count array."""
    totals = counts.sum(axis=-1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        probs = np.where(totals > 0, counts / totals, 0.0)
    if criterion == "gini":
        return 1.0 - np.sum(probs**2, axis=-1)
    if criterion == "entropy":
        logs = np.log2(probs, where=probs > 0, out=np.zeros_like(probs))
        return -np.sum(probs * logs, axis=-1)
    raise ValueError(f"unknown criterion {criterion!r}")


class _TreeBuilder:
    """Shared recursive CART builder; subclass hooks define the task."""

    def __init__(
        self,
        max_depth: int | None,
        min_samples_split: int,
        min_samples_leaf: int,
        max_features: int | None,
        rng: np.random.Generator,
    ):
        self.max_depth = max_depth if max_depth is not None else np.inf
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = max(1, min_samples_leaf)
        self.max_features = max_features
        self.rng = rng
        self.n_leaves = 0
        self.feature_gains: np.ndarray | None = None

    # -- task hooks (classifier vs regressor) --------------------------------

    def node_impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def node_value(self, y: np.ndarray):
        raise NotImplementedError

    def best_split_for_feature(self, x: np.ndarray, y: np.ndarray):
        """Return (gain, threshold) for one feature or None."""
        raise NotImplementedError

    # -- generic recursion ------------------------------------------------------

    def build(self, X: np.ndarray, y: np.ndarray) -> _Node:
        self.feature_gains = np.zeros(X.shape[1])
        return self._grow(X, y, depth=0)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(
            value=self.node_value(y),
            n_samples=len(y),
            impurity=self.node_impurity(y),
        )
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or node.impurity <= 1e-12
        ):
            return self._leaf(node)

        n_features = X.shape[1]
        if self.max_features is not None and self.max_features < n_features:
            features = self.rng.choice(n_features, self.max_features, replace=False)
        else:
            features = np.arange(n_features)

        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        for f in features:
            found = self.best_split_for_feature(X[:, f], y)
            if found is None:
                continue
            gain, threshold = found
            if gain > best_gain + 1e-12:
                best_gain, best_feature, best_threshold = gain, int(f), threshold

        if best_feature < 0:
            return self._leaf(node)

        mask = X[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        self.feature_gains[best_feature] += best_gain * len(y)
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _leaf(self, node: _Node) -> _Node:
        node.leaf_id = self.n_leaves
        self.n_leaves += 1
        return node


class _ClassifierBuilder(_TreeBuilder):
    def __init__(self, n_classes: int, criterion: str, **kwargs):
        super().__init__(**kwargs)
        self.n_classes = n_classes
        self.criterion = criterion

    def node_impurity(self, y: np.ndarray) -> float:
        counts = np.bincount(y, minlength=self.n_classes).astype(float)
        return float(_class_impurity(counts, self.criterion))

    def node_value(self, y: np.ndarray) -> np.ndarray:
        return np.bincount(y, minlength=self.n_classes).astype(float)

    def best_split_for_feature(self, x: np.ndarray, y: np.ndarray):
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        # Candidate cut positions: between distinct consecutive values.
        boundary = np.nonzero(xs[1:] != xs[:-1])[0]
        if boundary.size == 0:
            return None
        onehot = np.zeros((len(ys), self.n_classes))
        onehot[np.arange(len(ys)), ys] = 1.0
        prefix = np.cumsum(onehot, axis=0)
        left = prefix[boundary]
        total = prefix[-1]
        right = total - left
        n_left = boundary + 1
        n_right = len(ys) - n_left
        valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
        if not valid.any():
            return None
        parent = _class_impurity(total, self.criterion)
        child = (
            n_left * _class_impurity(left, self.criterion)
            + n_right * _class_impurity(right, self.criterion)
        ) / len(ys)
        gains = np.where(valid, parent - child, -np.inf)
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]) or gains[best] <= 0:
            return None
        threshold = float((xs[boundary[best]] + xs[boundary[best] + 1]) / 2.0)
        return float(gains[best]), threshold


class _RegressorBuilder(_TreeBuilder):
    def node_impurity(self, y: np.ndarray) -> float:
        return float(np.var(y)) if len(y) else 0.0

    def node_value(self, y: np.ndarray) -> float:
        return float(np.mean(y)) if len(y) else 0.0

    def best_split_for_feature(self, x: np.ndarray, y: np.ndarray):
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        boundary = np.nonzero(xs[1:] != xs[:-1])[0]
        if boundary.size == 0:
            return None
        prefix = np.cumsum(ys)
        prefix_sq = np.cumsum(ys**2)
        n = len(ys)
        n_left = boundary + 1
        n_right = n - n_left
        valid = (n_left >= self.min_samples_leaf) & (n_right >= self.min_samples_leaf)
        if not valid.any():
            return None
        sum_left = prefix[boundary]
        sum_right = prefix[-1] - sum_left
        sq_left = prefix_sq[boundary]
        sq_right = prefix_sq[-1] - sq_left
        var_left = sq_left / n_left - (sum_left / n_left) ** 2
        var_right = sq_right / n_right - (sum_right / n_right) ** 2
        parent = np.var(ys)
        child = (n_left * var_left + n_right * var_right) / n
        gains = np.where(valid, parent - child, -np.inf)
        best = int(np.argmax(gains))
        if not np.isfinite(gains[best]) or gains[best] <= 1e-15:
            return None
        threshold = float((xs[boundary[best]] + xs[boundary[best] + 1]) / 2.0)
        return float(gains[best]), threshold


def _traverse(node: _Node, X: np.ndarray, out_nodes: list, indices: np.ndarray) -> None:
    """Vectorised tree traversal: record the leaf node of each row."""
    if node.feature < 0:
        for i in indices:
            out_nodes[i] = node
        return
    mask = X[indices, node.feature] <= node.threshold
    _traverse(node.left, X, out_nodes, indices[mask])
    _traverse(node.right, X, out_nodes, indices[~mask])


class DecisionTreeClassifier(BaseClassifier):
    """CART classifier with gini/entropy impurity."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        criterion: str = "gini",
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.seed = seed
        self.root_: _Node | None = None
        self.feature_importances_: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y_idx: np.ndarray, n_classes: int) -> None:
        builder = _ClassifierBuilder(
            n_classes=n_classes,
            criterion=self.criterion,
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=as_generator(self.seed),
        )
        self.root_ = builder.build(X, y_idx)
        gains = builder.feature_gains
        total = gains.sum()
        self.feature_importances_ = gains / total if total > 0 else gains

    def _leaves(self, X: np.ndarray) -> list[_Node]:
        nodes: list = [None] * len(X)
        _traverse(self.root_, X, nodes, np.arange(len(X)))
        return nodes

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        out = np.empty((len(X), len(self.classes_)))
        for i, node in enumerate(self._leaves(X)):
            counts = node.value
            out[i] = counts / counts.sum()
        return out

    def apply(self, X) -> np.ndarray:
        """Return the leaf id each row lands in."""
        X = np.asarray(X, dtype=np.float64)
        return np.array([n.leaf_id for n in self._leaves(X)], dtype=np.int64)


class DecisionTreeRegressor(BaseRegressor):
    """CART regressor with variance reduction splitting."""

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | None = None,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.seed = seed
        self.root_: _Node | None = None
        self.n_leaves_: int = 0
        self.feature_importances_: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        builder = _RegressorBuilder(
            max_depth=self.max_depth,
            min_samples_split=self.min_samples_split,
            min_samples_leaf=self.min_samples_leaf,
            max_features=self.max_features,
            rng=as_generator(self.seed),
        )
        self.root_ = builder.build(X, y)
        self.n_leaves_ = builder.n_leaves
        gains = builder.feature_gains
        total = gains.sum()
        self.feature_importances_ = gains / total if total > 0 else gains

    def _leaves(self, X: np.ndarray) -> list[_Node]:
        nodes: list = [None] * len(X)
        _traverse(self.root_, X, nodes, np.arange(len(X)))
        return nodes

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return np.array([n.value for n in self._leaves(X)], dtype=np.float64)

    def apply(self, X) -> np.ndarray:
        """Return the leaf id each row lands in (for boosting leaf refits)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        return np.array([n.leaf_id for n in self._leaves(X)], dtype=np.int64)
