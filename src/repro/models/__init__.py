"""From-scratch ML substrate: the black boxes of Section 5.2.

The paper evaluates LEWIS against four algorithm families — random forest
classification and regression, gradient-boosted trees ("XGBoost"), and a
feed-forward neural network.  None of those libraries is available
offline, so this subpackage reimplements them in numpy:

* :mod:`repro.models.tree` — CART decision trees (gini / entropy / mse),
* :mod:`repro.models.forest` — bagged forests with impurity importances,
* :mod:`repro.models.boosting` — second-order gradient boosting with
  logistic / squared loss (the XGBoost stand-in),
* :mod:`repro.models.neural` — MLP with ReLU and Adam,
* :mod:`repro.models.linear` — logistic / ridge regression (recourse logit
  model and the LinearIP baseline).

All models consume plain float matrices; see :mod:`repro.data.encoding`
for Table-to-matrix encoders and :mod:`repro.models.pipeline` for the
Table-level wrapper LEWIS feeds with.
"""

from repro.models.base import BaseClassifier, BaseRegressor
from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.models.forest import RandomForestClassifier, RandomForestRegressor
from repro.models.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.models.neural import NeuralNetworkClassifier
from repro.models.linear import LinearRegression, LogisticRegression
from repro.models.pipeline import TableModel, fit_table_model
from repro.models import metrics


def __getattr__(name: str):
    # serialize imports pipeline/encoding which import this package;
    # resolve lazily to keep the import graph acyclic.
    if name in ("save_model", "load_model", "model_to_dict", "model_from_dict"):
        from repro.models import serialize

        return getattr(serialize, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BaseClassifier",
    "BaseRegressor",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "RandomForestClassifier",
    "RandomForestRegressor",
    "GradientBoostingClassifier",
    "GradientBoostingRegressor",
    "NeuralNetworkClassifier",
    "LinearRegression",
    "LogisticRegression",
    "TableModel",
    "fit_table_model",
    "metrics",
]
