"""Linear models: ridge-regularised least squares and logistic regression.

Logistic regression is fit by Newton-Raphson (IRLS) with L2
regularisation — stable on the one-hot matrices the library produces,
and exposes ``coef_`` / ``intercept_`` which the recourse logit model
(Section 4.2) and the LinearIP baseline (Section 5.4) both consume.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseClassifier, BaseRegressor


class LinearRegression(BaseRegressor):
    """Ordinary / ridge least squares via the normal equations."""

    def __init__(self, l2: float = 0.0):
        super().__init__()
        self.l2 = float(l2)
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n, d = X.shape
        Xb = np.column_stack([X, np.ones(n)])
        penalty = self.l2 * np.eye(d + 1)
        penalty[-1, -1] = 0.0  # never penalise the intercept
        theta = np.linalg.solve(Xb.T @ Xb + penalty, Xb.T @ y)
        self.coef_ = theta[:-1]
        self.intercept_ = float(theta[-1])

    def _predict(self, X: np.ndarray) -> np.ndarray:
        return X @ self.coef_ + self.intercept_


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


class LogisticRegression(BaseClassifier):
    """Binary or one-vs-rest logistic regression fit by IRLS."""

    def __init__(self, l2: float = 1e-4, max_iter: int = 100, tol: float = 1e-8):
        super().__init__()
        self.l2 = float(l2)
        self.max_iter = max_iter
        self.tol = tol
        self.coef_: np.ndarray | None = None  # (n_problems, d)
        self.intercept_: np.ndarray | None = None

    def _fit_binary(self, X: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, float]:
        n, d = X.shape
        Xb = np.column_stack([X, np.ones(n)])
        theta = np.zeros(d + 1)
        penalty = self.l2 * np.eye(d + 1)
        penalty[-1, -1] = 0.0
        for _ in range(self.max_iter):
            p = _sigmoid(Xb @ theta)
            gradient = Xb.T @ (p - target) + penalty @ theta
            w = np.clip(p * (1 - p), 1e-9, None)
            hessian = (Xb * w[:, None]).T @ Xb + penalty + 1e-9 * np.eye(d + 1)
            try:
                step = np.linalg.solve(hessian, gradient)
            except np.linalg.LinAlgError:
                step = np.linalg.lstsq(hessian, gradient, rcond=None)[0]
            theta -= step
            if np.max(np.abs(step)) < self.tol:
                break
        return theta[:-1], float(theta[-1])

    def _fit(self, X: np.ndarray, y_idx: np.ndarray, n_classes: int) -> None:
        n_problems = 1 if n_classes == 2 else n_classes
        coefs, intercepts = [], []
        for problem in range(n_problems):
            target = (y_idx == (problem if n_problems > 1 else 1)).astype(float)
            coef, intercept = self._fit_binary(X, target)
            coefs.append(coef)
            intercepts.append(intercept)
        self.coef_ = np.array(coefs)
        self.intercept_ = np.array(intercepts)

    def decision_function(self, X) -> np.ndarray:
        """Raw logits: shape (n,) binary, (n, n_classes) multiclass."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        scores = X @ self.coef_.T + self.intercept_
        return scores[:, 0] if scores.shape[1] == 1 else scores

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = X @ self.coef_.T + self.intercept_
        if scores.shape[1] == 1:
            pos = _sigmoid(scores[:, 0])
            return np.column_stack([1 - pos, pos])
        probs = _sigmoid(scores)
        totals = probs.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return probs / totals
