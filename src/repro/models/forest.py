"""Random forests: bagged CART trees with feature subsampling."""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseClassifier, BaseRegressor
from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.utils.rng import as_generator, spawn_generators


def _resolve_max_features(spec, n_features: int) -> int | None:
    """Translate 'sqrt'/'log2'/int/float/None into a feature count."""
    if spec is None:
        return None
    if spec == "sqrt":
        return max(1, int(np.sqrt(n_features)))
    if spec == "log2":
        return max(1, int(np.log2(n_features)))
    if isinstance(spec, float):
        return max(1, int(spec * n_features))
    return int(spec)


class RandomForestClassifier(BaseClassifier):
    """Bootstrap-aggregated decision trees with probability averaging."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        criterion: str = "gini",
        bootstrap: bool = True,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.criterion = criterion
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees_: list[DecisionTreeClassifier] | None = None
        self.feature_importances_: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y_idx: np.ndarray, n_classes: int) -> None:
        n, d = X.shape
        max_features = _resolve_max_features(self.max_features, d)
        rngs = spawn_generators(self.seed, self.n_estimators)
        sampler = as_generator(self.seed)
        self.trees_ = []
        importances = np.zeros(d)
        for rng in rngs:
            if self.bootstrap:
                rows = sampler.integers(0, n, size=n)
            else:
                rows = np.arange(n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                criterion=self.criterion,
                seed=rng,
            )
            # Fit at the index level so all trees share the class layout.
            tree.classes_ = np.arange(n_classes)
            tree._fit(X[rows], y_idx[rows], n_classes)
            importances += tree.feature_importances_
            self.trees_.append(tree)
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        proba = np.zeros((len(X), len(self.classes_)))
        for tree in self.trees_:
            proba += tree._predict_proba(X)
        return proba / len(self.trees_)


class RandomForestRegressor(BaseRegressor):
    """Bootstrap-aggregated regression trees with mean averaging."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features=1.0,
        bootstrap: bool = True,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self.trees_: list[DecisionTreeRegressor] | None = None
        self.feature_importances_: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n, d = X.shape
        max_features = _resolve_max_features(self.max_features, d)
        rngs = spawn_generators(self.seed, self.n_estimators)
        sampler = as_generator(self.seed)
        self.trees_ = []
        importances = np.zeros(d)
        for rng in rngs:
            rows = sampler.integers(0, n, size=n) if self.bootstrap else np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                seed=rng,
            )
            tree.fit(X[rows], y[rows])
            importances += tree.feature_importances_
            self.trees_.append(tree)
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances

    def _predict(self, X: np.ndarray) -> np.ndarray:
        pred = np.zeros(len(X))
        for tree in self.trees_:
            pred += tree._predict(X)
        return pred / len(self.trees_)
