"""Feed-forward neural network classifier (MLP + ReLU + Adam).

Stand-in for the paper's fastai tabular learner: a fully connected
network over one-hot inputs, trained with mini-batch Adam on the
cross-entropy loss. Inputs are standardised internally so callers can
feed raw encoded matrices.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseClassifier
from repro.utils.rng import as_generator


def _softmax(z: np.ndarray) -> np.ndarray:
    z = z - z.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class NeuralNetworkClassifier(BaseClassifier):
    """Multi-layer perceptron with ReLU activations."""

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (64, 32),
        epochs: int = 30,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-4,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.hidden_sizes = tuple(hidden_sizes)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.seed = seed
        self.weights_: list[np.ndarray] | None = None
        self.biases_: list[np.ndarray] | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    # -- forward / backward ------------------------------------------------

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        """Return (pre-activation inputs per layer, output probabilities)."""
        activations = [X]
        h = X
        for i, (W, b) in enumerate(zip(self.weights_, self.biases_)):
            z = h @ W + b
            if i < len(self.weights_) - 1:
                h = np.maximum(z, 0.0)
            else:
                h = z
            activations.append(h)
        return activations, _softmax(activations[-1])

    def _fit(self, X: np.ndarray, y_idx: np.ndarray, n_classes: int) -> None:
        rng = as_generator(self.seed)
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0
        self._std = std
        Xs = (X - self._mean) / self._std

        sizes = [X.shape[1], *self.hidden_sizes, n_classes]
        self.weights_ = [
            rng.normal(0, np.sqrt(2.0 / sizes[i]), size=(sizes[i], sizes[i + 1]))
            for i in range(len(sizes) - 1)
        ]
        self.biases_ = [np.zeros(sizes[i + 1]) for i in range(len(sizes) - 1)]

        # Adam state
        m_w = [np.zeros_like(W) for W in self.weights_]
        v_w = [np.zeros_like(W) for W in self.weights_]
        m_b = [np.zeros_like(b) for b in self.biases_]
        v_b = [np.zeros_like(b) for b in self.biases_]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        step = 0

        onehot = np.zeros((len(y_idx), n_classes))
        onehot[np.arange(len(y_idx)), y_idx] = 1.0

        n = len(Xs)
        for _epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start : start + self.batch_size]
                xb, yb = Xs[batch], onehot[batch]
                activations, probs = self._forward(xb)
                grad = (probs - yb) / len(batch)
                grads_w, grads_b = [], []
                for layer in reversed(range(len(self.weights_))):
                    a_in = activations[layer]
                    grads_w.append(a_in.T @ grad + self.weight_decay * self.weights_[layer])
                    grads_b.append(grad.sum(axis=0))
                    if layer > 0:
                        grad = grad @ self.weights_[layer].T
                        grad = grad * (activations[layer] > 0)
                grads_w.reverse()
                grads_b.reverse()
                step += 1
                for i in range(len(self.weights_)):
                    m_w[i] = beta1 * m_w[i] + (1 - beta1) * grads_w[i]
                    v_w[i] = beta2 * v_w[i] + (1 - beta2) * grads_w[i] ** 2
                    m_b[i] = beta1 * m_b[i] + (1 - beta1) * grads_b[i]
                    v_b[i] = beta2 * v_b[i] + (1 - beta2) * grads_b[i] ** 2
                    mw_hat = m_w[i] / (1 - beta1**step)
                    vw_hat = v_w[i] / (1 - beta2**step)
                    mb_hat = m_b[i] / (1 - beta1**step)
                    vb_hat = v_b[i] / (1 - beta2**step)
                    self.weights_[i] -= self.learning_rate * mw_hat / (np.sqrt(vw_hat) + eps)
                    self.biases_[i] -= self.learning_rate * mb_hat / (np.sqrt(vb_hat) + eps)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        Xs = (X - self._mean) / self._std
        _, probs = self._forward(Xs)
        return probs
