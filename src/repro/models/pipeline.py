"""Table-level model wrapper: the "black box f" surface LEWIS consumes.

LEWIS only ever observes a decision algorithm through its input-output
behaviour over a :class:`~repro.data.table.Table`.  :class:`TableModel`
bundles a feature encoding and a fitted estimator behind a uniform
``predict_codes`` / ``predict_value`` interface, and
:func:`fit_table_model` is the one-call factory used throughout tests,
examples and benchmarks for the paper's four black-box families.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.encoding import OneHotEncoder, ordinal_matrix
from repro.data.table import Table
from repro.models.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.models.forest import RandomForestClassifier, RandomForestRegressor
from repro.models.linear import LogisticRegression
from repro.models.neural import NeuralNetworkClassifier
from repro.utils.validation import check_fitted

#: model-kind registry: name -> (constructor, is_classifier, encoding)
MODEL_KINDS = {
    "random_forest": (RandomForestClassifier, True, "ordinal"),
    "random_forest_regressor": (RandomForestRegressor, False, "ordinal"),
    "xgboost": (GradientBoostingClassifier, True, "ordinal"),
    "xgboost_regressor": (GradientBoostingRegressor, False, "ordinal"),
    "neural_network": (NeuralNetworkClassifier, True, "onehot"),
    "logistic": (LogisticRegression, True, "onehot"),
}


class TableModel:
    """A fitted estimator plus its feature encoding, keyed by column names."""

    def __init__(self, model, feature_names: Sequence[str], encoding: str = "ordinal"):
        if encoding not in ("ordinal", "onehot"):
            raise ValueError(f"unknown encoding {encoding!r}")
        self.model = model
        self.feature_names = list(feature_names)
        self.encoding = encoding
        self._encoder: OneHotEncoder | None = None
        self.outcome_domain_: tuple | None = None

    @property
    def is_classifier(self) -> bool:
        """True when the wrapped model predicts discrete labels."""
        return hasattr(self.model, "predict_proba")

    def _encode(self, table: Table) -> np.ndarray:
        if self.encoding == "ordinal":
            return ordinal_matrix(table, self.feature_names)
        check_fitted(self, "_encoder")
        return self._encoder.transform(table.select(self.feature_names))

    def fit(self, table: Table, label: str) -> "TableModel":
        """Fit the wrapped model on ``table`` with target column ``label``."""
        if self.encoding == "onehot":
            self._encoder = OneHotEncoder().fit(
                table.select(self.feature_names)
            )
        X = self._encode(table)
        label_col = table.column(label)
        if self.is_classifier:
            self.model.fit(X, label_col.codes)
            self.outcome_domain_ = label_col.categories
        else:
            # Regression targets are the *labels* (numeric), not codes.
            y = np.asarray(label_col.decode(), dtype=float)
            self.model.fit(X, y)
            self.outcome_domain_ = label_col.categories
        return self

    # -- prediction surfaces ----------------------------------------------

    def predict_codes(self, table: Table) -> np.ndarray:
        """Predicted outcome codes (indices into the label domain)."""
        if not self.is_classifier:
            raise TypeError("predict_codes requires a classifier; use predict_value")
        X = self._encode(table)
        return np.asarray(self.model.predict(X), dtype=np.int64)

    def predict_labels(self, table: Table) -> list:
        """Predicted outcome labels."""
        codes = self.predict_codes(table)
        return [self.outcome_domain_[c] for c in codes]

    def predict_value(self, table: Table) -> np.ndarray:
        """Real-valued predictions (regressors only)."""
        if self.is_classifier:
            raise TypeError("predict_value requires a regressor; use predict_codes")
        return np.asarray(self.model.predict(self._encode(table)), dtype=float)

    def predict_proba(self, table: Table) -> np.ndarray:
        """Class-probability matrix (classifiers only)."""
        if not self.is_classifier:
            raise TypeError("predict_proba requires a classifier")
        return self.model.predict_proba(self._encode(table))

    def accuracy(self, table: Table, label: str) -> float:
        """Label accuracy of the classifier on ``table``."""
        truth = table.codes(label)
        return float(np.mean(self.predict_codes(table) == truth))


#: default hyper-parameters per model kind, tuned for the benchmark scales
_DEFAULTS: dict[str, dict] = {
    "random_forest": {"n_estimators": 25, "max_depth": 10, "min_samples_leaf": 2},
    "random_forest_regressor": {
        "n_estimators": 25,
        "max_depth": 10,
        "min_samples_leaf": 2,
    },
    "xgboost": {"n_estimators": 60, "max_depth": 4, "learning_rate": 0.2},
    "xgboost_regressor": {"n_estimators": 60, "max_depth": 4, "learning_rate": 0.2},
    "neural_network": {"hidden_sizes": (32, 16), "epochs": 20},
    "logistic": {"l2": 1e-3},
}


def fit_table_model(
    kind: str,
    table: Table,
    feature_names: Sequence[str],
    label: str,
    seed: int | None = 0,
    **params,
) -> TableModel:
    """Fit one of the paper's black-box families on a table.

    ``kind`` is one of ``random_forest``, ``random_forest_regressor``,
    ``xgboost``, ``xgboost_regressor``, ``neural_network``, ``logistic``.
    Keyword arguments override per-kind defaults.
    """
    if kind not in MODEL_KINDS:
        raise ValueError(f"unknown model kind {kind!r}; options: {sorted(MODEL_KINDS)}")
    ctor, _is_clf, encoding = MODEL_KINDS[kind]
    merged = dict(_DEFAULTS.get(kind, {}))
    merged.update(params)
    if "seed" not in merged and kind != "logistic":
        merged["seed"] = seed
    model = ctor(**merged)
    return TableModel(model, feature_names, encoding).fit(table, label)
