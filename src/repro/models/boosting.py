"""Second-order gradient boosting — the XGBoost stand-in.

Each round fits a CART regression tree to the negative gradient of the
loss, then replaces leaf values with the Newton step
``-sum(g) / (sum(h) + lambda)`` over that leaf (the core of XGBoost's
algorithm). Logistic loss for classification, squared loss for
regression.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import BaseClassifier, BaseRegressor
from repro.models.tree import DecisionTreeRegressor
from repro.utils.rng import as_generator, spawn_generators


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))


class _NewtonTree:
    """A regression tree whose leaf values are Newton steps."""

    def __init__(self, tree: DecisionTreeRegressor, leaf_values: np.ndarray):
        self.tree = tree
        self.leaf_values = leaf_values

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.leaf_values[self.tree.apply(X)]


def _fit_newton_tree(
    X: np.ndarray,
    gradients: np.ndarray,
    hessians: np.ndarray,
    max_depth: int,
    min_samples_leaf: int,
    reg_lambda: float,
    subsample_rows: np.ndarray,
    rng: np.random.Generator,
) -> _NewtonTree:
    tree = DecisionTreeRegressor(
        max_depth=max_depth,
        min_samples_leaf=min_samples_leaf,
        seed=rng,
    )
    tree.fit(X[subsample_rows], -gradients[subsample_rows])
    # Newton leaf refit uses the *full* gradient statistics so the step is
    # valid even under row subsampling.
    leaves = tree.apply(X)
    values = np.zeros(tree.n_leaves_)
    for leaf in range(tree.n_leaves_):
        members = leaves == leaf
        if members.any():
            g = gradients[members].sum()
            h = hessians[members].sum()
            values[leaf] = -g / (h + reg_lambda)
    return _NewtonTree(tree, values)


class GradientBoostingClassifier(BaseClassifier):
    """Binary / one-vs-rest boosted trees with logistic loss."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.seed = seed
        self.ensembles_: list[list[_NewtonTree]] | None = None
        self.base_scores_: np.ndarray | None = None

    def _fit(self, X: np.ndarray, y_idx: np.ndarray, n_classes: int) -> None:
        n = len(X)
        # One-vs-rest: binary problems share the tree machinery; for the
        # common binary case only one ensemble is trained.
        n_problems = 1 if n_classes == 2 else n_classes
        rngs = spawn_generators(self.seed, self.n_estimators * n_problems)
        sampler = as_generator(self.seed)
        self.ensembles_ = []
        self.base_scores_ = np.zeros(n_problems)
        for problem in range(n_problems):
            target = (y_idx == (problem if n_problems > 1 else 1)).astype(float)
            prior = np.clip(target.mean(), 1e-6, 1 - 1e-6)
            base = float(np.log(prior / (1 - prior)))
            self.base_scores_[problem] = base
            raw = np.full(n, base)
            ensemble: list[_NewtonTree] = []
            for round_ in range(self.n_estimators):
                prob = _sigmoid(raw)
                gradients = prob - target
                hessians = prob * (1 - prob)
                if self.subsample < 1.0:
                    rows = sampler.choice(
                        n, size=max(1, int(self.subsample * n)), replace=False
                    )
                else:
                    rows = np.arange(n)
                tree = _fit_newton_tree(
                    X,
                    gradients,
                    hessians,
                    self.max_depth,
                    self.min_samples_leaf,
                    self.reg_lambda,
                    rows,
                    rngs[problem * self.n_estimators + round_],
                )
                raw += self.learning_rate * tree.predict(X)
                ensemble.append(tree)
            self.ensembles_.append(ensemble)

    def _raw_scores(self, X: np.ndarray) -> np.ndarray:
        scores = np.tile(self.base_scores_, (len(X), 1))
        for p, ensemble in enumerate(self.ensembles_):
            for tree in ensemble:
                scores[:, p] += self.learning_rate * tree.predict(X)
        return scores

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        raw = self._raw_scores(X)
        if raw.shape[1] == 1:
            pos = _sigmoid(raw[:, 0])
            return np.column_stack([1 - pos, pos])
        probs = _sigmoid(raw)
        totals = probs.sum(axis=1, keepdims=True)
        totals[totals == 0] = 1.0
        return probs / totals


class GradientBoostingRegressor(BaseRegressor):
    """Boosted trees with squared loss (hessian = 1)."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        reg_lambda: float = 1.0,
        subsample: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ):
        super().__init__()
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.reg_lambda = reg_lambda
        self.subsample = subsample
        self.seed = seed
        self.trees_: list[_NewtonTree] | None = None
        self.base_score_: float = 0.0

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n = len(X)
        rngs = spawn_generators(self.seed, self.n_estimators)
        sampler = as_generator(self.seed)
        self.base_score_ = float(y.mean())
        raw = np.full(n, self.base_score_)
        hessians = np.ones(n)
        self.trees_ = []
        for round_ in range(self.n_estimators):
            gradients = raw - y
            if self.subsample < 1.0:
                rows = sampler.choice(
                    n, size=max(1, int(self.subsample * n)), replace=False
                )
            else:
                rows = np.arange(n)
            tree = _fit_newton_tree(
                X,
                gradients,
                hessians,
                self.max_depth,
                self.min_samples_leaf,
                self.reg_lambda,
                rows,
                rngs[round_],
            )
            raw += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)

    def _predict(self, X: np.ndarray) -> np.ndarray:
        pred = np.full(len(X), self.base_score_)
        for tree in self.trees_:
            pred += self.learning_rate * tree.predict(X)
        return pred
