"""Evaluation metrics for the ML substrate."""

from __future__ import annotations

import numpy as np


def accuracy(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    if len(y_true) == 0:
        raise ValueError("empty inputs")
    return float(np.mean(y_true == y_pred))


def rmse(y_true, y_pred) -> float:
    """Root mean squared error."""
    y_true = np.asarray(y_true, dtype=float)
    y_pred = np.asarray(y_pred, dtype=float)
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def log_loss(y_true_idx, proba, eps: float = 1e-12) -> float:
    """Cross-entropy given integer class indices and a probability matrix."""
    proba = np.clip(np.asarray(proba, dtype=float), eps, 1.0)
    y = np.asarray(y_true_idx, dtype=int)
    return float(-np.mean(np.log(proba[np.arange(len(y)), y])))


def roc_auc(y_true, scores) -> float:
    """Binary AUC via the rank statistic (ties handled by midranks)."""
    y = np.asarray(y_true).astype(bool)
    s = np.asarray(scores, dtype=float)
    n_pos, n_neg = int(y.sum()), int((~y).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("AUC requires both classes present")
    order = np.argsort(s, kind="stable")
    ranks = np.empty(len(s), dtype=float)
    sorted_scores = s[order]
    i = 0
    while i < len(s):
        j = i
        while j + 1 < len(s) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i : j + 1]] = (i + j) / 2.0 + 1.0
        i = j + 1
    return float((ranks[y].sum() - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Counts matrix ``C[i, j]`` = true label i predicted as j."""
    y_true, y_pred = np.asarray(y_true), np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    index = {lab: i for i, lab in enumerate(labels)}
    out = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        out[index[t], index[p]] += 1
    return out
