"""JSON (de)serialisation for the ML substrate and TableModel.

A trained black box should outlive the process that fit it, and pickle
is unsafe for untrusted files — so every model in
:mod:`repro.models` converts to and from a plain JSON document:

>>> save_model(model, "model.json")
>>> model = load_model("model.json")

Numpy arrays are stored as nested lists (the models here are small:
dozens of trees, a few weight matrices), trees as nested node dicts.
The document carries a ``kind`` tag resolved through an explicit
registry, so loading never executes arbitrary classes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.models.boosting import (
    GradientBoostingClassifier,
    GradientBoostingRegressor,
    _NewtonTree,
)
from repro.models.forest import RandomForestClassifier, RandomForestRegressor
from repro.models.linear import LinearRegression, LogisticRegression
from repro.models.neural import NeuralNetworkClassifier
from repro.models.pipeline import TableModel
from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor, _Node
from repro.data.encoding import OneHotEncoder


# ---------------------------------------------------------------------------
# node-level helpers


def _node_to_dict(node: _Node) -> dict:
    out: dict[str, Any] = {
        "feature": node.feature,
        "threshold": node.threshold,
        "n_samples": node.n_samples,
        "impurity": node.impurity,
        "leaf_id": node.leaf_id,
    }
    if isinstance(node.value, np.ndarray):
        out["value"] = node.value.tolist()
        out["value_kind"] = "array"
    else:
        out["value"] = node.value
        out["value_kind"] = "scalar"
    if node.left is not None:
        out["left"] = _node_to_dict(node.left)
        out["right"] = _node_to_dict(node.right)
    return out


def _node_from_dict(data: dict) -> _Node:
    value = (
        np.asarray(data["value"], dtype=float)
        if data["value_kind"] == "array"
        else data["value"]
    )
    node = _Node(
        feature=data["feature"],
        threshold=data["threshold"],
        value=value,
        n_samples=data["n_samples"],
        impurity=data["impurity"],
        leaf_id=data["leaf_id"],
    )
    if "left" in data:
        node.left = _node_from_dict(data["left"])
        node.right = _node_from_dict(data["right"])
    return node


def _array(value) -> list | None:
    return None if value is None else np.asarray(value).tolist()


# ---------------------------------------------------------------------------
# per-class encoders / decoders


def _tree_clf_to_dict(model: DecisionTreeClassifier) -> dict:
    return {
        "classes": model.classes_.tolist(),
        "root": _node_to_dict(model.root_),
        "feature_importances": _array(model.feature_importances_),
    }


def _tree_clf_from_dict(data: dict) -> DecisionTreeClassifier:
    model = DecisionTreeClassifier()
    model.classes_ = np.asarray(data["classes"])
    model.root_ = _node_from_dict(data["root"])
    model.feature_importances_ = np.asarray(data["feature_importances"])
    return model


def _tree_reg_to_dict(model: DecisionTreeRegressor) -> dict:
    return {
        "root": _node_to_dict(model.root_),
        "n_leaves": model.n_leaves_,
        "feature_importances": _array(model.feature_importances_),
    }


def _tree_reg_from_dict(data: dict) -> DecisionTreeRegressor:
    model = DecisionTreeRegressor()
    model.root_ = _node_from_dict(data["root"])
    model.n_leaves_ = data["n_leaves"]
    model.feature_importances_ = np.asarray(data["feature_importances"])
    model.is_fitted_ = True
    return model


def _forest_clf_to_dict(model: RandomForestClassifier) -> dict:
    return {
        "classes": model.classes_.tolist(),
        "trees": [_tree_clf_to_dict(t) for t in model.trees_],
        "feature_importances": _array(model.feature_importances_),
    }


def _forest_clf_from_dict(data: dict) -> RandomForestClassifier:
    model = RandomForestClassifier()
    model.classes_ = np.asarray(data["classes"])
    model.trees_ = [_tree_clf_from_dict(t) for t in data["trees"]]
    model.feature_importances_ = np.asarray(data["feature_importances"])
    return model


def _forest_reg_to_dict(model: RandomForestRegressor) -> dict:
    return {
        "trees": [_tree_reg_to_dict(t) for t in model.trees_],
        "feature_importances": _array(model.feature_importances_),
    }


def _forest_reg_from_dict(data: dict) -> RandomForestRegressor:
    model = RandomForestRegressor()
    model.trees_ = [_tree_reg_from_dict(t) for t in data["trees"]]
    model.feature_importances_ = np.asarray(data["feature_importances"])
    model.is_fitted_ = True
    return model


def _newton_tree_to_dict(tree: _NewtonTree) -> dict:
    return {
        "tree": _tree_reg_to_dict(tree.tree),
        "leaf_values": tree.leaf_values.tolist(),
    }


def _newton_tree_from_dict(data: dict) -> _NewtonTree:
    return _NewtonTree(
        _tree_reg_from_dict(data["tree"]), np.asarray(data["leaf_values"])
    )


def _gbm_clf_to_dict(model: GradientBoostingClassifier) -> dict:
    return {
        "classes": model.classes_.tolist(),
        "learning_rate": model.learning_rate,
        "base_scores": model.base_scores_.tolist(),
        "ensembles": [
            [_newton_tree_to_dict(t) for t in ensemble]
            for ensemble in model.ensembles_
        ],
    }


def _gbm_clf_from_dict(data: dict) -> GradientBoostingClassifier:
    model = GradientBoostingClassifier(learning_rate=data["learning_rate"])
    model.classes_ = np.asarray(data["classes"])
    model.base_scores_ = np.asarray(data["base_scores"])
    model.ensembles_ = [
        [_newton_tree_from_dict(t) for t in ensemble]
        for ensemble in data["ensembles"]
    ]
    return model


def _gbm_reg_to_dict(model: GradientBoostingRegressor) -> dict:
    return {
        "learning_rate": model.learning_rate,
        "base_score": model.base_score_,
        "trees": [_newton_tree_to_dict(t) for t in model.trees_],
    }


def _gbm_reg_from_dict(data: dict) -> GradientBoostingRegressor:
    model = GradientBoostingRegressor(learning_rate=data["learning_rate"])
    model.base_score_ = data["base_score"]
    model.trees_ = [_newton_tree_from_dict(t) for t in data["trees"]]
    model.is_fitted_ = True
    return model


def _logistic_to_dict(model: LogisticRegression) -> dict:
    return {
        "classes": model.classes_.tolist(),
        "coef": model.coef_.tolist(),
        "intercept": model.intercept_.tolist(),
    }


def _logistic_from_dict(data: dict) -> LogisticRegression:
    model = LogisticRegression()
    model.classes_ = np.asarray(data["classes"])
    model.coef_ = np.asarray(data["coef"])
    model.intercept_ = np.asarray(data["intercept"])
    return model


def _linear_to_dict(model: LinearRegression) -> dict:
    return {"coef": model.coef_.tolist(), "intercept": model.intercept_}


def _linear_from_dict(data: dict) -> LinearRegression:
    model = LinearRegression()
    model.coef_ = np.asarray(data["coef"])
    model.intercept_ = data["intercept"]
    model.is_fitted_ = True
    return model


def _neural_to_dict(model: NeuralNetworkClassifier) -> dict:
    return {
        "classes": model.classes_.tolist(),
        "weights": [w.tolist() for w in model.weights_],
        "biases": [b.tolist() for b in model.biases_],
        "mean": model._mean.tolist(),
        "std": model._std.tolist(),
    }


def _neural_from_dict(data: dict) -> NeuralNetworkClassifier:
    model = NeuralNetworkClassifier()
    model.classes_ = np.asarray(data["classes"])
    model.weights_ = [np.asarray(w) for w in data["weights"]]
    model.biases_ = [np.asarray(b) for b in data["biases"]]
    model._mean = np.asarray(data["mean"])
    model._std = np.asarray(data["std"])
    return model


_REGISTRY = {
    "DecisionTreeClassifier": (DecisionTreeClassifier, _tree_clf_to_dict, _tree_clf_from_dict),
    "DecisionTreeRegressor": (DecisionTreeRegressor, _tree_reg_to_dict, _tree_reg_from_dict),
    "RandomForestClassifier": (RandomForestClassifier, _forest_clf_to_dict, _forest_clf_from_dict),
    "RandomForestRegressor": (RandomForestRegressor, _forest_reg_to_dict, _forest_reg_from_dict),
    "GradientBoostingClassifier": (GradientBoostingClassifier, _gbm_clf_to_dict, _gbm_clf_from_dict),
    "GradientBoostingRegressor": (GradientBoostingRegressor, _gbm_reg_to_dict, _gbm_reg_from_dict),
    "LogisticRegression": (LogisticRegression, _logistic_to_dict, _logistic_from_dict),
    "LinearRegression": (LinearRegression, _linear_to_dict, _linear_from_dict),
    "NeuralNetworkClassifier": (NeuralNetworkClassifier, _neural_to_dict, _neural_from_dict),
}


# ---------------------------------------------------------------------------
# public API


def model_to_dict(model) -> dict:
    """Convert any substrate model (or TableModel) to a JSON-able dict."""
    if isinstance(model, TableModel):
        inner = model_to_dict(model.model)
        encoder = None
        if model._encoder is not None:
            encoder = {
                "columns": model._encoder.columns_,
                "domains": {
                    k: list(v) for k, v in model._encoder.domains_.items()
                },
                "drop_first": model._encoder.drop_first,
            }
        return {
            "kind": "TableModel",
            "inner": inner,
            "feature_names": model.feature_names,
            "encoding": model.encoding,
            "outcome_domain": list(model.outcome_domain_ or []),
            "encoder": encoder,
        }
    name = type(model).__name__
    if name not in _REGISTRY:
        raise TypeError(f"cannot serialise model of type {name}")
    _cls, encode, _decode = _REGISTRY[name]
    return {"kind": name, "payload": encode(model)}


def model_from_dict(data: dict):
    """Rebuild a model saved by :func:`model_to_dict`."""
    kind = data.get("kind")
    if kind == "TableModel":
        inner = model_from_dict(data["inner"])
        model = TableModel(inner, data["feature_names"], data["encoding"])
        model.outcome_domain_ = tuple(data["outcome_domain"]) or None
        if data.get("encoder"):
            spec = data["encoder"]
            encoder = OneHotEncoder(drop_first=spec["drop_first"])
            encoder.columns_ = list(spec["columns"])
            encoder.domains_ = {k: tuple(v) for k, v in spec["domains"].items()}
            encoder.feature_names_ = []
            encoder._slices = {}
            start = 0
            for name in encoder.columns_:
                cats = encoder.domains_[name][1 if encoder.drop_first else 0:]
                encoder.feature_names_.extend(f"{name}={c}" for c in cats)
                encoder._slices[name] = slice(start, start + len(cats))
                start += len(cats)
            model._encoder = encoder
        return model
    if kind not in _REGISTRY:
        raise TypeError(f"unknown serialised model kind {kind!r}")
    _cls, _encode, decode = _REGISTRY[kind]
    return decode(data["payload"])


def save_model(model, path: str | Path) -> None:
    """Serialise ``model`` as JSON at ``path``."""
    Path(path).write_text(json.dumps(model_to_dict(model)))


def load_model(path: str | Path):
    """Load a model saved by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))
