"""Reusable structural-equation building blocks.

Every helper returns an ``EquationFunc`` — ``f(parent_codes, u) -> codes``
— suitable for :class:`~repro.causal.scm.StructuralEquation`. The uniform
exogenous draw ``u`` is converted to whatever noise shape the mechanism
needs (inverse-CDF sampling), which keeps the whole SCM a deterministic
function of ``u`` and hence counterfactual-ready.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np
from scipy.special import ndtri

from repro.causal.scm import EquationFunc


def root_categorical(probabilities: Sequence[float]) -> EquationFunc:
    """A root node drawn from a fixed categorical distribution."""
    probs = np.asarray(probabilities, dtype=float)
    if probs.ndim != 1 or probs.size == 0:
        raise ValueError("probabilities must be a non-empty vector")
    if not np.isclose(probs.sum(), 1.0):
        raise ValueError(f"probabilities must sum to 1, got {probs.sum()}")
    cumulative = np.cumsum(probs)

    def sample(parents: Mapping[str, np.ndarray], u: np.ndarray) -> np.ndarray:
        return np.searchsorted(cumulative, u, side="right").clip(0, probs.size - 1)

    return sample


def linear_threshold(
    weights: Mapping[str, float],
    cuts: Sequence[float],
    bias: float = 0.0,
    noise_scale: float = 1.0,
) -> EquationFunc:
    """Latent-score mechanism: linear in parent codes + Gaussian noise.

    The latent score ``bias + sum_i w_i * code_i + noise`` is discretised
    by ``cuts`` into ``len(cuts) + 1`` ordinal categories. This is the
    workhorse mechanism for the synthetic dataset replicas: positive
    weights give the qualitative monotone dependencies the paper's causal
    analysis relies on.
    """
    cuts = np.asarray(cuts, dtype=float)

    def sample(parents: Mapping[str, np.ndarray], u: np.ndarray) -> np.ndarray:
        latent = np.full(u.shape, bias, dtype=float)
        for parent, weight in weights.items():
            latent += weight * parents[parent].astype(float)
        if noise_scale:
            latent += noise_scale * ndtri(np.clip(u, 1e-12, 1 - 1e-12))
        return np.searchsorted(cuts, latent, side="right")

    return sample


def logistic_binary(
    weights: Mapping[str, float],
    bias: float = 0.0,
) -> EquationFunc:
    """Binary node: 1 with probability sigmoid(bias + w·codes)."""

    def sample(parents: Mapping[str, np.ndarray], u: np.ndarray) -> np.ndarray:
        logit = np.full(u.shape, bias, dtype=float)
        for parent, weight in weights.items():
            logit += weight * parents[parent].astype(float)
        prob = 1.0 / (1.0 + np.exp(-logit))
        return (u < prob).astype(np.int64)

    return sample


def conditional_table(
    parent_order: Sequence[str],
    cpt: Mapping[tuple, Sequence[float]],
    n_categories: int,
) -> EquationFunc:
    """Explicit conditional probability table.

    ``cpt`` maps a tuple of parent *codes* (in ``parent_order``) to a
    probability vector over the node's categories. Missing parent
    combinations raise at evaluation time so specification errors surface
    early.
    """
    cumulative = {
        key: np.cumsum(np.asarray(p, dtype=float)) for key, p in cpt.items()
    }
    for key, cum in cumulative.items():
        if len(cum) != n_categories or not np.isclose(cum[-1], 1.0):
            raise ValueError(f"CPT row {key}: bad probability vector")

    def sample(parents: Mapping[str, np.ndarray], u: np.ndarray) -> np.ndarray:
        n = u.shape[0]
        out = np.empty(n, dtype=np.int64)
        stacked = np.column_stack([parents[p] for p in parent_order]) if parent_order else np.zeros((n, 0), dtype=np.int64)
        # Group rows by parent configuration to vectorise the lookups.
        if stacked.shape[1] == 0:
            cum = cumulative[()]
            return np.searchsorted(cum, u, side="right").clip(0, n_categories - 1)
        uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
        for g, combo in enumerate(uniques):
            key = tuple(int(c) for c in combo)
            if key not in cumulative:
                raise KeyError(f"CPT has no row for parent codes {key}")
            members = inverse == g
            out[members] = np.searchsorted(
                cumulative[key], u[members], side="right"
            ).clip(0, n_categories - 1)
        return out

    return sample


def deterministic(
    parent_order: Sequence[str],
    func,
) -> EquationFunc:
    """A noise-free node computed from parent codes via ``func(matrix)``.

    ``func`` receives an ``(n, n_parents)`` int matrix and must return an
    ``(n,)`` code vector.
    """

    def sample(parents: Mapping[str, np.ndarray], u: np.ndarray) -> np.ndarray:
        matrix = (
            np.column_stack([parents[p] for p in parent_order])
            if parent_order
            else np.zeros((u.shape[0], 0), dtype=np.int64)
        )
        return np.asarray(func(matrix), dtype=np.int64)

    return sample


def mixture(
    primary: EquationFunc,
    alternative: EquationFunc,
    alternative_weight: float,
) -> EquationFunc:
    """Blend two mechanisms: with prob ``alternative_weight`` use the second.

    Used by the monotonicity-robustness experiment (Section 5.5) to inject
    a controlled amount of non-monotone behaviour: the exogenous draw is
    split to decide which mechanism fires, keeping everything a
    deterministic function of ``u``.
    """
    if not 0.0 <= alternative_weight <= 1.0:
        raise ValueError("alternative_weight must be in [0, 1]")

    def sample(parents: Mapping[str, np.ndarray], u: np.ndarray) -> np.ndarray:
        # Split u into a selector and a fresh uniform (bit-slicing trick).
        selector = (u * 1021.0) % 1.0  # decorrelated second uniform
        inner = u
        use_alt = selector < alternative_weight
        out = primary(parents, inner)
        if use_alt.any():
            alt = alternative(parents, inner)
            out = np.where(use_alt, alt, out)
        return out

    return sample
