"""Causal substrate: diagrams, structural causal models, identification.

This package implements the probabilistic-causal-model machinery of
Section 2 of the paper: causal diagrams with d-separation and the
backdoor criterion, structural causal models with interventions and
Pearl's three-step counterfactual procedure, and backdoor-adjustment
estimation of interventional queries ``Pr(o | do(x), k)`` from data.
"""

from repro.causal.graph import CausalDiagram
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.causal.identification import (
    BackdoorAdjustment,
    interventional_probability,
)
from repro.causal.ground_truth import GroundTruthScores
from repro.causal.discovery import (
    PCAlgorithm,
    PartiallyDirectedGraph,
    g_square_test,
    structural_hamming_distance,
)

__all__ = [
    "CausalDiagram",
    "StructuralCausalModel",
    "StructuralEquation",
    "BackdoorAdjustment",
    "interventional_probability",
    "GroundTruthScores",
    "PCAlgorithm",
    "PartiallyDirectedGraph",
    "g_square_test",
    "structural_hamming_distance",
]
