"""Structural causal models over discrete domains.

A :class:`StructuralCausalModel` is Pearl's ``<M, Pr(u)>``: every
endogenous variable ``X`` has a structural equation
``X = F_X(Pa(X), U_X)`` where ``U_X`` is an exogenous uniform(0,1) draw.
Keeping one scalar uniform noise per node is fully general for discrete
domains (any conditional distribution can be expressed via its inverse
CDF) and makes Pearl's three-step counterfactual procedure trivial: with
the *generating* model in hand, abduction is simply "reuse the exogenous
draws", so unit-level counterfactuals are computed by re-evaluating the
equations under an intervention with the same ``u`` (see
:mod:`repro.causal.ground_truth`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.causal.graph import CausalDiagram
from repro.data.table import Column, Table
from repro.utils.exceptions import GraphError
from repro.utils.rng import as_generator

EquationFunc = Callable[[Mapping[str, np.ndarray], np.ndarray], np.ndarray]


@dataclass(frozen=True)
class StructuralEquation:
    """One endogenous variable's mechanism.

    Parameters
    ----------
    node:
        Variable name.
    parents:
        Names of endogenous parents, in the order ``func`` expects.
    domain:
        Ordered category labels. ``func`` must return integer codes into
        this tuple.
    func:
        ``func(parent_codes, u) -> codes`` where ``parent_codes`` maps each
        parent name to its code vector and ``u`` is a uniform(0,1) vector of
        the same length.
    ordered:
        Whether the domain order is meaningful (ordinal attribute).
    """

    node: str
    parents: tuple[str, ...]
    domain: tuple
    func: EquationFunc
    ordered: bool = True

    def evaluate(self, parent_codes: Mapping[str, np.ndarray], u: np.ndarray) -> np.ndarray:
        """Apply the mechanism and validate the produced codes."""
        codes = np.asarray(self.func(parent_codes, u), dtype=np.int64)
        if codes.shape != u.shape:
            raise ValueError(
                f"equation for {self.node!r} returned shape {codes.shape}, "
                f"expected {u.shape}"
            )
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.domain)):
            raise ValueError(
                f"equation for {self.node!r} produced codes outside its domain"
            )
        return codes


class StructuralCausalModel:
    """A set of structural equations closed under their parent relations."""

    def __init__(self, equations: Sequence[StructuralEquation]):
        self._equations = {eq.node: eq for eq in equations}
        if len(self._equations) != len(equations):
            raise GraphError("duplicate node in structural equations")
        edges = [
            (parent, eq.node) for eq in equations for parent in eq.parents
        ]
        missing = {
            parent
            for eq in equations
            for parent in eq.parents
            if parent not in self._equations
        }
        if missing:
            raise GraphError(f"parents without equations: {sorted(missing)}")
        self._diagram = CausalDiagram(edges, nodes=list(self._equations))
        self._order = self._diagram.topological_order()

    # -- metadata ------------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """All endogenous variables, in insertion order."""
        return list(self._equations)

    @property
    def diagram(self) -> CausalDiagram:
        """The causal diagram induced by the equations."""
        return self._diagram

    def equation(self, node: str) -> StructuralEquation:
        """Return the structural equation of ``node``."""
        return self._equations[node]

    def domain(self, node: str) -> tuple:
        """Return the ordered domain of ``node``."""
        return self._equations[node].domain

    # -- sampling / evaluation -------------------------------------------------

    def draw_exogenous(self, n: int, seed: int | np.random.Generator | None = None) -> dict[str, np.ndarray]:
        """Draw ``n`` exogenous contexts: one uniform(0,1) vector per node."""
        rng = as_generator(seed)
        return {node: rng.random(n) for node in self._order}

    def evaluate(
        self,
        exogenous: Mapping[str, np.ndarray],
        interventions: Mapping[str, int] | None = None,
    ) -> dict[str, np.ndarray]:
        """Solve the equations for given exogenous draws.

        ``interventions`` maps node names to *codes*; intervened nodes are
        clamped (their equation is replaced by the constant — the ``do``
        operator of Section 2).
        """
        interventions = dict(interventions or {})
        values: dict[str, np.ndarray] = {}
        for node in self._order:
            u = np.asarray(exogenous[node])
            if node in interventions:
                code = int(interventions[node])
                if not 0 <= code < len(self.domain(node)):
                    raise ValueError(
                        f"intervention code {code} outside domain of {node!r}"
                    )
                values[node] = np.full(u.shape, code, dtype=np.int64)
                continue
            eq = self._equations[node]
            parent_codes = {p: values[p] for p in eq.parents}
            values[node] = eq.evaluate(parent_codes, u)
        return values

    def sample(
        self,
        n: int,
        seed: int | np.random.Generator | None = None,
        interventions: Mapping[str, int] | None = None,
        return_exogenous: bool = False,
    ):
        """Sample ``n`` rows, optionally under an intervention.

        Returns a :class:`Table`; with ``return_exogenous=True``, returns
        ``(table, exogenous)`` so counterfactual twins can be generated
        later for the same units.
        """
        exogenous = self.draw_exogenous(n, seed)
        values = self.evaluate(exogenous, interventions)
        table = self.to_table(values)
        if return_exogenous:
            return table, exogenous
        return table

    def to_table(self, values: Mapping[str, np.ndarray]) -> Table:
        """Package evaluated code vectors into a :class:`Table`."""
        cols = [
            Column.from_codes(
                node, values[node], self.domain(node), ordered=self._equations[node].ordered
            )
            for node in self._equations
        ]
        return Table(cols)

    def counterfactual(
        self,
        exogenous: Mapping[str, np.ndarray],
        interventions: Mapping[str, int],
    ) -> dict[str, np.ndarray]:
        """Pearl's three-step counterfactual for known exogenous context.

        Abduction is the identity here because the caller passes the actual
        exogenous draws of the units in question; action and prediction are
        performed by :meth:`evaluate`.
        """
        return self.evaluate(exogenous, interventions)
