"""Causal diagrams: DAG structure, d-separation, backdoor criterion.

A :class:`CausalDiagram` is a thin immutable wrapper over a
:class:`networkx.DiGraph` exposing exactly the graph-theoretic queries
LEWIS needs (Sections 2 and 4.1 of the paper):

* parents / ancestors / descendants / non-descendants,
* d-separation,
* the backdoor criterion and a minimal-ish backdoor set search.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from repro.utils.exceptions import GraphError


class CausalDiagram:
    """An immutable DAG over named attributes."""

    def __init__(self, edges: Iterable[tuple[str, str]], nodes: Iterable[str] = ()):
        graph = nx.DiGraph()
        graph.add_nodes_from(nodes)
        graph.add_edges_from(edges)
        if not nx.is_directed_acyclic_graph(graph):
            cycle = nx.find_cycle(graph)
            raise GraphError(f"causal diagram contains a cycle: {cycle}")
        self._graph = graph

    # -- structure ---------------------------------------------------------

    @property
    def nodes(self) -> list[str]:
        """All attribute names in the diagram."""
        return list(self._graph.nodes)

    @property
    def edges(self) -> list[tuple[str, str]]:
        """All directed edges ``(cause, effect)``."""
        return list(self._graph.edges)

    def __contains__(self, node: str) -> bool:
        return node in self._graph

    def _require(self, *nodes: str) -> None:
        missing = [n for n in nodes if n not in self._graph]
        if missing:
            raise GraphError(f"unknown nodes {missing}; known: {self.nodes}")

    def parents(self, node: str) -> list[str]:
        """Direct causes of ``node``."""
        self._require(node)
        return sorted(self._graph.predecessors(node))

    def children(self, node: str) -> list[str]:
        """Direct effects of ``node``."""
        self._require(node)
        return sorted(self._graph.successors(node))

    def ancestors(self, node: str) -> set[str]:
        """All (possibly indirect) causes of ``node``."""
        self._require(node)
        return set(nx.ancestors(self._graph, node))

    def descendants(self, node: str) -> set[str]:
        """All variables caused (directly or indirectly) by ``node``."""
        self._require(node)
        return set(nx.descendants(self._graph, node))

    def descendants_of(self, nodes: Iterable[str]) -> set[str]:
        """Union of descendants over a set of nodes (the nodes excluded)."""
        out: set[str] = set()
        for node in nodes:
            out |= self.descendants(node)
        return out - set(nodes)

    def non_descendants(self, node: str) -> set[str]:
        """Variables not caused by ``node`` (``node`` itself excluded)."""
        self._require(node)
        return set(self._graph.nodes) - self.descendants(node) - {node}

    def non_descendants_of(self, nodes: Iterable[str]) -> set[str]:
        """Variables not caused by any node in ``nodes``."""
        nodes = list(nodes)
        out = set(self._graph.nodes) - set(nodes)
        for node in nodes:
            out -= self.descendants(node)
        return out

    def topological_order(self) -> list[str]:
        """A topological ordering of all nodes."""
        return list(nx.topological_sort(self._graph))

    # -- separation --------------------------------------------------------

    def d_separated(
        self, xs: Iterable[str], ys: Iterable[str], given: Iterable[str] = ()
    ) -> bool:
        """Return True iff ``xs`` and ``ys`` are d-separated by ``given``."""
        xs, ys, given = set(xs), set(ys), set(given)
        self._require(*xs, *ys, *given)
        return nx.is_d_separator(self._graph, xs, ys, given)

    def satisfies_backdoor(
        self,
        treatment: Sequence[str] | str,
        outcome: Sequence[str] | str,
        adjustment: Iterable[str],
    ) -> bool:
        """Check the backdoor criterion of ``adjustment`` w.r.t. (X, Y).

        ``adjustment`` satisfies the criterion iff (i) it contains no
        descendant of any treatment node, and (ii) it blocks every backdoor
        path — i.e. X and Y are d-separated by ``adjustment`` in the graph
        with all edges *out of* X removed.
        """
        xs = [treatment] if isinstance(treatment, str) else list(treatment)
        ys = [outcome] if isinstance(outcome, str) else list(outcome)
        zs = set(adjustment)
        self._require(*xs, *ys, *zs)
        if zs & self.descendants_of(xs):
            return False
        if zs & set(xs) or zs & set(ys):
            return False
        pruned = self._graph.copy()
        pruned.remove_edges_from([(x, c) for x in xs for c in list(pruned.successors(x))])
        ys_eff = set(ys) - set(xs)
        if not ys_eff:
            return True
        return nx.is_d_separator(pruned, set(xs), ys_eff, zs)

    def backdoor_set(
        self,
        treatment: Sequence[str] | str,
        outcome: Sequence[str] | str,
        forbidden: Iterable[str] = (),
    ) -> list[str] | None:
        """Find a backdoor adjustment set, preferring small ones.

        The parents of the treatment always satisfy the criterion in a
        Markovian diagram, so the search starts from subsets of the
        treatment's ancestors and falls back to the full parent set.
        Returns ``None`` when no admissible set avoiding ``forbidden``
        exists.
        """
        xs = [treatment] if isinstance(treatment, str) else list(treatment)
        ys = [outcome] if isinstance(outcome, str) else list(outcome)
        forbidden = set(forbidden) | set(xs) | set(ys)

        if self.satisfies_backdoor(xs, ys, ()):
            return []

        candidates = set()
        for x in xs:
            candidates |= self.ancestors(x)
        candidates -= forbidden
        candidates = sorted(candidates)

        # Greedy: grow from parents (which block all backdoor paths when
        # observable), then prune elements one at a time.
        parent_set = sorted(
            set().union(*(self.parents(x) for x in xs)) - forbidden
        )
        if not self.satisfies_backdoor(xs, ys, parent_set):
            # Parents unavailable (forbidden) — try the full candidate pool.
            if not self.satisfies_backdoor(xs, ys, candidates):
                return None
            parent_set = list(candidates)
        pruned = list(parent_set)
        for node in sorted(parent_set):
            trial = [n for n in pruned if n != node]
            if self.satisfies_backdoor(xs, ys, trial):
                pruned = trial
        return pruned

    # -- derived graphs ------------------------------------------------------

    def with_outcome(self, outcome: str, inputs: Iterable[str]) -> "CausalDiagram":
        """Return a diagram extended with the black box's output node.

        The decision algorithm deterministically maps its inputs to the
        outcome, so the extended diagram simply adds ``input -> outcome``
        edges. Existing nodes/edges are preserved.
        """
        edges = list(self.edges) + [(i, outcome) for i in inputs]
        return CausalDiagram(edges, nodes=self.nodes + [outcome])

    def subgraph(self, nodes: Iterable[str]) -> "CausalDiagram":
        """Return the induced subdiagram over ``nodes``."""
        nodes = list(nodes)
        self._require(*nodes)
        sub = self._graph.subgraph(nodes)
        return CausalDiagram(sub.edges, nodes=nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CausalDiagram({len(self.nodes)} nodes, {len(self.edges)} edges)"
