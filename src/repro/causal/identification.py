"""Estimating interventional queries ``Pr(o | do(x), k)`` from data.

With a causal diagram in hand, the backdoor criterion (Eq. 4 of the
paper) turns interventional queries into observational sums:

    Pr(o | do(x), k) = sum_c Pr(o | c, x, k) Pr(c | k)

:class:`BackdoorAdjustment` packages the diagram lookup (find an
admissible adjustment set) together with the empirical sum; it underlies
both the bound computation of Proposition 4.1 and the point estimators of
Proposition 4.2.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.causal.graph import CausalDiagram
from repro.estimation.adjustment import adjusted_probability
from repro.estimation.probability import FrequencyEstimator
from repro.utils.exceptions import GraphError


class BackdoorAdjustment:
    """Backdoor-criterion estimation of interventional probabilities.

    Parameters
    ----------
    estimator:
        Frequency estimator over the black box's input-output table.
    diagram:
        Causal diagram *including* the outcome node (use
        :meth:`CausalDiagram.with_outcome` to extend a feature diagram).
    outcome:
        Name of the outcome column in both diagram and table.
    """

    def __init__(
        self,
        estimator: FrequencyEstimator,
        diagram: CausalDiagram,
        outcome: str,
    ):
        if outcome not in diagram:
            raise GraphError(f"outcome {outcome!r} missing from the diagram")
        self._estimator = estimator
        self._diagram = diagram
        self._outcome = outcome
        self._adjustment_cache: dict[tuple, list[str] | None] = {}

    @property
    def diagram(self) -> CausalDiagram:
        """The (outcome-extended) causal diagram."""
        return self._diagram

    def adjustment_set(
        self,
        treatment: Sequence[str],
        context: Sequence[str] = (),
    ) -> list[str] | None:
        """An admissible backdoor set for (treatment, outcome) avoiding context.

        Per Proposition 4.2 the set ``C`` is sought such that ``C ∪ K``
        satisfies the backdoor criterion; the context attributes are
        already conditioned on, so they are excluded from the search and
        the criterion is checked for ``C ∪ K`` jointly.
        """
        key = (tuple(sorted(treatment)), tuple(sorted(context)))
        if key in self._adjustment_cache:
            return self._adjustment_cache[key]
        context = list(context)
        # Search for C such that C ∪ K satisfies backdoor w.r.t. (X, O).
        # Context attributes are excluded from C (they are conditioned on
        # anyway); when the context itself already participates, the
        # criterion for C ∪ K is what matters, so verify the union.
        result = self._diagram.backdoor_set(
            list(treatment), self._outcome, forbidden=context + [self._outcome]
        )
        if result is not None:
            admissible_context = [
                c
                for c in context
                if c not in self._diagram.descendants_of(list(treatment))
            ]
            if not self._diagram.satisfies_backdoor(
                list(treatment), self._outcome, result + admissible_context
            ):
                result = None
        self._adjustment_cache[key] = result
        return result

    def interventional(
        self,
        outcome_code: int,
        treatment: Mapping[str, int],
        context: Mapping[str, int] | None = None,
        adjustment: Sequence[str] | None = None,
    ) -> float:
        """Estimate ``Pr(O = outcome_code | do(treatment), context)``.

        When ``adjustment`` is omitted it is derived from the diagram; if
        no admissible set exists the no-confounding fallback
        ``Pr(o | x, k)`` is used (Section 6 of the paper).
        """
        context = dict(context or {})
        if adjustment is None:
            adjustment = self.adjustment_set(list(treatment), list(context)) or []
        adjustment = [
            a for a in adjustment if a not in treatment and a not in context
        ]
        return adjusted_probability(
            self._estimator,
            event={self._outcome: int(outcome_code)},
            treatment=dict(treatment),
            adjustment=adjustment,
            weight_condition={},
            context=context,
        )


def interventional_probability(
    estimator: FrequencyEstimator,
    diagram: CausalDiagram,
    outcome: str,
    outcome_code: int,
    treatment: Mapping[str, int],
    context: Mapping[str, int] | None = None,
) -> float:
    """One-shot convenience wrapper over :class:`BackdoorAdjustment`."""
    return BackdoorAdjustment(estimator, diagram, outcome).interventional(
        outcome_code, treatment, context
    )
