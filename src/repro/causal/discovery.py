"""Causal structure discovery: the PC algorithm for discrete data.

Section 6 of the paper notes that when no background diagram is
available, one "can be learned from a mixture of historical and
interventional data" (citing Glymour, Zhang & Spirtes 2019).  This module
implements the constraint-based route on observational data:

1. **Skeleton discovery** — start from the complete undirected graph and
   remove the edge (X, Y) whenever X ⊥ Y | S for some conditioning set S
   drawn from the current neighbourhoods (G-square / chi-square test of
   conditional independence over contingency tables).
2. **V-structure orientation** — for every unshielded triple X - Z - Y,
   orient X -> Z <- Y when Z is not in the separating set of (X, Y).
3. **Meek rules** — propagate orientations that avoid new v-structures
   and cycles.

The output is a :class:`PartiallyDirectedGraph` (a CPDAG);
:meth:`PartiallyDirectedGraph.to_diagram` resolves the remaining
undirected edges with a user-supplied tie-breaker (default: a total
order over attribute names, e.g. temporal knowledge) and returns a
:class:`~repro.causal.graph.CausalDiagram` usable by LEWIS.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Sequence

import numpy as np
from scipy.stats import chi2

from repro.causal.graph import CausalDiagram
from repro.data.table import Table
from repro.utils.exceptions import GraphError


def g_square_test(
    table: Table,
    x: str,
    y: str,
    given: Sequence[str] = (),
    min_expected: float = 1.0,
) -> float:
    """P-value of the G-square conditional-independence test X ⊥ Y | S.

    The statistic ``2 * sum n log(n / e)`` is chi-square distributed with
    ``(|X|-1)(|Y|-1) * prod |S_i|`` degrees of freedom under independence.
    Strata with too little support contribute neither statistic nor
    degrees of freedom (the standard correction for sparse tables).
    """
    x_codes = table.codes(x)
    y_codes = table.codes(y)
    x_card = table.column(x).cardinality
    y_card = table.column(y).cardinality

    if given:
        strata_matrix = table.codes_matrix(list(given))
        _uniques, strata = np.unique(strata_matrix, axis=0, return_inverse=True)
        n_strata = int(strata.max()) + 1
    else:
        strata = np.zeros(len(table), dtype=np.int64)
        n_strata = 1

    statistic = 0.0
    dof = 0
    for s in range(n_strata):
        members = strata == s
        n = int(members.sum())
        if n < 2:
            continue
        counts = np.zeros((x_card, y_card))
        np.add.at(counts, (x_codes[members], y_codes[members]), 1.0)
        row = counts.sum(axis=1, keepdims=True)
        col = counts.sum(axis=0, keepdims=True)
        expected = row @ col / n
        # Only cells whose margins have support carry information.
        active_rows = int((row[:, 0] > 0).sum())
        active_cols = int((col[0] > 0).sum())
        if active_rows < 2 or active_cols < 2:
            continue
        if expected[expected > 0].min() < min_expected:
            # Sparse stratum: skip rather than inflate the statistic.
            continue
        mask = counts > 0
        statistic += 2.0 * float(
            np.sum(counts[mask] * np.log(counts[mask] / expected[mask]))
        )
        dof += (active_rows - 1) * (active_cols - 1)
    if dof == 0:
        # No informative stratum: cannot reject independence.
        return 1.0
    return float(chi2.sf(statistic, dof))


class PartiallyDirectedGraph:
    """A CPDAG: directed plus undirected edges over named nodes."""

    def __init__(self, nodes: Iterable[str]):
        self.nodes = list(nodes)
        self._directed: set[tuple[str, str]] = set()
        self._undirected: set[frozenset] = set()

    # -- edge bookkeeping ------------------------------------------------------

    def add_undirected(self, a: str, b: str) -> None:
        """Add an undirected edge a - b."""
        self._undirected.add(frozenset((a, b)))

    def orient(self, cause: str, effect: str) -> None:
        """Turn the (un)directed edge into ``cause -> effect``."""
        key = frozenset((cause, effect))
        self._undirected.discard(key)
        self._directed.discard((effect, cause))
        self._directed.add((cause, effect))

    def remove(self, a: str, b: str) -> None:
        """Delete any edge between a and b."""
        self._undirected.discard(frozenset((a, b)))
        self._directed.discard((a, b))
        self._directed.discard((b, a))

    def has_edge(self, a: str, b: str) -> bool:
        """True when any edge (either direction / undirected) links a, b."""
        return (
            frozenset((a, b)) in self._undirected
            or (a, b) in self._directed
            or (b, a) in self._directed
        )

    def is_directed(self, cause: str, effect: str) -> bool:
        """True when the edge ``cause -> effect`` is oriented."""
        return (cause, effect) in self._directed

    def neighbours(self, node: str) -> set[str]:
        """All nodes adjacent to ``node`` (any edge type)."""
        out = set()
        for a, b in self._directed:
            if a == node:
                out.add(b)
            elif b == node:
                out.add(a)
        for pair in self._undirected:
            if node in pair:
                out |= pair - {node}
        return out

    @property
    def directed_edges(self) -> list[tuple[str, str]]:
        """Oriented edges."""
        return sorted(self._directed)

    @property
    def undirected_edges(self) -> list[tuple[str, str]]:
        """Unoriented edges as sorted tuples."""
        return sorted(tuple(sorted(pair)) for pair in self._undirected)

    # -- resolution ------------------------------------------------------------

    def to_diagram(self, order: Sequence[str] | None = None) -> CausalDiagram:
        """Resolve undirected edges with a total order and build a DAG.

        ``order`` lists nodes from upstream to downstream (temporal or
        domain knowledge); each undirected edge is oriented from the
        earlier to the later node. Defaults to :attr:`nodes` order.
        """
        order = list(order) if order is not None else list(self.nodes)
        missing = set(self.nodes) - set(order)
        if missing:
            raise GraphError(f"order is missing nodes: {sorted(missing)}")
        position = {n: i for i, n in enumerate(order)}
        edges = list(self._directed)
        for a, b in self.undirected_edges:
            edges.append((a, b) if position[a] < position[b] else (b, a))
        return CausalDiagram(edges, nodes=self.nodes)


class PCAlgorithm:
    """Constraint-based structure discovery over a discrete table."""

    def __init__(
        self,
        alpha: float = 0.01,
        max_condition_size: int = 3,
        min_expected: float = 1.0,
    ):
        self.alpha = float(alpha)
        self.max_condition_size = int(max_condition_size)
        self.min_expected = float(min_expected)

    def fit(self, table: Table, attributes: Sequence[str] | None = None) -> PartiallyDirectedGraph:
        """Run skeleton discovery + v-structures + Meek rules."""
        attributes = list(attributes) if attributes is not None else table.names
        graph, separators = self._skeleton(table, attributes)
        self._orient_v_structures(graph, separators)
        self._apply_meek_rules(graph)
        return graph

    def fit_diagram(
        self,
        table: Table,
        attributes: Sequence[str] | None = None,
        order: Sequence[str] | None = None,
    ) -> CausalDiagram:
        """Convenience: fit and resolve straight to a CausalDiagram."""
        graph = self.fit(table, attributes)
        return graph.to_diagram(order or (attributes or table.names))

    # -- phase 1: skeleton -------------------------------------------------------

    def _skeleton(self, table: Table, attributes: list[str]):
        graph = PartiallyDirectedGraph(attributes)
        for a, b in combinations(attributes, 2):
            graph.add_undirected(a, b)
        separators: dict[frozenset, tuple[str, ...]] = {}

        for size in range(self.max_condition_size + 1):
            removed_any = True
            while removed_any:
                removed_any = False
                for a, b in combinations(attributes, 2):
                    if not graph.has_edge(a, b):
                        continue
                    candidates = sorted((graph.neighbours(a) | graph.neighbours(b)) - {a, b})
                    if len(candidates) < size:
                        continue
                    for subset in combinations(candidates, size):
                        p_value = g_square_test(
                            table, a, b, list(subset), min_expected=self.min_expected
                        )
                        if p_value > self.alpha:
                            graph.remove(a, b)
                            separators[frozenset((a, b))] = subset
                            removed_any = True
                            break
        return graph, separators

    # -- phase 2: v-structures -----------------------------------------------------

    @staticmethod
    def _orient_v_structures(graph: PartiallyDirectedGraph, separators) -> None:
        for z in graph.nodes:
            adjacent = sorted(graph.neighbours(z))
            for x, y in combinations(adjacent, 2):
                if graph.has_edge(x, y):
                    continue  # shielded
                separator = separators.get(frozenset((x, y)), ())
                if z not in separator:
                    graph.orient(x, z)
                    graph.orient(y, z)

    # -- phase 3: Meek rules ---------------------------------------------------------

    @staticmethod
    def _apply_meek_rules(graph: PartiallyDirectedGraph) -> None:
        changed = True
        while changed:
            changed = False
            for a, b in list(graph.undirected_edges):
                # Rule 1: c -> a - b with c, b non-adjacent  =>  a -> b.
                for c in graph.nodes:
                    if graph.is_directed(c, a) and not graph.has_edge(c, b):
                        graph.orient(a, b)
                        changed = True
                        break
                    if graph.is_directed(c, b) and not graph.has_edge(c, a):
                        graph.orient(b, a)
                        changed = True
                        break
                if changed:
                    continue
                # Rule 2: a -> c -> b and a - b  =>  a -> b.
                for c in graph.nodes:
                    if graph.is_directed(a, c) and graph.is_directed(c, b):
                        graph.orient(a, b)
                        changed = True
                        break
                    if graph.is_directed(b, c) and graph.is_directed(c, a):
                        graph.orient(b, a)
                        changed = True
                        break


def structural_hamming_distance(learned: CausalDiagram, truth: CausalDiagram) -> int:
    """Count edge mismatches between two diagrams over the same nodes.

    Missing edge, extra edge, and wrongly-oriented edge each cost 1; a
    standard discovery-quality metric used by the ablation benchmark.
    """
    learned_pairs = {frozenset(e) for e in learned.edges}
    truth_pairs = {frozenset(e) for e in truth.edges}
    distance = len(learned_pairs ^ truth_pairs)
    for edge in set(learned.edges):
        if frozenset(edge) in truth_pairs and edge not in truth.edges:
            distance += 1
    return distance
