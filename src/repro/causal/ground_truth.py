"""Ground-truth explanation scores via Pearl's three-step procedure.

When the generating SCM is known (synthetic validation data, Section 5.5
of the paper), the counterfactual quantities defining NEC / SUF / NESUF
can be computed exactly by Monte Carlo: draw a population of exogenous
contexts ``u``, evaluate the factual world, re-evaluate under the
intervention with the *same* ``u`` (abduction is free because we hold the
true model), and read the scores off the joint factual/counterfactual
outcomes.  This module is the reference implementation every estimator in
:mod:`repro.core` is validated against.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.causal.scm import StructuralCausalModel
from repro.data.table import Table
from repro.utils.exceptions import EstimationError
from repro.utils.rng import as_generator

PredictFn = Callable[[Table], np.ndarray]


class GroundTruthScores:
    """Exact (Monte Carlo) NEC / SUF / NESUF for a known SCM + black box.

    Parameters
    ----------
    scm:
        The generating model over the black box's input attributes.
    predict:
        The black box: maps a feature :class:`Table` to an outcome vector.
    positive:
        Maps the outcome vector to a boolean "positive decision" vector.
        Defaults to ``outcome == 1`` (binary classification codes); pass
        e.g. ``lambda s: s >= 0.5`` for the regression black box of
        Section 5.5.
    n_samples:
        Monte Carlo population size.
    """

    def __init__(
        self,
        scm: StructuralCausalModel,
        predict: PredictFn,
        positive: Callable[[np.ndarray], np.ndarray] | None = None,
        n_samples: int = 50_000,
        seed: int | np.random.Generator | None = 0,
    ):
        self._scm = scm
        self._predict = predict
        self._positive = positive or (lambda outcome: outcome == 1)
        rng = as_generator(seed)
        self._exogenous = scm.draw_exogenous(n_samples, rng)
        self._factual_values = scm.evaluate(self._exogenous)
        self._factual_table = scm.to_table(self._factual_values)
        self._factual_positive = np.asarray(
            self._positive(predict(self._factual_table)), dtype=bool
        )
        self._cf_cache: dict[tuple[str, int], np.ndarray] = {}

    # -- plumbing ----------------------------------------------------------

    @property
    def population(self) -> Table:
        """The factual Monte Carlo population."""
        return self._factual_table

    @property
    def factual_positive(self) -> np.ndarray:
        """Boolean vector: black box made the positive decision."""
        return self._factual_positive

    def counterfactual_positive(self, attribute: str, code: int) -> np.ndarray:
        """Positive-decision vector under ``do(attribute <- code)``."""
        key = (attribute, int(code))
        if key not in self._cf_cache:
            values = self._scm.counterfactual(self._exogenous, {attribute: code})
            table = self._scm.to_table(values)
            self._cf_cache[key] = np.asarray(
                self._positive(self._predict(table)), dtype=bool
            )
        return self._cf_cache[key]

    def _context_mask(self, context: Mapping[str, int]) -> np.ndarray:
        mask = np.ones(len(self._factual_table), dtype=bool)
        for name, code in context.items():
            mask &= self._factual_values[name] == int(code)
        return mask

    def _require_support(self, mask: np.ndarray, what: str) -> None:
        if not mask.any():
            raise EstimationError(f"no Monte Carlo units satisfy {what}")

    # -- the three scores -----------------------------------------------------

    def necessity(
        self,
        attribute: str,
        x: int,
        x_prime: int,
        context: Mapping[str, int] | None = None,
    ) -> float:
        """``Pr(o'_{X<-x'} | X=x, O=o, K=k)`` — Definition 3.1, Eq. (5)."""
        context = context or {}
        mask = (
            self._context_mask(context)
            & (self._factual_values[attribute] == int(x))
            & self._factual_positive
        )
        self._require_support(mask, f"{attribute}={x}, O=o, K={context}")
        cf = self.counterfactual_positive(attribute, x_prime)
        return float(np.mean(~cf[mask]))

    def sufficiency(
        self,
        attribute: str,
        x: int,
        x_prime: int,
        context: Mapping[str, int] | None = None,
    ) -> float:
        """``Pr(o_{X<-x} | X=x', O=o', K=k)`` — Definition 3.1, Eq. (6)."""
        context = context or {}
        mask = (
            self._context_mask(context)
            & (self._factual_values[attribute] == int(x_prime))
            & ~self._factual_positive
        )
        self._require_support(mask, f"{attribute}={x_prime}, O=o', K={context}")
        cf = self.counterfactual_positive(attribute, x)
        return float(np.mean(cf[mask]))

    def necessity_sufficiency(
        self,
        attribute: str,
        x: int,
        x_prime: int,
        context: Mapping[str, int] | None = None,
    ) -> float:
        """``Pr(o_{X<-x}, o'_{X<-x'} | K=k)`` — Definition 3.1, Eq. (7)."""
        context = context or {}
        mask = self._context_mask(context)
        self._require_support(mask, f"K={context}")
        cf_x = self.counterfactual_positive(attribute, x)
        cf_xp = self.counterfactual_positive(attribute, x_prime)
        return float(np.mean(cf_x[mask] & ~cf_xp[mask]))

    def scores(
        self,
        attribute: str,
        x: int,
        x_prime: int,
        context: Mapping[str, int] | None = None,
    ) -> dict[str, float]:
        """All three scores for one (attribute, x, x') choice."""
        return {
            "necessity": self.necessity(attribute, x, x_prime, context),
            "sufficiency": self.sufficiency(attribute, x, x_prime, context),
            "necessity_sufficiency": self.necessity_sufficiency(
                attribute, x, x_prime, context
            ),
        }

    def monotonicity_violation(self, attribute: str, x: int, x_prime: int) -> float:
        """``Λ_viol = Pr(o'_{X<-x} | o, X=x')`` — Section 5.5's violation measure.

        Zero iff raising ``attribute`` from ``x'`` to ``x`` never flips a
        positive decision to negative for units currently at ``x'``.
        """
        mask = (self._factual_values[attribute] == int(x_prime)) & self._factual_positive
        if not mask.any():
            return 0.0
        cf = self.counterfactual_positive(attribute, x)
        return float(np.mean(~cf[mask]))
