"""Command-line interface: ``python -m repro.cli <command> ...``.

The subcommands mirror the library's main entry points:

* ``explain``  — global or contextual explanation on a dataset,
* ``local``    — local explanation for one row,
* ``recourse`` — minimal-cost recourse for one row,
* ``audit``    — counterfactual-fairness audit of protected attributes,
* ``serve``    — start the JSON-over-HTTP explanation service; with
  ``--store DIR`` it serves every tenant in a durable registry,
* ``snapshot`` — train + explain once, persist the warm session as a
  named tenant in an artifact store,
* ``restore``  — rebuild a tenant from snapshot + write-ahead log and
  verify its tensors against a fresh recount,
* ``registry`` — ``ls`` / ``add`` / ``rm`` tenants of a store,
* ``replicate`` — ``status`` / ``promote`` / ``retarget`` a replicated
  serving tier (``serve --follow URL`` starts a read-only follower),
* ``monitor``  — ``add`` / ``ls`` / ``rm`` / ``watch`` standing drift
  monitors on a *running* service over HTTP (long-poll alert stream).

Training commands build a black box on a fresh replica of the chosen
dataset; results print as plain-text charts (see :mod:`repro.report`).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro import Lewis, __version__, fit_table_model, load_dataset, train_test_split
from repro.core.fairness import FairnessAuditor
from repro.data.registry import available_datasets
from repro.models.pipeline import MODEL_KINDS
from repro.report import (
    render_global,
    render_local,
    render_recourse,
    render_recourse_audit,
    render_scores_table,
    render_service_stats,
)
from repro.utils.exceptions import RecourseInfeasibleError


def _build_explainer(args) -> tuple:
    bundle = load_dataset(args.dataset, n_rows=args.rows, seed=args.seed)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=args.seed)
    kind = args.model
    if bundle.positive_label is None and not kind.endswith("_regressor"):
        kind = "random_forest_regressor"
    model = fit_table_model(
        kind, train, bundle.feature_names, bundle.label, seed=args.seed
    )
    lewis = Lewis(
        model,
        data=test,
        graph=bundle.graph,
        positive_outcome=bundle.positive_label,
        threshold=0.5 if bundle.positive_label is None else None,
    )
    return bundle, model, lewis


def _parse_context(items: Sequence[str]) -> dict:
    context = {}
    for item in items:
        if "=" not in item:
            raise SystemExit(f"context must be attr=value, got {item!r}")
        key, value = item.split("=", 1)
        context[key] = value
    return context


def cmd_explain(args) -> int:
    bundle, _model, lewis = _build_explainer(args)
    if args.context:
        context = _parse_context(args.context)
        explanation = lewis.explain_context(context)
        title = f"{args.dataset}: contextual explanation"
    else:
        explanation = lewis.explain_global()
        title = f"{args.dataset}: global explanation"
    if args.chart:
        print(render_global(explanation, kind=args.score, title=title))
    else:
        print(render_scores_table(explanation, title=title))
    return 0


def _cohort_indices(args, lewis) -> list[int] | None:
    """Resolve the ``--indices`` / ``--cohort`` cohort-mode selectors.

    ``--indices`` names explicit rows; ``--cohort N`` takes the first N
    rows of the requested outcome pool (negative rows by default for
    ``recourse``, via ``--negative`` for ``local``).  Returns ``None``
    when neither flag was given (single-row mode).
    """
    if getattr(args, "indices", None) is not None:
        return [int(i) for i in args.indices]
    if getattr(args, "cohort", None) is not None:
        if args.cohort < 1:
            raise SystemExit(f"--cohort must be >= 1, got {args.cohort}")
        negative = getattr(args, "negative", True)
        pool = lewis.negative_indices() if negative else lewis.positive_indices()
        return [int(i) for i in pool[: args.cohort]]
    return None


def cmd_local(args) -> int:
    bundle, _model, lewis = _build_explainer(args)
    cohort = _cohort_indices(args, lewis)
    if cohort is not None:
        if not cohort:
            print("no individual with the requested outcome", file=sys.stderr)
            return 1
        explanations = lewis.explain_local_batch(cohort)
        print(
            f"{args.dataset}: local explanations for {len(cohort)} rows "
            f"(vectorized cohort path)"
        )
        for index, explanation in zip(cohort, explanations):
            outcome = "positive" if explanation.outcome_positive else "negative"
            top = explanation.statements(top=1)
            detail = top[0] if top else "(no contrastive statement)"
            print(f"row {index:5d} [{outcome}]: {detail}")
        return 0
    index = args.index
    if index is None:
        pool = lewis.negative_indices() if args.negative else lewis.positive_indices()
        if len(pool) == 0:
            print("no individual with the requested outcome", file=sys.stderr)
            return 1
        index = int(pool[0])
    explanation = lewis.explain_local(index=index)
    print(render_local(explanation, title=f"{args.dataset}: local explanation (row {index})"))
    for sentence in explanation.statements(top=3):
        print(" ", sentence)
    return 0


def cmd_recourse(args) -> int:
    bundle, _model, lewis = _build_explainer(args)
    actionable = args.actionable or bundle.actionable
    if not actionable:
        print(f"{args.dataset} has no actionable attributes", file=sys.stderr)
        return 1
    mode = "anytime" if args.anytime else "exact"
    cohort = _cohort_indices(args, lewis)
    if cohort is not None:
        audit = lewis.recourse_audit(
            actionable,
            alpha=args.alpha,
            indices=cohort,
            workers=args.workers,
            mode=mode,
        )
        print(
            render_recourse_audit(
                audit,
                title=(
                    f"{args.dataset}: recourse audit over {len(cohort)} rows "
                    f"(deduplicated batch IP path)"
                ),
            )
        )
        return 0
    index = args.index
    if index is None:
        index = int(lewis.negative_indices()[0])
    try:
        recourse = lewis.recourse(
            index, actionable=actionable, alpha=args.alpha, mode=mode
        )
    except RecourseInfeasibleError as exc:
        print(f"infeasible: {exc}", file=sys.stderr)
        return 2
    print(
        render_recourse(
            recourse, title=f"{args.dataset}: recourse for row {index} (alpha={args.alpha})"
        )
    )
    return 0


def cmd_audit(args) -> int:
    bundle, _model, lewis = _build_explainer(args)
    auditor = FairnessAuditor(lewis, tolerance=args.tolerance)
    protected = args.protected or [
        name for name in ("sex", "race", "gender") if name in lewis.data
    ]
    if not protected:
        print("no protected attributes found; pass --protected", file=sys.stderr)
        return 1
    failures = 0
    for verdict in auditor.audit_all(protected):
        print(verdict.summary())
        failures += not verdict.is_counterfactually_fair
    return 0 if failures == 0 else 3


def cmd_serve(args) -> int:
    from repro.service import ExplainerSession, ResultCache
    from repro.service.server import serve

    cache = ResultCache(max_bytes=int(args.cache_mb * (1 << 20)))
    if args.store:
        from repro.store import Registry
        from repro.utils.exceptions import StoreError

        registry = Registry(
            args.store,
            max_bytes=int(args.session_mb * (1 << 20)),
            cache=cache,
            background=True,
        )
        names = registry.names()
        if not names and not args.follow:
            print(
                f"store {args.store!r} has no tenants; create one with "
                "`repro snapshot --store DIR --name NAME` (or start a "
                "follower with --follow URL to bootstrap from a leader)",
                file=sys.stderr,
            )
            return 1
        preload = names if args.preload and "all" in args.preload else (
            args.preload or []
        )
        for name in preload:
            print(f"preloading tenant {name!r} ...")
            try:
                registry.get(name)
            except StoreError as exc:
                print(f"cannot preload {name!r}: {exc}", file=sys.stderr)
                return 1
        if args.follow:
            print(f"following leader at {args.follow}")
        if names:
            print(f"serving tenants: {', '.join(names)}")
        serve(
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            registry=registry,
            follow=args.follow,
            auto_promote=args.auto_promote,
        )
        return 0
    if args.follow:
        print("--follow requires --store (a follower replicates into a store)",
              file=sys.stderr)
        return 1
    bundle, _model, lewis = _build_explainer(args)
    session = ExplainerSession(
        lewis,
        cache=cache,
        default_actionable=bundle.actionable,
        background=True,
    )
    try:
        serve(session, host=args.host, port=args.port, verbose=args.verbose)
    finally:
        print(render_service_stats(session.stats(), title="session statistics"))
    return 0


def cmd_snapshot(args) -> int:
    from repro.store import ArtifactStore, checkpoint_session, create_tenant
    from repro.utils.exceptions import StoreError

    store = ArtifactStore(args.store)
    name = args.name or args.dataset
    if store.snapshots(name):
        print(
            f"tenant {name!r} already exists in {args.store}; "
            "`repro registry rm` it first, or checkpoint the live tenant "
            "via the server's /v1/registry/<name>/snapshot",
            file=sys.stderr,
        )
        return 1
    bundle, _model, lewis = _build_explainer(args)
    try:
        session = create_tenant(
            store,
            name,
            lewis,
            default_actionable=bundle.actionable,
            snapshot=False,
        )
    except StoreError as exc:
        print(f"snapshot failed: {exc}", file=sys.stderr)
        return 1
    if args.warm:
        # warm the count tensors so the snapshot restores query-ready
        session.explain_global()
    manifest = checkpoint_session(store, session, name)
    session.close()
    print(
        f"tenant {name!r} snapshot {manifest['snapshot_id']} "
        f"({manifest['session']['n_rows']} rows, "
        f"fingerprint {manifest['session']['fingerprint']})"
    )
    return 0


def cmd_restore(args) -> int:
    from repro.store import ArtifactStore, restore_session, verify_restore
    from repro.utils.exceptions import StoreError

    store = ArtifactStore(args.store)
    session = None
    try:
        session = restore_session(store, args.name, snapshot_id=args.snapshot)
        verdict = verify_restore(session)
    except StoreError as exc:
        print(f"restore failed: {exc}", file=sys.stderr)
        if session is not None:
            session.close()
        return 1
    stats = session.stats()
    print(
        f"tenant {args.name!r} restored: {stats['n_rows']} rows, "
        f"table version {stats['table_version']}, "
        f"wal seq {stats['wal']['last_seq']}, "
        f"{verdict['tensors']} tensors verified bit-identical"
    )
    if args.explain:
        explanation = session.explain_global()
        for statement in explanation["result"]["statements"][:3]:
            print(" ", statement)
    session.close()
    return 0


def _literal(value: str):
    """Coerce a CLI string to int/float when it looks like one."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


def _monitor_base_url(args) -> str:
    base = args.url.rstrip("/")
    if not base.endswith("/v1"):
        base += "/v1"
    if args.tenant:
        base += f"/{args.tenant}"
    return base


def _http_json_raw(url: str, method: str = "GET", payload=None) -> dict:
    """One JSON request; lets ``urllib.error`` exceptions propagate.

    The reconnecting callers (``monitor watch --follow``) need the raw
    error to decide retryability; everyone else goes through
    :func:`_http_json`, which converts to a ``SystemExit``.
    """
    import json as _json
    from urllib import request

    data = _json.dumps(payload).encode() if payload is not None else None
    req = request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    with request.urlopen(req) as resp:
        return _json.loads(resp.read())


def _http_json(url: str, method: str = "GET", payload=None) -> dict:
    from urllib import error

    try:
        return _http_json_raw(url, method, payload)
    except error.HTTPError as exc:
        body = exc.read().decode("utf-8", "replace")
        raise SystemExit(f"HTTP {exc.code} from {url}: {body}") from exc
    except error.URLError as exc:
        raise SystemExit(f"cannot reach {url}: {exc.reason}") from exc


def cmd_monitor(args) -> int:
    from repro.report import render_alert, render_monitor_list

    base = _monitor_base_url(args)
    if args.monitor_command == "add":
        params: dict = {}
        if args.attribute:
            params["attribute"] = args.attribute
        if args.value is not None:
            params["value"] = _literal(args.value)
        if args.baseline is not None:
            params["baseline"] = _literal(args.baseline)
        if args.context:
            params["context"] = {
                k: _literal(v) for k, v in _parse_context(args.context).items()
            }
        if args.actionable:
            params["actionable"] = args.actionable
            params["alpha"] = args.alpha
            params["probe_size"] = args.probe_size
        payload: dict = {"kind": args.kind, "params": params}
        if args.metric:
            payload["metric"] = args.metric
        if args.threshold is not None:
            payload["threshold"] = args.threshold
        if args.cusum_limit is not None:
            payload["cusum"] = {
                "limit": args.cusum_limit, "slack": args.cusum_slack
            }
        monitor = _http_json(f"{base}/monitors", "POST", payload)
        metric = monitor["metric"]
        print(
            f"registered {monitor['id']} ({monitor['kind']}) "
            f"metric={metric} baseline={monitor['baseline'][metric]:.4f}"
        )
        return 0
    if args.monitor_command == "ls":
        print(render_monitor_list(_http_json(f"{base}/monitors")))
        return 0
    if args.monitor_command == "rm":
        result = _http_json(f"{base}/monitors/{args.id}", "DELETE")
        print(f"{result['id']}: {'removed' if result['removed'] else 'not found'}")
        return 0 if result["removed"] else 1
    if args.monitor_command == "watch":
        from urllib import error as _urlerror

        from repro.utils.backoff import Backoff

        cursor = args.cursor
        backoff = Backoff(initial=0.5, factor=2.0, max_delay=10.0, jitter=0.1)
        while True:
            try:
                result = _http_json_raw(
                    f"{base}/watch?cursor={cursor}&timeout={args.timeout}"
                )
            except (_urlerror.HTTPError, _urlerror.URLError, OSError) as exc:
                # In --follow mode a draining/overloaded server (503/429)
                # or a dropped connection is transient: back off and
                # reconnect with the same cursor, so no buffered alert is
                # ever skipped. One-shot mode keeps the old hard exit.
                status = getattr(exc, "code", None)
                retryable = status in (429, 503) or status is None
                if not (args.follow and retryable):
                    if status is not None:
                        body = exc.read().decode("utf-8", "replace")
                        raise SystemExit(
                            f"HTTP {status} from {base}/watch: {body}"
                        ) from exc
                    raise SystemExit(
                        f"cannot reach {base}/watch: "
                        f"{getattr(exc, 'reason', exc)}"
                    ) from exc
                delay = backoff.next_delay()
                print(
                    f"(watch interrupted: "
                    f"{f'HTTP {status}' if status else getattr(exc, 'reason', exc)}; "
                    f"reconnecting in {delay:.1f}s)",
                    file=sys.stderr,
                )
                time.sleep(delay)
                continue
            backoff.reset()  # healthy response: reset the reconnect ladder
            for alert in result["alerts"]:
                print(render_alert(alert))
            if result.get("cursor_truncated"):
                print(
                    "(warning: alerts between your cursor and the buffer "
                    "were dropped; see the monitor journal)",
                    file=sys.stderr,
                )
            cursor = result["cursor"]
            if not args.follow:
                if result["timed_out"]:
                    print(f"(no alerts; cursor {cursor})")
                return 0
    raise SystemExit(f"unknown monitor command {args.monitor_command!r}")


def cmd_obs(args) -> int:
    from repro.report import render_metrics_top, render_trace

    if args.obs_command == "top":
        stats = _http_json(f"{_monitor_base_url(args)}/stats")
        print(render_metrics_top(stats, limit=args.limit))
        return 0
    if args.obs_command == "trace":
        # traces are process-wide (one tracer per server), so the tenant
        # flag is irrelevant here — query the root endpoint directly.
        base = args.url.rstrip("/")
        if not base.endswith("/v1"):
            base += "/v1"
        if args.id:
            result = _http_json(f"{base}/traces?id={args.id}")
        else:
            query = f"?min_ms={args.min_ms}&limit={args.limit}"
            if args.slow:
                query += "&slow=1"
            result = _http_json(f"{base}/traces{query}")
        traces = result.get("traces") or []
        if not traces:
            print("(no finished traces match)")
            return 0
        for record in traces:
            print(render_trace(record))
        return 0
    raise SystemExit(f"unknown obs command {args.obs_command!r}")


def cmd_registry(args) -> int:
    from repro.store import ArtifactStore
    from repro.utils.exceptions import StoreError

    store = ArtifactStore(args.store)
    if args.registry_command == "ls":
        for name in store.tenants():
            manifest = store.manifest(name)
            snapshots = store.snapshots(name)
            print(
                f"{name:24s} snapshots={len(snapshots)} "
                f"latest={manifest['snapshot_id']} "
                f"rows={manifest['session']['n_rows']} "
                f"wal_seq={manifest['wal_seq']}"
            )
        if not store.tenants():
            print("(empty store)")
        return 0
    if args.registry_command == "add":
        return cmd_snapshot(args)
    if args.registry_command == "rm":
        try:
            removed = store.remove_tenant(args.name)
        except StoreError as exc:
            print(str(exc), file=sys.stderr)
            return 1
        if not removed:
            print(f"no tenant {args.name!r} in {args.store}", file=sys.stderr)
            return 1
        dropped = store.gc()
        print(f"removed tenant {args.name!r} ({dropped} blobs reclaimed)")
        return 0
    raise SystemExit(f"unknown registry command {args.registry_command!r}")


def cmd_replicate(args) -> int:
    base = args.url.rstrip("/")
    if not base.endswith("/v1"):
        base += "/v1"
    if args.replicate_command == "status":
        status = _http_json(f"{base}/replication")
        epoch = status.get("epoch", {})
        print(
            f"role={status['role']} epoch={epoch.get('current', 0)} "
            f"fencing_floor={epoch.get('max_seen', 0)} "
            f"leader={status.get('leader_url') or '-'}"
        )
        for tenant, lag in sorted((status.get("lag_records") or {}).items()):
            tailer = (status.get("tailers") or {}).get(tenant, {})
            state = "alive" if tailer.get("alive") else "stopped"
            suffix = f" last_error={tailer['last_error']}" if tailer.get(
                "last_error"
            ) else ""
            print(f"  {tenant:24s} lag={lag} tailer={state}{suffix}")
        return 0
    if args.replicate_command == "promote":
        payload: dict = {"reason": args.reason or "operator promotion"}
        if args.catchup_store:
            payload["catchup_store"] = args.catchup_store
        result = _http_json(f"{base}/replication/promote", "POST", payload)
        if result.get("already_leader"):
            print(f"already leader at epoch {result['epoch']}")
            return 0
        caught_up = result.get("caught_up") or {}
        replayed = sum(caught_up.values())
        print(
            f"promoted to leader at epoch {result['epoch']}"
            + (f" ({replayed} records caught up from the old leader's log)"
               if args.catchup_store else "")
        )
        return 0
    if args.replicate_command == "retarget":
        result = _http_json(
            f"{base}/replication/retarget", "POST", {"leader_url": args.leader}
        )
        print(f"now following {result['leader_url']}")
        return 0
    raise SystemExit(f"unknown replicate command {args.replicate_command!r}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LEWIS: probabilistic contrastive counterfactual explanations",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument(
            "--dataset", default="german", choices=available_datasets()
        )
        p.add_argument("--rows", type=int, default=None, help="dataset size")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument(
            "--model", default="random_forest", choices=sorted(MODEL_KINDS)
        )

    p_explain = sub.add_parser("explain", help="global / contextual explanation")
    common(p_explain)
    p_explain.add_argument(
        "--context", nargs="*", default=[], metavar="ATTR=VALUE"
    )
    p_explain.add_argument(
        "--score",
        default="necessity_sufficiency",
        choices=["necessity", "sufficiency", "necessity_sufficiency"],
    )
    p_explain.add_argument("--chart", action="store_true", help="bar chart output")
    p_explain.set_defaults(func=cmd_explain)

    def cohort_flags(p):
        p.add_argument(
            "--indices",
            nargs="+",
            type=int,
            default=None,
            metavar="ROW",
            help="cohort mode: explain/audit these row indices in one batch",
        )
        p.add_argument(
            "--cohort",
            type=int,
            default=None,
            metavar="N",
            help="cohort mode: take the first N rows of the outcome pool",
        )

    p_local = sub.add_parser(
        "local", help="local explanation for one row or a cohort"
    )
    common(p_local)
    p_local.add_argument("--index", type=int, default=None)
    p_local.add_argument(
        "--negative", action="store_true", help="pick a negative-outcome row"
    )
    cohort_flags(p_local)
    p_local.set_defaults(func=cmd_local)

    p_recourse = sub.add_parser(
        "recourse", help="actionable recourse for one row or a cohort audit"
    )
    common(p_recourse)
    p_recourse.add_argument("--index", type=int, default=None)
    p_recourse.add_argument("--alpha", type=float, default=0.7)
    p_recourse.add_argument("--actionable", nargs="*", default=None)
    p_recourse.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for cohort audits (results are identical)",
    )
    p_recourse.add_argument(
        "--anytime",
        action="store_true",
        help="greedy anytime mode with a certified optimality gap",
    )
    cohort_flags(p_recourse)
    p_recourse.set_defaults(func=cmd_recourse)

    p_audit = sub.add_parser("audit", help="counterfactual-fairness audit")
    common(p_audit)
    p_audit.add_argument("--protected", nargs="*", default=None)
    p_audit.add_argument("--tolerance", type=float, default=0.05)
    p_audit.set_defaults(func=cmd_audit)

    p_serve = sub.add_parser(
        "serve", help="start the JSON-over-HTTP explanation service"
    )
    common(p_serve)
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8321,
        help="listen port; 0 picks a free port (default: 8321)",
    )
    p_serve.add_argument(
        "--cache-mb",
        type=float,
        default=32.0,
        help="result-cache budget in megabytes (default: 32)",
    )
    p_serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="serve every tenant of this artifact store (multi-tenant mode)",
    )
    p_serve.add_argument(
        "--preload",
        nargs="*",
        default=None,
        metavar="NAME",
        help="tenants to load before accepting traffic ('all' for every one)",
    )
    p_serve.add_argument(
        "--session-mb",
        type=float,
        default=256.0,
        help="byte budget for resident tenant sessions (default: 256)",
    )
    p_serve.add_argument(
        "--follow",
        default=None,
        metavar="URL",
        help="run as a read-only follower replicating from this leader",
    )
    p_serve.add_argument(
        "--auto-promote",
        action="store_true",
        help="follower promotes itself after repeated leader health failures",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request to stderr"
    )
    p_serve.set_defaults(func=cmd_serve)

    def store_common(p, need_name: bool):
        p.add_argument(
            "--store", required=True, metavar="DIR", help="artifact store directory"
        )
        p.add_argument(
            "--name",
            required=need_name,
            default=None,
            help="tenant name" + ("" if need_name else " (default: dataset name)"),
        )

    p_snapshot = sub.add_parser(
        "snapshot", help="train once, persist the warm session as a tenant"
    )
    common(p_snapshot)
    store_common(p_snapshot, need_name=False)
    p_snapshot.add_argument(
        "--no-warm",
        dest="warm",
        action="store_false",
        help="skip pre-warming count tensors before the snapshot",
    )
    p_snapshot.set_defaults(func=cmd_snapshot, warm=True)

    p_restore = sub.add_parser(
        "restore", help="rebuild a tenant from snapshot + write-ahead log"
    )
    store_common(p_restore, need_name=True)
    p_restore.add_argument(
        "--snapshot", default=None, help="snapshot id (default: latest)"
    )
    p_restore.add_argument(
        "--explain", action="store_true", help="print a quick global explanation"
    )
    p_restore.set_defaults(func=cmd_restore)

    p_registry = sub.add_parser("registry", help="manage a store's tenants")
    reg_sub = p_registry.add_subparsers(dest="registry_command", required=True)
    p_ls = reg_sub.add_parser("ls", help="list tenants and snapshots")
    p_ls.add_argument("--store", required=True, metavar="DIR")
    p_add = reg_sub.add_parser("add", help="alias of `snapshot`")
    common(p_add)
    store_common(p_add, need_name=False)
    p_add.add_argument(
        "--no-warm", dest="warm", action="store_false",
        help="skip pre-warming count tensors before the snapshot",
    )
    p_add.set_defaults(warm=True)
    p_rm = reg_sub.add_parser("rm", help="remove a tenant (snapshots + log)")
    p_rm.add_argument("--store", required=True, metavar="DIR")
    p_rm.add_argument("--name", required=True)
    p_registry.set_defaults(func=cmd_registry)

    p_replicate = sub.add_parser(
        "replicate", help="inspect and fail over a replicated serving tier"
    )
    rep_sub = p_replicate.add_subparsers(dest="replicate_command", required=True)

    def replicate_common(p):
        p.add_argument(
            "--url", default="http://127.0.0.1:8321",
            help="replica base URL (default: %(default)s)",
        )

    p_rep_status = rep_sub.add_parser(
        "status", help="role, epoch, per-tenant lag and tailer state"
    )
    replicate_common(p_rep_status)
    p_rep_promote = rep_sub.add_parser(
        "promote", help="promote this follower to leader (epoch-fenced)"
    )
    replicate_common(p_rep_promote)
    p_rep_promote.add_argument(
        "--catchup-store",
        default=None,
        metavar="DIR",
        help="dead leader's store root; replay its durable WAL tail first",
    )
    p_rep_promote.add_argument(
        "--reason", default=None, help="recorded in the epoch history"
    )
    p_rep_retarget = rep_sub.add_parser(
        "retarget", help="point this follower at a new leader"
    )
    replicate_common(p_rep_retarget)
    p_rep_retarget.add_argument(
        "--leader", required=True, metavar="URL", help="new leader base URL"
    )
    p_replicate.set_defaults(func=cmd_replicate)

    p_monitor = sub.add_parser(
        "monitor", help="manage standing drift monitors on a running service"
    )
    mon_sub = p_monitor.add_subparsers(dest="monitor_command", required=True)

    def monitor_common(p):
        p.add_argument(
            "--url", default="http://127.0.0.1:8321",
            help="service base URL (default: %(default)s)",
        )
        p.add_argument(
            "--tenant", default=None, help="registry tenant (default session if omitted)"
        )

    p_mon_add = mon_sub.add_parser("add", help="register a monitor")
    monitor_common(p_mon_add)
    p_mon_add.add_argument(
        "--kind", required=True,
        choices=["score", "fairness", "monotonicity", "recourse"],
    )
    p_mon_add.add_argument("--metric", default=None)
    p_mon_add.add_argument("--attribute", default=None)
    p_mon_add.add_argument("--value", default=None, help="treatment label (score)")
    p_mon_add.add_argument("--baseline", default=None, help="baseline label (score)")
    p_mon_add.add_argument(
        "--context", nargs="*", default=[], metavar="ATTR=VALUE"
    )
    p_mon_add.add_argument(
        "--actionable", nargs="+", default=None, metavar="ATTR",
        help="actionable attributes (recourse)",
    )
    p_mon_add.add_argument("--alpha", type=float, default=0.8)
    p_mon_add.add_argument("--probe-size", type=int, default=32)
    p_mon_add.add_argument(
        "--threshold", type=float, default=None,
        help="threshold detector: alert when |metric - baseline| exceeds this",
    )
    p_mon_add.add_argument(
        "--cusum-limit", type=float, default=None,
        help="CUSUM detector limit (fires when an accumulator crosses it)",
    )
    p_mon_add.add_argument("--cusum-slack", type=float, default=0.0)

    p_mon_ls = mon_sub.add_parser("ls", help="list monitors")
    monitor_common(p_mon_ls)

    p_mon_rm = mon_sub.add_parser("rm", help="deregister a monitor")
    monitor_common(p_mon_rm)
    p_mon_rm.add_argument("id", help="monitor id, e.g. m1")

    p_mon_watch = mon_sub.add_parser("watch", help="long-poll for drift alerts")
    monitor_common(p_mon_watch)
    p_mon_watch.add_argument("--cursor", type=int, default=0)
    p_mon_watch.add_argument("--timeout", type=float, default=25.0)
    p_mon_watch.add_argument(
        "--follow", action="store_true",
        help="keep polling until interrupted (default: one poll)",
    )
    p_monitor.set_defaults(func=cmd_monitor)

    p_obs = sub.add_parser(
        "obs", help="inspect a running service's metrics and traces"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_obs_top = obs_sub.add_parser(
        "top", help="busiest counters/gauges/histograms from /v1/stats"
    )
    monitor_common(p_obs_top)
    p_obs_top.add_argument(
        "--limit", type=int, default=20, help="rows per section"
    )

    p_obs_trace = obs_sub.add_parser(
        "trace", help="span waterfalls of recent requests from /v1/traces"
    )
    monitor_common(p_obs_trace)
    p_obs_trace.add_argument("--id", default=None, help="one trace by id")
    p_obs_trace.add_argument(
        "--min-ms", type=float, default=0.0,
        help="only traces at least this slow",
    )
    p_obs_trace.add_argument("--limit", type=int, default=10)
    p_obs_trace.add_argument(
        "--slow", action="store_true",
        help="read the slow-request ring instead of the main ring",
    )
    p_obs.set_defaults(func=cmd_obs)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    from repro.obs import tracing as _tracing

    # Every command runs under a root trace: with REPRO_PROFILE=1 the
    # finished trace (in-process) carries a cProfile summary of the run.
    with _tracing.trace(f"cli {args.command}", tags={"command": args.command}):
        return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main() in tests
    raise SystemExit(main())
