"""LEWIS — explaining black-box algorithms with probabilistic contrastive
counterfactuals.

Reproduction of Galhotra, Pradhan & Salimi (SIGMOD 2021,
arXiv:2103.11972). The package provides:

* :class:`repro.Lewis` — the explainer facade (global / contextual /
  local explanations and counterfactual recourse),
* :mod:`repro.causal` — causal diagrams, structural causal models,
  backdoor identification, ground-truth counterfactual scores,
* :mod:`repro.models` — the from-scratch ML substrate (random forests,
  gradient boosting, neural networks, linear models),
* :mod:`repro.xai` — LIME / Kernel SHAP / permutation importance /
  LinearIP baselines,
* :mod:`repro.data` — the tabular container and the five benchmark
  dataset generators.

Quickstart::

    from repro import Lewis, load_dataset, fit_table_model, train_test_split

    bundle = load_dataset("german", n_rows=1000, seed=0)
    train, test = train_test_split(bundle.table, seed=0)
    model = fit_table_model(
        "random_forest", train, bundle.feature_names, bundle.label
    )
    lew = Lewis(model, data=test, graph=bundle.graph,
                positive_outcome=bundle.positive_label)
    print(lew.explain_global().ranking("sufficiency"))
"""

from repro.causal import (
    CausalDiagram,
    GroundTruthScores,
    PCAlgorithm,
    StructuralCausalModel,
    StructuralEquation,
)
from repro.core import (
    BoundsEstimator,
    FairnessAuditor,
    GlobalExplanation,
    Lewis,
    LocalExplanation,
    Recourse,
    RecourseSolver,
    ScoreEstimator,
    ScoreTriple,
)
from repro.data import (
    Column,
    DatasetBundle,
    Table,
    available_datasets,
    load_dataset,
    train_test_split,
)
from repro.estimation import ContingencyEngine, FrequencyEstimator
from repro.models import TableModel, fit_table_model
from repro.service import ExplainerSession, ResultCache, TableDelta

__version__ = "1.1.0"

__all__ = [
    "CausalDiagram",
    "GroundTruthScores",
    "PCAlgorithm",
    "StructuralCausalModel",
    "StructuralEquation",
    "BoundsEstimator",
    "FairnessAuditor",
    "GlobalExplanation",
    "Lewis",
    "LocalExplanation",
    "Recourse",
    "RecourseSolver",
    "ScoreEstimator",
    "ScoreTriple",
    "Column",
    "ContingencyEngine",
    "DatasetBundle",
    "ExplainerSession",
    "FrequencyEstimator",
    "ResultCache",
    "TableDelta",
    "Table",
    "available_datasets",
    "load_dataset",
    "train_test_split",
    "TableModel",
    "fit_table_model",
    "__version__",
]
