"""Plain-text rendering of explanations (no plotting dependency).

The paper communicates through bar charts (Figures 3-11); in a
terminal-only environment this module renders the same artifacts as
aligned ASCII bars so examples and the CLI can show, not just list,
the scores.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.explanations import GlobalExplanation, LocalExplanation
from repro.core.recourse import Recourse

_BAR_WIDTH = 30


def _bar(value: float, width: int = _BAR_WIDTH, fill: str = "#") -> str:
    """Render ``value`` in [0, 1] as a fixed-width bar."""
    clamped = min(max(value, 0.0), 1.0)
    n = int(round(clamped * width))
    return fill * n + "." * (width - n)


def _signed_bar(value: float, width: int = _BAR_WIDTH // 2) -> str:
    """Render ``value`` in [-1, 1] as a centred signed bar."""
    clamped = min(max(value, -1.0), 1.0)
    n = int(round(abs(clamped) * width))
    if clamped >= 0:
        return " " * width + "|" + "+" * n + " " * (width - n)
    return " " * (width - n) + "-" * n + "|" + " " * width


def render_global(
    explanation: GlobalExplanation,
    kind: str = "necessity_sufficiency",
    title: str | None = None,
) -> str:
    """Figure-3-style horizontal bar chart of one score per attribute."""
    lines = []
    if title:
        lines.append(title)
    if explanation.context:
        ctx = ", ".join(f"{k}={v}" for k, v in explanation.context.items())
        lines.append(f"context: {ctx}")
    ordered = sorted(
        explanation.attribute_scores, key=lambda s: s.score(kind), reverse=True
    )
    name_width = max((len(s.attribute) for s in ordered), default=8)
    for s in ordered:
        value = s.score(kind)
        lines.append(f"{s.attribute:{name_width}s} {_bar(value)} {value:5.2f}")
    return "\n".join(lines)


def render_scores_table(explanation: GlobalExplanation, title: str | None = None) -> str:
    """All three scores per attribute, aligned."""
    lines = []
    if title:
        lines.append(title)
    name_width = max(
        (len(s.attribute) for s in explanation.attribute_scores), default=8
    )
    lines.append(f"{'attribute':{name_width}s}  {'NEC':>5s} {'SUF':>5s} {'NESUF':>5s}")
    for s in explanation.attribute_scores:
        lines.append(
            f"{s.attribute:{name_width}s}  {s.necessity:5.2f} "
            f"{s.sufficiency:5.2f} {s.necessity_sufficiency:5.2f}"
        )
    return "\n".join(lines)


def render_local(explanation: LocalExplanation, title: str | None = None) -> str:
    """Figure-5-style signed contribution chart for one individual."""
    lines = []
    if title:
        lines.append(title)
    outcome = "positive" if explanation.outcome_positive else "negative"
    lines.append(f"outcome: {outcome}")
    name_width = max(
        (len(f"{c.attribute}={c.value}") for c in explanation.contributions),
        default=12,
    )
    ordered = sorted(
        explanation.contributions,
        key=lambda c: max(c.positive, c.negative),
        reverse=True,
    )
    for c in ordered:
        label = f"{c.attribute}={c.value}"
        lines.append(f"{label:{name_width}s} {_signed_bar(c.net)} net={c.net:+.2f}")
    return "\n".join(lines)


def render_recourse(recourse: Recourse, title: str | None = None) -> str:
    """Figure-1-style recourse card."""
    lines = []
    if title:
        lines.append(title)
    if recourse.is_empty:
        lines.append("No action needed: the target probability is already met.")
        return "\n".join(lines)
    width = max(len(a.attribute) for a in recourse.actions)
    lines.append(f"{'attribute':{width}s}  {'current':>18s} -> {'required':>18s}")
    for a in recourse.actions:
        lines.append(
            f"{a.attribute:{width}s}  {str(a.current_value):>18s} -> "
            f"{str(a.new_value):>18s}"
        )
    lines.append(
        f"total cost {recourse.total_cost:.1f}; estimated sufficiency "
        f"{recourse.estimated_sufficiency:.0%}"
    )
    if recourse.mode != "exact":
        lines.append(
            f"mode {recourse.mode}: certified within "
            f"{recourse.optimality_gap:.3f} of the optimal cost"
        )
    return "\n".join(lines)


def render_recourse_audit(audit: Mapping, title: str | None = None) -> str:
    """Cohort recourse-audit card: feasibility, costs, intervention mix.

    Renders the summary dict of :meth:`~repro.core.lewis.Lewis
    .recourse_audit` — feasible/infeasible counts and a bar per
    actionable attribute showing how often it appears in a recommended
    intervention.
    """
    lines = []
    if title:
        lines.append(title)
    n = max(int(audit.get("n", 0)), 1)
    lines.append(
        f"cohort of {audit['n']} (alpha={audit['alpha']}): "
        f"{audit['feasible']} feasible, {audit['infeasible']} infeasible, "
        f"{audit['already_satisfied']} already satisfied"
    )
    lines.append(
        f"cost over feasible recourses: mean {audit['mean_cost']:.2f}, "
        f"max {audit['max_cost']:.2f}"
    )
    counts = audit.get("attribute_counts") or {}
    if counts:
        width = max(len(a) for a in counts)
        for attribute, count in counts.items():
            lines.append(
                f"{attribute:{width}s} {_bar(count / n)} {count}"
            )
    solver = audit.get("solver") or {}
    if solver:
        mode = audit.get("mode", "exact")
        lines.append(
            f"solver ({mode}): {solver.get('solved_signatures', 0)} distinct "
            f"signatures, {solver.get('search_nodes', 0)} search nodes, "
            f"{solver.get('certified_by_lp_bound', 0)} LP-certified, "
            f"{solver.get('donor_seeded_searches', 0)} warm-started"
        )
    return "\n".join(lines)


def render_service_stats(stats: Mapping, title: str | None = None) -> str:
    """Aligned text view of :meth:`ExplainerSession.stats` output.

    Nested cache/engine/scheduler counter dicts render as indented
    ``key: value`` blocks; scalar session fields come first.
    """
    lines = []
    if title:
        lines.append(title)
    scalars = {k: v for k, v in stats.items() if not isinstance(v, Mapping)}
    nested = {k: v for k, v in stats.items() if isinstance(v, Mapping)}
    width = max((len(k) for k in scalars), default=4)
    for key, value in scalars.items():
        lines.append(f"{key:{width}s}  {value}")
    for section, counters in nested.items():
        lines.append(f"{section}:")
        inner_width = max((len(k) for k in counters), default=4)
        for key, value in counters.items():
            shown = f"{value:.3f}" if isinstance(value, float) else value
            lines.append(f"  {key:{inner_width}s}  {shown}")
    return "\n".join(lines)


def render_comparison(
    rankings: Mapping[str, Sequence[str]], title: str | None = None
) -> str:
    """Figure-9/10-style rank table: one column per method."""
    lines = []
    if title:
        lines.append(title)
    methods = list(rankings)
    attributes = list(rankings[methods[0]])
    name_width = max(len(a) for a in attributes)
    header = f"{'attribute':{name_width}s}  " + "  ".join(
        f"{m:>8s}" for m in methods
    )
    lines.append(header)
    for attribute in attributes:
        ranks = []
        for method in methods:
            order = list(rankings[method])
            ranks.append(order.index(attribute) + 1 if attribute in order else -1)
        lines.append(
            f"{attribute:{name_width}s}  "
            + "  ".join(f"{r:>8d}" for r in ranks)
        )
    return "\n".join(lines)


def render_alert(alert: Mapping) -> str:
    """One drift alert as a single log-style line."""
    seq = alert.get("seq", "-")
    direction = alert.get("direction", "?")
    return (
        f"[alert {seq}] {alert['monitor_id']} {alert['detector']} "
        f"{alert['metric']} {direction}: "
        f"{alert['baseline']:.4f} -> {alert['value']:.4f} "
        f"(magnitude {alert['magnitude']:.4f}, wal_seq {alert['wal_seq']})"
    )


def render_monitor_list(listing: Mapping, title: str | None = None) -> str:
    """Aligned text view of the ``GET /v1/monitors`` response."""
    lines = []
    if title:
        lines.append(title)
    lines.append(
        f"position {listing.get('position', 0)}  "
        f"alerts_total {listing.get('alerts_total', 0)}"
    )
    monitors = listing.get("monitors") or []
    if not monitors:
        lines.append("(no monitors registered)")
        return "\n".join(lines)
    for monitor in monitors:
        metric = monitor["metric"]
        baseline = monitor["baseline"][metric]
        current = monitor["summary"][metric]
        drift = current - baseline
        detectors = ", ".join(monitor.get("detectors") or {}) or "none"
        lines.append(
            f"{monitor['id']:>4s}  {monitor['kind']:<12s} {metric:<22s} "
            f"baseline {baseline:8.4f}  current {current:8.4f}  "
            f"drift {drift:+8.4f}  batches {monitor['batches_seen']:>4d}  "
            f"alerts {monitor['alerts']:>3d}  detectors: {detectors}"
        )
    return "\n".join(lines)


def render_metrics_top(stats: Mapping, limit: int = 20) -> str:
    """Terminal summary of a ``/v1/stats`` response's metrics snapshot.

    Counters and gauges are ranked by value; histograms by observation
    count (shown with their mean in milliseconds). Accepts either the
    full ``/v1/stats`` body or a bare registry snapshot.
    """
    snapshot = stats.get("metrics", stats)
    limit = max(1, int(limit))
    lines = []
    for section in ("counters", "gauges"):
        entries = sorted(
            (snapshot.get(section) or {}).items(), key=lambda kv: -kv[1]
        )[:limit]
        if not entries:
            continue
        lines.append(f"{section}:")
        width = max(len(name) for name, _ in entries)
        for name, value in entries:
            shown = (
                int(value)
                if float(value).is_integer()
                else f"{value:.4f}"
            )
            lines.append(f"  {name:{width}s}  {shown}")
    histograms = snapshot.get("histograms") or {}
    if histograms:
        entries = sorted(
            histograms.items(), key=lambda kv: -kv[1]["count"]
        )[:limit]
        lines.append("histograms (count / mean ms):")
        width = max(len(name) for name, _ in entries)
        for name, hist in entries:
            count = int(hist["count"])
            mean_ms = (hist["sum"] / count * 1e3) if count else 0.0
            lines.append(f"  {name:{width}s}  {count:>8d} / {mean_ms:10.3f}")
    tracer = stats.get("tracing")
    if tracer:
        lines.append(
            f"tracing: {tracer['finished']} finished, "
            f"{tracer['slow_captured']} slow (>= {tracer['slow_ms']:g} ms), "
            f"{tracer['orphan_spans']} orphan spans"
        )
    return "\n".join(lines) if lines else "(no metrics recorded)"


def render_trace(record: Mapping) -> str:
    """Span waterfall for one finished trace (``GET /v1/traces`` entry)."""
    header = (
        f"trace {record['trace_id']}  {record['name']}  "
        f"{record['duration_ms']:.3f} ms  status={record['status']}"
    )
    if record.get("slow"):
        header += "  [slow]"
    lines = [header]
    spans = sorted(
        record.get("spans") or [], key=lambda s: s.get("started_unix", 0.0)
    )
    total = max(float(record["duration_ms"]), 1e-9)
    for entry in spans:
        share = float(entry["duration_ms"]) / total
        lines.append(
            f"  {entry['name']:<24s} {entry['duration_ms']:>10.3f} ms  "
            f"|{_bar(share, 24)}|"
            + (f"  {entry['tags']}" if entry.get("tags") else "")
        )
    if record.get("profile"):
        lines.append("  profile (top cumulative):")
        for row in record["profile"][:5]:
            lines.append(
                f"    {row['function']:<44s} calls {row['calls']:>6d}  "
                f"cum {row['cumtime_s']:.4f}s"
            )
    return "\n".join(lines)
