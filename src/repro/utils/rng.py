"""Random-number-generator plumbing.

Everything stochastic in the library accepts a ``seed`` argument that may
be ``None``, an ``int``, or an already-constructed
:class:`numpy.random.Generator`.  :func:`as_generator` normalises the three
forms so downstream code always works with a ``Generator``.
"""

from __future__ import annotations

import numpy as np


def as_generator(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``Generator`` instances are passed through unchanged so callers can
    share one stream across several components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Used by ensemble models (random forests, bootstrap loops) so each
    member gets its own reproducible stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = as_generator(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]
