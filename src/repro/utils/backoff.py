"""Jittered exponential backoff with an optional overall deadline.

Every reconnecting client in the stack — ``repro monitor watch
--follow``, the replication tailer — wants the same retry shape: start
small, double on consecutive failures, cap the delay, spread retries
with jitter so a fleet of followers does not reconnect in lockstep, and
optionally give up once an overall deadline has passed.  :class:`Backoff`
is that shape as one reusable object; callers own the failure
classification (what counts as retryable) and the loop.

>>> backoff = Backoff(initial=0.5, factor=2.0, max_delay=10.0)
>>> backoff.next_delay()  # 0.5, then 1.0, 2.0, ... capped at 10.0
0.5
>>> backoff.reset()       # healthy response: back to the initial rung
"""

from __future__ import annotations

import random
import time


class Backoff:
    """Exponential retry delays: ``initial * factor**n``, capped, jittered.

    Parameters
    ----------
    initial:
        First delay in seconds.
    factor:
        Multiplier applied per consecutive failure.
    max_delay:
        Ceiling for any single delay (pre-jitter).
    jitter:
        Fraction of the delay randomized away, in ``[0, 1]``: the
        returned delay is uniform in ``[delay * (1 - jitter), delay]``.
        ``0`` (the default) keeps delays exactly deterministic.
    deadline_s:
        Overall budget measured from construction (or the last
        :meth:`reset`); :meth:`expired` flips once it is spent and
        :meth:`next_delay` never sleeps past it.  ``None`` retries
        forever.
    rng:
        Source of jitter randomness (tests pass a seeded
        ``random.Random``).
    clock:
        Monotonic time source used for deadline accounting (tests pass
        a scripted callable; defaults to :func:`time.monotonic`).
    """

    def __init__(
        self,
        initial: float = 0.5,
        factor: float = 2.0,
        max_delay: float = 10.0,
        jitter: float = 0.0,
        deadline_s: float | None = None,
        rng: random.Random | None = None,
        clock=time.monotonic,
    ):
        if initial <= 0:
            raise ValueError(f"initial delay must be positive, got {initial}")
        if factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {factor}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.initial = float(initial)
        self.factor = float(factor)
        self.max_delay = float(max_delay)
        self.jitter = float(jitter)
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self._rng = rng if rng is not None else random.Random()
        self._clock = clock
        self._attempts = 0
        self._started = self._clock()

    @property
    def attempts(self) -> int:
        """Consecutive failures since the last :meth:`reset`."""
        return self._attempts

    def remaining_s(self) -> float | None:
        """Seconds left of the overall deadline, or ``None`` (unbounded)."""
        if self.deadline_s is None:
            return None
        return max(0.0, self.deadline_s - (self._clock() - self._started))

    def expired(self) -> bool:
        """True once the overall deadline has been spent."""
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0

    def next_delay(self) -> float:
        """The delay before the next retry; advances the ladder.

        Deadline-aware: the returned delay never extends past the
        overall budget (it is clamped to the remaining time, down to 0).
        """
        delay = min(
            self.initial * (self.factor ** self._attempts), self.max_delay
        )
        self._attempts += 1
        if self.jitter:
            delay *= 1.0 - self.jitter * self._rng.random()
        remaining = self.remaining_s()
        if remaining is not None:
            delay = max(0.0, min(delay, remaining))
        return delay

    def sleep(self) -> float:
        """Sleep :meth:`next_delay`; returns how long was slept."""
        delay = self.next_delay()
        if delay > 0:
            time.sleep(delay)
        return delay

    def reset(self) -> None:
        """Back to the initial rung; restarts the deadline clock."""
        self._attempts = 0
        self._started = self._clock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Backoff(initial={self.initial}, factor={self.factor}, "
            f"max_delay={self.max_delay}, attempts={self._attempts})"
        )
