"""Shared utilities: RNG handling, validation helpers, exceptions."""

from repro.utils.exceptions import (
    ReproError,
    DomainError,
    GraphError,
    EstimationError,
    RecourseInfeasibleError,
    NotFittedError,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_probability,
    check_in_domain,
    check_same_length,
    check_fitted,
)

__all__ = [
    "ReproError",
    "DomainError",
    "GraphError",
    "EstimationError",
    "RecourseInfeasibleError",
    "NotFittedError",
    "as_generator",
    "spawn_generators",
    "check_probability",
    "check_in_domain",
    "check_same_length",
    "check_fitted",
]
