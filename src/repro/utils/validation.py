"""Small argument-validation helpers used across the package."""

from __future__ import annotations

from typing import Any, Iterable, Sized

from repro.utils.exceptions import DomainError, NotFittedError


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` lies in [0, 1] and return it as a float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_in_domain(value: Any, domain: Iterable[Any], name: str = "value") -> Any:
    """Validate that ``value`` is a member of ``domain`` and return it."""
    domain = list(domain)
    if value not in domain:
        raise DomainError(f"{name}={value!r} is not in domain {domain!r}")
    return value


def check_same_length(*arrays: Sized) -> int:
    """Validate that all arguments share one length and return it."""
    lengths = {len(a) for a in arrays}
    if len(lengths) > 1:
        raise ValueError(f"length mismatch: {sorted(lengths)}")
    return lengths.pop() if lengths else 0


def check_fitted(obj: Any, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``obj.attribute`` is set."""
    if getattr(obj, attribute, None) is None:
        raise NotFittedError(
            f"{type(obj).__name__} is not fitted; call fit() before use"
        )
