"""A byte-budgeted LRU cache with hit/miss/eviction accounting.

Both caching layers of the serving stack — the
:class:`~repro.estimation.engine.ContingencyEngine`'s count-tensor cache
and the :class:`~repro.service.cache.ResultCache` in front of an
:class:`~repro.service.session.ExplainerSession` — need the same three
things: least-recently-used eviction, an *approximate byte* budget
rather than an entry count (tensor and response sizes vary by orders of
magnitude), and introspectable statistics so operators can size the
budget from observed hit rates.  :class:`ByteBudgetLRU` provides all
three behind a dict-like interface; the ``stats()`` dict shape is shared
verbatim by every cache in the system.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Hashable, Iterator


def _default_sizeof(value: Any) -> int:
    """Best-effort byte estimate: ``nbytes`` when present, else ``len``-ish."""
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    try:
        return len(value)
    except TypeError:
        return 1


class ByteBudgetLRU:
    """LRU mapping bounded by an approximate total byte size.

    Parameters
    ----------
    max_bytes:
        Soft budget on the summed entry sizes. ``None`` disables the
        byte bound. An entry larger than the whole budget is evicted
        immediately after insertion (the cache never lies about its
        bound), but the caller still receives the computed value.
    max_entries:
        Optional additional bound on the entry count.
    sizeof:
        ``sizeof(value) -> int`` used when :meth:`put` is not given an
        explicit size. Defaults to ``value.nbytes`` / ``len(value)``.
    on_evict:
        Optional ``on_evict(key, value)`` hook invoked for every entry
        the budget pushes out (not for explicit :meth:`discard` /
        :meth:`clear`). Lets owners of stateful values — e.g. a session
        registry evicting live explainer sessions — release resources
        exactly when the LRU lets go of them.
    """

    def __init__(
        self,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        sizeof: Callable[[Any], int] | None = None,
        on_evict: Callable[[Hashable, Any], None] | None = None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self._sizeof = sizeof or _default_sizeof
        self._on_evict = on_evict
        self._items: OrderedDict[Hashable, tuple[Any, int]] = OrderedDict()
        self._bytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- mapping interface -------------------------------------------------

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._items

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._items)

    def __getitem__(self, key: Hashable) -> Any:
        """Dict-style access with :meth:`peek` semantics (no counters)."""
        entry = self._items.get(key)
        if entry is None:
            raise KeyError(key)
        return entry[0]

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Return the cached value (counting a hit) or ``default`` (a miss)."""
        entry = self._items.get(key)
        if entry is None:
            self._misses += 1
            return default
        self._hits += 1
        self._items.move_to_end(key)
        return entry[0]

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but without touching recency or hit counters."""
        entry = self._items.get(key)
        return default if entry is None else entry[0]

    def put(self, key: Hashable, value: Any, size: int | None = None) -> None:
        """Insert/replace ``key`` and evict LRU entries beyond the budget."""
        size = int(self._sizeof(value) if size is None else size)
        old = self._items.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        self._items[key] = (value, size)
        self._bytes += size
        self._shrink()

    def discard(self, key: Hashable) -> bool:
        """Drop ``key`` if present (not counted as an eviction)."""
        entry = self._items.pop(key, None)
        if entry is None:
            return False
        self._bytes -= entry[1]
        return True

    def discard_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``; return count.

        This is the targeted-invalidation hook: a table update drops only
        the entries keyed to superseded versions and leaves the rest hot.
        """
        stale = [k for k in self._items if predicate(k)]
        for key in stale:
            self.discard(key)
        return len(stale)

    def clear(self) -> None:
        """Drop every entry (statistics are retained)."""
        self._items.clear()
        self._bytes = 0

    def _shrink(self) -> None:
        while self._items and (
            (self.max_bytes is not None and self._bytes > self.max_bytes)
            or (self.max_entries is not None and len(self._items) > self.max_entries)
        ):
            key, (value, size) = self._items.popitem(last=False)
            self._bytes -= size
            self._evictions += 1
            if self._on_evict is not None:
                self._on_evict(key, value)

    # -- introspection -----------------------------------------------------

    @property
    def bytes(self) -> int:
        """Approximate total size of the cached values."""
        return self._bytes

    def stats_struct(self, name: str = "lru") -> "CacheStats":
        """Counters as the unified :class:`~repro.obs.metrics.CacheStats`.

        This is the one cache-statistics schema in the system; every
        cache exports it through the metrics registry as
        ``repro_cache_*{cache=...}`` gauges.
        """
        from repro.obs.metrics import CacheStats

        return CacheStats.from_lru(name, self)

    def stats(self) -> dict:
        """Deprecated dict view of :meth:`stats_struct` (back-compat shim).

        The key set predates the unified :class:`~repro.obs.metrics
        .CacheStats` schema and is kept byte-for-byte for existing
        callers; new code should use :meth:`stats_struct` or read the
        ``repro_cache_*`` gauges from the metrics registry.
        """
        return self.stats_struct().legacy_dict()
