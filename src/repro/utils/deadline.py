"""Per-request deadlines as an ambient contextvar.

The HTTP tier opens a :func:`scope` from ``REPRO_DEADLINE_MS`` (or the
``X-Repro-Deadline-Ms`` header), the micro-batcher carries the value
across its dispatch thread (:func:`attach`/:func:`restore`), and long
compute loops — the recourse chunk solver above all — call
:func:`check` between units of work.  Deadlines are absolute
``time.monotonic()`` instants, so they survive queueing: time spent
waiting in the batcher counts against the budget, which is what lets
the dispatcher fail queued-but-expired requests fast instead of
computing answers nobody is waiting for.

``None`` everywhere means "no deadline" and costs one contextvar read.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Iterator

from repro.utils.exceptions import DeadlineExceededError

_DEADLINE: contextvars.ContextVar[float | None] = contextvars.ContextVar(
    "repro_deadline", default=None
)


def current() -> float | None:
    """The ambient absolute deadline (``time.monotonic()`` instant)."""
    return _DEADLINE.get()


def remaining_s() -> float | None:
    """Seconds left before the ambient deadline; ``None`` if unset."""
    deadline = _DEADLINE.get()
    if deadline is None:
        return None
    return deadline - time.monotonic()


def expired() -> bool:
    deadline = _DEADLINE.get()
    return deadline is not None and time.monotonic() >= deadline


def check(where: str) -> None:
    """Raise :class:`DeadlineExceededError` if the deadline has passed."""
    deadline = _DEADLINE.get()
    if deadline is not None and time.monotonic() >= deadline:
        raise DeadlineExceededError(f"deadline exceeded ({where})")


def attach(deadline: float | None) -> contextvars.Token:
    """Set an absolute deadline in this context; pair with :func:`restore`."""
    return _DEADLINE.set(deadline)


def restore(token: contextvars.Token) -> None:
    _DEADLINE.reset(token)


@contextlib.contextmanager
def scope(budget_ms: float | None) -> Iterator[float | None]:
    """Run the block under a deadline ``budget_ms`` from now.

    ``None`` installs no deadline (the block still sees any outer one).
    """
    if budget_ms is None:
        yield _DEADLINE.get()
        return
    deadline = time.monotonic() + float(budget_ms) / 1000.0
    outer = _DEADLINE.get()
    if outer is not None:
        deadline = min(deadline, outer)  # never extend an enclosing budget
    token = _DEADLINE.set(deadline)
    try:
        yield deadline
    finally:
        _DEADLINE.reset(token)
