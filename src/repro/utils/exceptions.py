"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class DomainError(ReproError, ValueError):
    """A value lies outside the declared domain of an attribute."""


class GraphError(ReproError, ValueError):
    """A causal diagram is malformed (cycles, unknown nodes, ...)."""


class EstimationError(ReproError, RuntimeError):
    """A probability or score could not be estimated from data."""


class RecourseInfeasibleError(ReproError, RuntimeError):
    """The recourse integer program has no feasible solution."""


class NotFittedError(ReproError, RuntimeError):
    """An estimator was used before ``fit`` was called."""


class StoreError(ReproError, RuntimeError):
    """A persistence operation failed (missing artifact, corrupt log,
    snapshot/table mismatch, unknown tenant)."""


class CorruptArtifactError(StoreError):
    """Stored bytes fail their integrity check (digest/crc mismatch).

    Raised instead of returning the bytes: corrupt state must never be
    loaded silently."""


class DegradedError(StoreError):
    """A durable component is in read-only degraded mode after an I/O
    failure and refuses writes until healed (see ``DeltaLog.reopen``)."""


class DeadlineExceededError(ReproError, RuntimeError):
    """The request's deadline expired before the work completed."""


class OverloadedError(ReproError, RuntimeError):
    """The server shed this request because a bounded queue is full.

    Maps to HTTP 429 with a ``Retry-After`` hint."""

    def __init__(self, message: str, retry_after_s: float = 1.0):
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
