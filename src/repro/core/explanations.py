"""Global, contextual, and local explanations (Section 3.2).

Global and contextual explanations rank each attribute by the maximum of
each score over all ordered value pairs ``x > x'`` in its domain (higher
code = more favourable, per the ordinal convention or the inferred
ordering).  Local explanations decompose an individual's outcome into
positive and negative contributions of each of their attribute values,
following the four max-formulas of Section 3.2.

Every explanation can render itself as the contrastive counterfactual
sentences of the paper's template (1) via ``statements()``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.core.scores import ScoreEstimator

SCORE_KEYS = ("necessity", "sufficiency", "necessity_sufficiency")


@dataclass(frozen=True)
class AttributeScore:
    """Best-pair scores of one attribute in one context."""

    attribute: str
    necessity: float
    sufficiency: float
    necessity_sufficiency: float
    best_pair_necessity: tuple[Any, Any] | None = None
    best_pair_sufficiency: tuple[Any, Any] | None = None
    best_pair_nesuf: tuple[Any, Any] | None = None

    def score(self, kind: str) -> float:
        """Return one of the three scores by name."""
        if kind not in SCORE_KEYS:
            raise ValueError(f"unknown score kind {kind!r}; options: {SCORE_KEYS}")
        return getattr(self, kind)


@dataclass
class GlobalExplanation:
    """Per-attribute scores for a (possibly empty) context ``k``."""

    context: dict[str, Any]
    attribute_scores: list[AttributeScore]

    def ranking(self, kind: str = "necessity_sufficiency") -> list[str]:
        """Attributes ordered from most to least influential by ``kind``."""
        ordered = sorted(
            self.attribute_scores, key=lambda s: s.score(kind), reverse=True
        )
        return [s.attribute for s in ordered]

    def rank_of(self, attribute: str, kind: str = "necessity_sufficiency") -> int:
        """1-based rank of ``attribute`` under ``kind``."""
        return self.ranking(kind).index(attribute) + 1

    def score_of(self, attribute: str) -> AttributeScore:
        """The :class:`AttributeScore` of ``attribute``."""
        for s in self.attribute_scores:
            if s.attribute == attribute:
                return s
        raise KeyError(f"no score for attribute {attribute!r}")

    def statements(self, top: int = 3) -> list[str]:
        """Contrastive sentences for the ``top`` attributes by NESUF."""
        out = []
        where = (
            " for individuals with "
            + ", ".join(f"{k}={v}" for k, v in self.context.items())
            if self.context
            else ""
        )
        for attr in self.ranking("sufficiency")[:top]:
            s = self.score_of(attr)
            if s.best_pair_sufficiency is None:
                continue
            hi, lo = s.best_pair_sufficiency
            out.append(
                f"The decision would have been positive with probability "
                f"{s.sufficiency:.0%} were {attr} = {hi!r} instead of {lo!r}{where}."
            )
        return out

    def as_rows(self) -> list[dict]:
        """Tabular view: one dict per attribute (for printing/benchmarks)."""
        return [
            {
                "attribute": s.attribute,
                "necessity": s.necessity,
                "sufficiency": s.sufficiency,
                "necessity_sufficiency": s.necessity_sufficiency,
            }
            for s in self.attribute_scores
        ]


@dataclass(frozen=True)
class LocalContribution:
    """Signed contribution of one attribute value to an individual's outcome.

    ``negative`` is the probability that the value works *against* the
    individual's favourable standing, ``positive`` that it works *for* it
    (the four max-formulas of Section 3.2). ``negative_foil`` /
    ``positive_foil`` record the counterfactual value realising each max,
    for rendering contrastive statements.
    """

    attribute: str
    value: Any
    positive: float
    negative: float
    negative_foil: Any | None = None
    positive_foil: Any | None = None

    @property
    def net(self) -> float:
        """Positive minus negative contribution."""
        return self.positive - self.negative


@dataclass
class LocalExplanation:
    """Per-attribute contributions for one individual."""

    individual: dict[str, Any]
    outcome_positive: bool
    contributions: list[LocalContribution]

    def ranking(self, by: str = "negative") -> list[str]:
        """Attributes sorted by |contribution| of the requested sign."""
        key = {
            "negative": lambda c: c.negative,
            "positive": lambda c: c.positive,
            "net": lambda c: abs(c.net),
        }[by]
        return [
            c.attribute
            for c in sorted(self.contributions, key=key, reverse=True)
        ]

    def contribution_of(self, attribute: str) -> LocalContribution:
        """The contribution entry of ``attribute``."""
        for c in self.contributions:
            if c.attribute == attribute:
                return c
        raise KeyError(f"no contribution for attribute {attribute!r}")

    def statements(self, top: int = 3) -> list[str]:
        """Contrastive sentences in the paper's template (1).

        For an approved individual the interesting contrast is losing the
        decision by lowering a supporting value (necessity, positive
        contribution); for a rejected individual it is gaining the
        decision by raising a hurting value (sufficiency, negative
        contribution).
        """
        out = []
        if self.outcome_positive:
            foil_outcome = "rejected"
            key = lambda c: c.positive  # noqa: E731 - tiny local sort key
            pick = lambda c: (c.positive, c.positive_foil)  # noqa: E731
        else:
            foil_outcome = "approved"
            key = lambda c: c.negative  # noqa: E731
            pick = lambda c: (c.negative, c.negative_foil)  # noqa: E731
        for c in sorted(self.contributions, key=key, reverse=True)[:top]:
            probability, foil_value = pick(c)
            if probability <= 0 or foil_value is None:
                continue
            out.append(
                f"The decision would have been {foil_outcome} with probability "
                f"{probability:.0%} were {c.attribute} = "
                f"{foil_value!r} instead of {c.value!r}."
            )
        return out


# ---------------------------------------------------------------------------
# builders


def _ordered_pairs(cardinality: int) -> Iterable[tuple[int, int]]:
    """All (high, low) code pairs with high > low."""
    for hi in range(cardinality):
        for lo in range(hi):
            yield hi, lo


def _truncated_pairs(
    cardinality: int, max_pairs: int | None
) -> list[tuple[int, int]]:
    """Ordered value pairs of one attribute, optionally capped."""
    pairs = list(_ordered_pairs(cardinality))
    if max_pairs is not None and len(pairs) > max_pairs:
        # Prefer extreme contrasts, which carry the max in practice.
        pairs.sort(key=lambda p: p[0] - p[1], reverse=True)
        pairs = pairs[:max_pairs]
    return pairs


def build_global_explanation(
    estimator: ScoreEstimator,
    attributes: Sequence[str],
    context: Mapping[str, int] | None = None,
    context_labels: Mapping[str, Any] | None = None,
    max_pairs_per_attribute: int | None = None,
    batched: bool = True,
) -> GlobalExplanation:
    """Score every attribute by its best value pair in ``context``.

    ``context`` is code-level; ``context_labels`` (optional) is the
    decoded version recorded on the explanation for display.

    Every attribute's ordered value pairs are enumerated up front and
    dispatched as *one* :meth:`ScoreEstimator.scores_batch` call, so the
    whole explanation costs a few vectorized passes over the engine's
    count tensors.  ``batched=False`` keeps the historical
    one-scalar-call-per-pair loop (used by benchmarks and parity tests);
    both paths produce identical explanations.
    """
    context = dict(context or {})
    table = estimator.table
    scored = [a for a in attributes if a not in context]
    contrasts: list[tuple[dict, dict]] = []
    owners: list[tuple[str, int, int]] = []
    for attribute in scored:
        col = table.column(attribute)
        for hi, lo in _truncated_pairs(col.cardinality, max_pairs_per_attribute):
            contrasts.append(({attribute: hi}, {attribute: lo}))
            owners.append((attribute, hi, lo))
    if batched:
        triples = estimator.scores_batch(contrasts, context)
    else:
        triples = [
            estimator.scores(treatment, baseline, context)
            for treatment, baseline in contrasts
        ]

    best = {a: {k: 0.0 for k in SCORE_KEYS} for a in scored}
    best_pair: dict[str, dict[str, tuple | None]] = {
        a: {k: None for k in SCORE_KEYS} for a in scored
    }
    for (attribute, hi, lo), triple in zip(owners, triples):
        col = table.column(attribute)
        for key in SCORE_KEYS:
            value = getattr(triple, key)
            if value > best[attribute][key]:
                best[attribute][key] = value
                best_pair[attribute][key] = (col.categories[hi], col.categories[lo])
    scores = [
        AttributeScore(
            attribute=attribute,
            necessity=best[attribute]["necessity"],
            sufficiency=best[attribute]["sufficiency"],
            necessity_sufficiency=best[attribute]["necessity_sufficiency"],
            best_pair_necessity=best_pair[attribute]["necessity"],
            best_pair_sufficiency=best_pair[attribute]["sufficiency"],
            best_pair_nesuf=best_pair[attribute]["necessity_sufficiency"],
        )
        for attribute in scored
    ]
    labels = dict(context_labels or {})
    if not labels and context:
        labels = {
            name: table.column(name).categories[code]
            for name, code in context.items()
        }
    return GlobalExplanation(context=labels, attribute_scores=scores)


def build_local_explanation(
    estimator: ScoreEstimator,
    row_codes: Mapping[str, int],
    outcome_positive: bool,
    attributes: Sequence[str],
    batched: bool = True,
) -> LocalExplanation:
    """Contributions of each attribute value for one individual.

    Implements the four formulas of Section 3.2: for a *negative* outcome
    the negative contribution of the current value ``x'`` is
    ``max_{x > x'} SUF^{x'}_x(k)`` and its positive contribution
    ``max_{x'' < x'} SUF^{x''}_{x'}(k)``; for a *positive* outcome the
    positive contribution is ``max_{x'' < x'} NEC^{x''}_{x'}(k)`` and the
    negative contribution ``max_{x > x'} NEC^{x'}_x(k)``.

    The default path is the ``N = 1`` case of
    :func:`build_local_explanations_batch`; ``batched=False`` keeps the
    historical attributes × value-pairs × 2-probes scalar loop (used by
    benchmarks and parity tests) — both produce identical explanations.
    """
    if batched:
        return build_local_explanations_batch(
            estimator, [row_codes], [outcome_positive], attributes
        )[0]
    table = estimator.table
    contributions: list[LocalContribution] = []
    for attribute in attributes:
        col = table.column(attribute)
        current = int(row_codes[attribute])
        context = estimator.local_context(attribute, row_codes)
        higher = range(current + 1, col.cardinality)
        lower = range(current)

        best_negative, best_positive = 0.0, 0.0
        negative_foil = positive_foil = None
        if outcome_positive:
            # Positive contribution: dropping to a lower value would flip.
            for x_low in lower:
                nec = estimator.local_scores(attribute, current, x_low, context).necessity
                if nec > best_positive:
                    best_positive = nec
                    positive_foil = col.categories[x_low]
            # Negative contribution: individuals at a higher value would
            # lose the decision if brought down to the current value.
            for x_high in higher:
                nec = estimator.local_scores(attribute, x_high, current, context).necessity
                if nec > best_negative:
                    best_negative = nec
                    negative_foil = col.categories[x_high]
        else:
            # Negative contribution: raising the value would flip to positive.
            for x_high in higher:
                suf = estimator.local_scores(attribute, x_high, current, context).sufficiency
                if suf > best_negative:
                    best_negative = suf
                    negative_foil = col.categories[x_high]
            # Positive contribution: the current value already helps vs lower.
            for x_low in lower:
                suf = estimator.local_scores(attribute, current, x_low, context).sufficiency
                if suf > best_positive:
                    best_positive = suf
                    positive_foil = col.categories[x_low]
        contributions.append(
            LocalContribution(
                attribute=attribute,
                value=col.categories[current],
                positive=best_positive,
                negative=best_negative,
                negative_foil=negative_foil,
                positive_foil=positive_foil,
            )
        )
    individual = {
        name: table.column(name).categories[int(code)]
        for name, code in row_codes.items()
        if name in table
    }
    return LocalExplanation(
        individual=individual,
        outcome_positive=bool(outcome_positive),
        contributions=contributions,
    )


def _masked_best(
    scores: np.ndarray, mask: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise (max, first argmax) of ``scores`` restricted to ``mask``.

    Mirrors the scalar loop's tie-breaking: candidates are scanned in
    ascending code order and only a *strictly* greater score replaces
    the incumbent, so the reported foil is the lowest code achieving the
    maximum.  Rows with no candidate (empty mask) report ``-inf``.
    """
    masked = np.where(mask, scores, -np.inf)
    return masked.max(axis=1), masked.argmax(axis=1)


def build_local_explanations_batch(
    estimator: ScoreEstimator,
    rows_codes: Sequence[Mapping[str, int]],
    outcomes_positive: Sequence[bool] | np.ndarray,
    attributes: Sequence[str],
) -> list[LocalExplanation]:
    """Local explanations for a whole cohort in a few matrix passes.

    The scalar path costs ``attributes × value-pairs × 2`` regression
    probes *per individual*; here the entire cohort's probes are
    assembled, deduplicated and answered through
    :meth:`ScoreEstimator.local_score_arrays` (one fitted model and one
    matrix pass per attribute group), and the four max-formulas of
    Section 3.2 reduce to masked row-wise maxima.  Results are
    identical to ``[build_local_explanation(...) for each row]``.
    """
    rows_codes = list(rows_codes)
    positives = np.asarray(outcomes_positive, dtype=bool)
    if len(positives) != len(rows_codes):
        raise ValueError("outcomes_positive must align with rows_codes")
    table = estimator.table
    n = len(rows_codes)
    if n == 0:
        return []
    arrays = estimator.local_score_arrays(rows_codes, attributes)
    per_attribute: dict[str, list[LocalContribution]] = {}
    for attribute in attributes:
        scores = arrays[attribute]
        categories = table.column(attribute).categories
        card = scores.cardinality
        values = np.arange(card)
        lower = values[None, :] < scores.current[:, None]
        higher = values[None, :] > scores.current[:, None]
        # Positive-outcome rows read the necessity arrays, negative-
        # outcome rows the sufficiency arrays (Section 3.2).
        chosen = np.where(
            positives[:, None], scores.necessity, scores.sufficiency
        )
        best_pos, foil_pos = _masked_best(chosen, lower)
        best_neg, foil_neg = _masked_best(chosen, higher)
        # Pull everything into plain-Python lists once: the assembly
        # loop below runs n times per attribute, and per-element numpy
        # scalar access would dominate the whole batch at cohort scale.
        per_attribute[attribute] = [
            LocalContribution(
                attribute,
                categories[c],
                p if p > 0.0 else 0.0,
                g if g > 0.0 else 0.0,
                categories[gf] if g > 0.0 else None,
                categories[pf] if p > 0.0 else None,
            )
            for c, p, g, pf, gf in zip(
                scores.current.tolist(),
                best_pos.tolist(),
                best_neg.tolist(),
                foil_pos.tolist(),
                foil_neg.tolist(),
            )
        ]
    categories_of = {name: table.column(name).categories for name in table.names}
    out = []
    for i, row_codes in enumerate(rows_codes):
        individual = {
            name: categories_of[name][int(code)]
            for name, code in row_codes.items()
            if name in categories_of
        }
        out.append(
            LocalExplanation(
                individual=individual,
                outcome_positive=bool(positives[i]),
                contributions=[per_attribute[a][i] for a in attributes],
            )
        )
    return out
