"""Bootstrap uncertainty for explanation scores.

Figure 11b of the paper shows estimation variance shrinking with sample
size; this module makes that uncertainty a first-class output: resample
the black box's input-output table with replacement, recompute a score
per replicate, and report percentile confidence intervals.  A downstream
user can then distinguish "sufficiency 0.6 ± 0.02" from
"0.6 ± 0.3" before acting on an explanation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.causal.graph import CausalDiagram
from repro.core.scores import SCORE_KINDS, ScoreEstimator
from repro.data.table import Table
from repro.utils.rng import as_generator
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class ScoreInterval:
    """Point estimate plus a percentile bootstrap interval."""

    point: float
    lower: float
    upper: float
    level: float
    n_bootstrap: int

    @property
    def width(self) -> float:
        """Interval width — the practical uncertainty measure."""
        return self.upper - self.lower

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.point:.3f} [{self.lower:.3f}, {self.upper:.3f}]"


class BootstrapScores:
    """Percentile-bootstrap intervals around :class:`ScoreEstimator` scores."""

    def __init__(
        self,
        features: Table,
        positive: np.ndarray,
        diagram: CausalDiagram | None = None,
        n_bootstrap: int = 50,
        seed: int | np.random.Generator | None = 0,
    ):
        if n_bootstrap < 2:
            raise ValueError("n_bootstrap must be at least 2")
        self._features = features
        self._positive = np.asarray(positive, dtype=bool)
        if len(self._positive) != len(features):
            raise ValueError("positive vector length must match the table")
        self._diagram = diagram
        self.n_bootstrap = int(n_bootstrap)
        self._rng = as_generator(seed)
        self._point = ScoreEstimator(features, self._positive, diagram=diagram)

    @property
    def point_estimator(self) -> ScoreEstimator:
        """The full-sample estimator used for point estimates."""
        return self._point

    def _replicate(self) -> ScoreEstimator:
        n = len(self._features)
        rows = self._rng.integers(0, n, size=n)
        return ScoreEstimator(
            self._features.take(rows), self._positive[rows], diagram=self._diagram
        )

    def interval(
        self,
        kind: str,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
        level: float = 0.9,
    ) -> ScoreInterval:
        """Bootstrap interval for one score of one contrast.

        ``kind`` is ``necessity`` / ``sufficiency`` /
        ``necessity_sufficiency``; ``level`` the two-sided coverage.
        """
        check_probability(level, "level")
        contrast = [(treatment, baseline)]
        point = self._point.score_arrays(contrast, context, kinds=(kind,))[kind][0]
        draws = np.empty(self.n_bootstrap)
        for i in range(self.n_bootstrap):
            estimator = self._replicate()
            draws[i] = estimator.score_arrays(contrast, context, kinds=(kind,))[
                kind
            ][0]
        tail = (1.0 - level) / 2.0
        lower, upper = np.quantile(draws, [tail, 1.0 - tail])
        return ScoreInterval(
            point=float(point),
            lower=float(lower),
            upper=float(upper),
            level=level,
            n_bootstrap=self.n_bootstrap,
        )

    def intervals(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
        level: float = 0.9,
    ) -> dict[str, ScoreInterval]:
        """All three scores' intervals, sharing the bootstrap replicates."""
        return self.intervals_batch([(treatment, baseline)], context, level)[0]

    def intervals_batch(
        self,
        contrasts: Sequence[tuple[Mapping[str, int], Mapping[str, int]]],
        context: Mapping[str, int] | None = None,
        level: float = 0.9,
    ) -> list[dict[str, ScoreInterval]]:
        """Intervals for many contrasts, sharing the bootstrap replicates.

        Every replicate evaluates *all* contrasts and all three score
        kinds with one :meth:`ScoreEstimator.score_arrays` call, so the
        bootstrap cost is ``n_bootstrap`` vectorized passes rather than
        ``n_bootstrap × n_contrasts × 3`` scalar score computations.
        Entry ``i`` of the result holds ``{kind: ScoreInterval}`` for
        ``contrasts[i]``.
        """
        check_probability(level, "level")
        contrasts = list(contrasts)
        points = self._point.score_arrays(contrasts, context)
        draws = {
            kind: np.empty((self.n_bootstrap, len(contrasts)))
            for kind in SCORE_KINDS
        }
        for i in range(self.n_bootstrap):
            estimator = self._replicate()
            replicate = estimator.score_arrays(contrasts, context)
            for kind in SCORE_KINDS:
                draws[kind][i] = replicate[kind]
        tail = (1.0 - level) / 2.0
        out: list[dict[str, ScoreInterval]] = []
        for j in range(len(contrasts)):
            entry = {}
            for kind in SCORE_KINDS:
                lower, upper = np.quantile(draws[kind][:, j], [tail, 1.0 - tail])
                entry[kind] = ScoreInterval(
                    point=float(points[kind][j]),
                    lower=float(lower),
                    upper=float(upper),
                    level=level,
                    n_bootstrap=self.n_bootstrap,
                )
            out.append(entry)
        return out
