"""Pure signature-solving kernel behind :class:`RecourseSolver`.

One function, :func:`solve_signature`, runs the full threshold/refine
loop (Section 4.2's cut loop) for a single ``(current codes, context)``
signature given only plain data: a :class:`SignatureSkeleton`, the
signature's base log-odds, and the solve options.  It holds no table,
estimator, or solver state, so the exact same code path backs

* the scalar :meth:`RecourseSolver.solve`,
* the serial batch loop, and
* :func:`solve_chunk`, the picklable unit of work shipped to
  ``ProcessPoolExecutor`` workers.

Serial and parallel solves are therefore bit-identical by construction:
the parent only decides *where* chunks run, never *how*.

Two engines are supported.  ``engine="parametric"`` (default) uses the
cached parametric-dual bounds from :mod:`repro.opt.parametric`: a greedy
cover certified against the LP root bound handles most signatures
without any search, and the rest run a depth-first exact search whose
node bounds are vectorised grid evaluations.  ``engine="milp"`` keeps
the original scipy/HiGHS MILP route, retained as the independent oracle
the property suite checks the parametric engine against.

``mode="anytime"`` skips the exact search entirely and returns the
greedy cover together with a *certified* optimality gap: the reported
``gap`` is ``greedy cost - LP root bound at the first threshold``, and
since the exact cost is sandwiched between that LP bound and the greedy
cost (costs are monotone in the threshold), the true exact-vs-anytime
difference can never exceed it.
"""

from __future__ import annotations

import os
import time
from typing import Mapping, Sequence

import numpy as np

import repro.faults as _faults
from repro.estimation.logit import logit
from repro.opt.integer_program import IntegerProgram
from repro.opt.parametric import (
    FEASIBILITY_TOL,
    CERTIFICATE_TOL,
    SignatureSkeleton,
    greedy_cover,
    incumbent_from_codes,
    selection_stats,
    selection_to_codes,
    solve_exact,
)
from repro.utils.exceptions import RecourseInfeasibleError

MODES = ("exact", "anytime")
ENGINES = ("parametric", "milp")

#: default chunk granularity for batch solving; :func:`adaptive_chunk_size`
#: scales it with the signature count and lane count, but the chosen size
#: is a pure function of ``(n_items, workers, cpu_count)`` — never of pool
#: scheduling — so the chunking, and with it the warm-start donor
#: neighbourhoods, are deterministic for a given worker count.  (Donors
#: only seed search upper bounds and never change answers, so results are
#: bit-identical across chunkings regardless; see ``SEED_EPS``.)
CHUNK_SIZE = 64

#: bounds on the adaptive chunk size: small enough that a pool of lanes
#: load-balances, large enough that donor neighbourhoods stay useful and
#: per-chunk pickling overhead stays amortised.
CHUNK_MIN = 16
CHUNK_MAX = 256


def adaptive_chunk_size(
    n_items: int, workers: int | None = None, cpu_count: int | None = None
) -> int:
    """Chunk size for ``n_items`` signatures over ``workers`` lanes.

    Aims for ~4 chunks per lane so a process pool load-balances across
    heterogeneous signature solve times, clipped to
    ``[CHUNK_MIN, CHUNK_MAX]``.  ``workers`` of ``None``/``0``/``1``
    plans for the host's core count (the serial path still chunks, for
    donor locality).  Deterministic for a given ``(n_items, workers,
    cpu_count)`` — ``cpu_count`` defaults to ``os.cpu_count()``, fixed
    per host — and independent of anything runtime-scheduled.
    """
    if n_items <= 0:
        return CHUNK_SIZE
    if cpu_count is None:
        cpu_count = os.cpu_count() or 1
    cpu_count = max(1, int(cpu_count))
    lanes = (
        int(workers)
        if workers is not None and int(workers) > 1
        else cpu_count
    )
    target = -(-int(n_items) // (lanes * 4))
    return max(CHUNK_MIN, min(CHUNK_MAX, target))


def _sigmoid(z: float) -> float:
    return float(1.0 / (1.0 + np.exp(-z)))


def _solve_ip_milp(
    skeleton: SignatureSkeleton, needed: float, node_limit: int | None
) -> tuple[dict[str, int], float]:
    """Original MILP route: build the IntegerProgram and call HiGHS."""
    from repro.opt.branch_and_bound import solve_binary_program

    program = IntegerProgram()
    gain_coeffs: dict = {}
    for a, attribute in enumerate(skeleton.attributes):
        exclusivity: dict = {}
        for code, cost, gain in zip(
            skeleton.codes[a], skeleton.costs[a], skeleton.gains[a]
        ):
            name = (attribute, int(code))
            program.add_variable(name, cost=float(cost))
            gain_coeffs[name] = float(gain)
            exclusivity[name] = 1.0
        if exclusivity:
            program.add_le_constraint(exclusivity, 1.0)
    program.add_ge_constraint(gain_coeffs, needed)
    solution = solve_binary_program(program, max_nodes=node_limit or 200_000)
    chosen = {
        attribute: int(code)
        for (attribute, code), v in solution.values.items()
        if v == 1
    }
    return chosen, float(solution.objective)


def solve_signature(
    skeleton: SignatureSkeleton,
    base_logit: float,
    alpha: float,
    max_refinements: int,
    mode: str = "exact",
    engine: str = "parametric",
    node_limit: int | None = 200_000,
    donors: Sequence[Mapping[str, int]] = (),
) -> dict:
    """Threshold/refine loop for one signature; returns a plain dict.

    ``donors`` are action sets of already-solved nearby signatures; when
    mapped onto this skeleton they only *seed* the exact search's upper
    bound (see :data:`repro.opt.parametric.SEED_EPS`), so the returned
    solution is identical with or without them — warm starts change
    wall-clock, never answers.

    Result statuses: ``"empty"`` (base probability already meets
    ``alpha``), ``"ok"`` (solved; ``chosen`` maps attribute to new
    code), ``"infeasible"`` (with a ``reason`` of ``"no_candidates"``
    or ``"unreachable"``).
    """
    base_prob = _sigmoid(base_logit)
    stats = {"nodes": 0, "refinements": 0, "certified": 0, "donor_seeded": 0}
    if base_prob >= alpha:
        return {"status": "empty", "probability": base_prob, "stats": stats}
    if skeleton.n_variables == 0:
        return {
            "status": "infeasible",
            "reason": "no_candidates",
            "probability": base_prob,
            "stats": stats,
        }
    threshold = min(base_prob + alpha * (1.0 - base_prob), 1.0 - 1e-6)

    first_lp_bound: float | None = None
    for _refine in range(max_refinements):
        stats["refinements"] += 1
        needed = logit(threshold) - base_logit
        lp_root = skeleton.lp_bound(needed)
        if first_lp_bound is None:
            first_lp_bound = lp_root
        try:
            if mode == "anytime":
                # Greedy rounding against the parametric LP bound,
                # regardless of engine: the point of anytime mode is to
                # avoid the search entirely.
                covered = greedy_cover(skeleton, needed)
                if covered is None:
                    break
                selection, objective = covered
                chosen = selection_to_codes(skeleton, selection)
                gain_sum = selection_stats(skeleton, selection)[1]
            elif engine == "milp":
                chosen, objective = _solve_ip_milp(skeleton, needed, node_limit)
                gain_sum = _gain_of(skeleton, chosen)
            else:
                solved = _solve_exact_parametric(
                    skeleton, needed, lp_root, node_limit, donors, stats
                )
                if solved is None:
                    break
                selection, objective = solved
                chosen = selection_to_codes(skeleton, selection)
                gain_sum = selection_stats(skeleton, selection)[1]
        except RecourseInfeasibleError:
            # Proven infeasible (or budget exhausted) at this threshold;
            # tightening it cannot help.
            break
        achieved = _sigmoid(base_logit + gain_sum)
        if not chosen:
            sufficiency = base_prob
        elif base_prob >= 1.0:
            sufficiency = 1.0
        else:
            sufficiency = max(
                0.0, min(1.0, (achieved - base_prob) / (1.0 - base_prob))
            )
        if sufficiency >= alpha - 1e-9:
            gap = 0.0
            if mode == "anytime" and np.isfinite(first_lp_bound):
                gap = max(0.0, float(objective) - float(first_lp_bound))
            return {
                "status": "ok",
                "chosen": chosen,
                "objective": float(objective),
                "threshold": threshold,
                "sufficiency": sufficiency,
                "probability": achieved,
                "gap": gap,
                "stats": stats,
            }
        # Surrogate too optimistic: tighten and re-solve.
        threshold = min(1.0 - 1e-6, threshold + 0.5 * (1.0 - threshold))
    return {
        "status": "infeasible",
        "reason": "unreachable",
        "probability": base_prob,
        "stats": stats,
    }


def _solve_exact_parametric(
    skeleton: SignatureSkeleton,
    needed: float,
    lp_root: float,
    node_limit: int | None,
    donors: Sequence[Mapping[str, int]],
    stats: dict,
) -> tuple[np.ndarray, float] | None:
    """Greedy certificate, warm-started exact search otherwise."""
    if not np.isfinite(lp_root):
        return None
    covered = greedy_cover(skeleton, needed)
    if covered is None:
        return None
    selection, greedy_cost = covered
    if greedy_cost <= lp_root + CERTIFICATE_TOL:
        # Greedy already meets the LP lower bound: certified optimal,
        # no search needed.  The certificate is donor-independent, so
        # it fires identically in scalar and batch solves.
        stats["certified"] += 1
        return selection, greedy_cost
    seed_cost = greedy_cost
    for chosen in donors:
        mapped = incumbent_from_codes(skeleton, chosen, needed)
        if mapped is not None and mapped < seed_cost:
            seed_cost = mapped
            stats["donor_seeded"] = 1
    exact_sel, objective, nodes = solve_exact(
        skeleton, needed, seed_cost, node_limit=node_limit
    )
    stats["nodes"] += nodes
    if exact_sel is None:  # pragma: no cover - defensive; seed is feasible
        return selection, greedy_cost
    return exact_sel, objective


def _gain_of(skeleton: SignatureSkeleton, chosen: Mapping[str, int]) -> float:
    """Total linearised gain of an attribute->code action set."""
    total = 0.0
    index = {a: i for i, a in enumerate(skeleton.attributes)}
    for attribute, code in chosen.items():
        a = index[attribute]
        hits = np.nonzero(skeleton.codes[a] == int(code))[0]
        if len(hits):
            total += float(skeleton.gains[a][hits[0]])
    return total


def solve_chunk(
    payload: dict,
    skeletons: Mapping[tuple, SignatureSkeleton] | None = None,
) -> list[dict] | dict:
    """Solve one chunk of signature work items; the process-pool unit.

    ``payload`` is a plain picklable dict::

        {
          "skeletons": {current_key: skeleton_payload, ...},
          "items": [{"key": current_key, "base_logit": float}, ...],
          "alpha": float, "max_refinements": int,
          "mode": str, "engine": str, "node_limit": int,
        }

    Items are processed in order; each solved item's action set joins
    the chunk-local donor pool, and later items are warm-started from
    the donor whose current actionable codes are nearest in Hamming
    distance (ties -> earliest solved).  Because chunk boundaries and
    item order are fixed by the parent (sorted signatures, fixed
    :data:`CHUNK_SIZE`), the donor each item sees — and hence the whole
    computation — is identical whether chunks run inline or on any
    number of workers.

    ``skeletons`` optionally supplies prebuilt skeleton objects (the
    inline path reuses the parent's cache); workers rebuild them from
    the payload.  Skeleton derivation is a pure function of the
    payload, so both routes compute identical numbers.

    ``payload["donors"]`` optionally pre-seeds the chunk-local donor
    pool with ``{"key": [...], "chosen": {...}}`` entries from earlier
    requests (or a restored snapshot); the parent gives every chunk the
    same list, so seeding preserves the serial/parallel bit-identity —
    and, donors being upper-bound seeds only, the answers themselves.

    ``payload["trace"]`` (a ``{"trace_id", "span_id"}`` context captured
    by the parent) switches the return shape to an *envelope*
    ``{"results": [...], "span": {...}}`` carrying the chunk's own wall
    timing as plain data, so the parent can replay it into the request
    trace even when the chunk ran in a pool worker process.  Timing
    never feeds back into the solve, so the bit-identity guarantee is
    untouched.
    """
    trace_ctx = payload.get("trace")
    chunk_started_unix = time.time()
    chunk_started = time.perf_counter()
    if skeletons is None:
        # Pool workers rebuild skeletons (the inline path passes the
        # parent's cache), which makes this the worker-only entry: the
        # chaos suite injects crashes (os._exit) and stalls here to
        # exercise BrokenProcessPool / timeout containment without ever
        # firing on the inline fallback run of the same payloads.
        _faults.inject("recourse.chunk")
        skeletons = {
            key: SignatureSkeleton.from_payload(p)
            for key, p in payload["skeletons"].items()
        }
    donor_keys: list[tuple[int, ...]] = []
    donor_chosen: list[dict[str, int]] = []
    for entry in payload.get("donors", ()):
        donor_keys.append(tuple(int(c) for c in entry["key"]))
        donor_chosen.append({a: int(c) for a, c in entry["chosen"].items()})
    results = []
    for item in payload["items"]:
        key = tuple(item["key"])
        donors: list[dict[str, int]] = []
        parametric_exact = (
            payload["mode"] == "exact" and payload["engine"] == "parametric"
        )
        if donor_keys and parametric_exact:
            distances = (np.array(donor_keys) != np.array(key)).sum(axis=1)
            donors = [donor_chosen[int(np.argmin(distances))]]
        result = solve_signature(
            skeletons[key],
            float(item["base_logit"]),
            payload["alpha"],
            payload["max_refinements"],
            mode=payload["mode"],
            engine=payload["engine"],
            node_limit=payload["node_limit"],
            donors=donors,
        )
        results.append(result)
        if result["status"] == "ok" and result["chosen"]:
            donor_keys.append(key)
            donor_chosen.append(result["chosen"])
    if trace_ctx is None:
        return results
    return {
        "results": results,
        "span": {
            "trace": dict(trace_ctx),
            "name": "solve_chunk",
            "started_unix": chunk_started_unix,
            "duration_ms": (time.perf_counter() - chunk_started) * 1e3,
            "tags": {"items": len(results), "pid": os.getpid()},
        },
    }


__all__ = [
    "CHUNK_MAX",
    "CHUNK_MIN",
    "CHUNK_SIZE",
    "ENGINES",
    "FEASIBILITY_TOL",
    "MODES",
    "adaptive_chunk_size",
    "solve_chunk",
    "solve_signature",
]
