"""Point estimation of the LEWIS explanation scores (Proposition 4.2).

Given the black box's input-output table, a causal diagram, and the
monotonicity assumption, the three scores of Definition 3.1 reduce to
observational quantities:

    NEC_x(k)   = [ sum_c Pr(o'|c,x',k) Pr(c|x,k)  - Pr(o'|x,k) ] / Pr(o|x,k)
    SUF_x(k)   = [ sum_c Pr(o|c,x,k)  Pr(c|x',k)  - Pr(o|x',k) ] / Pr(o'|x',k)
    NESUF_x(k) = sum_c ( Pr(o|x,k,c) - Pr(o|x',c,k) ) Pr(c|k)

where ``C ∪ K`` satisfies the backdoor criterion relative to ``X`` and
the algorithm inputs.  When no diagram is supplied LEWIS falls back to
the no-confounding estimators of Section 6 (``C = ∅``).

Two estimation backends are provided:

* ``frequency`` — smoothed empirical frequencies with explicit adjustment
  sums; used for global and contextual scores where conditioning events
  have support.
* ``regression`` — a per-attribute logistic model of
  ``Pr(o | X, nondesc(X))``; used for local scores where the context is
  an individual's full non-descendant assignment (Section 5.2's
  "regressing over test data predictions").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.causal.graph import CausalDiagram
from repro.causal.identification import BackdoorAdjustment
from repro.data.table import Column, Table
from repro.estimation.adjustment import adjusted_probability
from repro.estimation.engine import ContingencyEngine
from repro.estimation.outcome_model import OutcomeProbabilityModel
from repro.estimation.probability import FrequencyEstimator
from repro.utils.lru import ByteBudgetLRU

SCORE_KINDS = ("necessity", "sufficiency", "necessity_sufficiency")

#: default bound on cached per-feature-tuple local regression models; a
#: long-lived tenant probing many attribute subsets refits cold tuples
#: instead of growing without limit.
DEFAULT_MAX_LOCAL_MODELS = 64


@dataclass(frozen=True)
class LocalScoreArrays:
    """Cohort-wide local scores of one attribute vs each alternative value.

    For row ``i`` with current code ``c = current[i]`` and any code
    ``v != c``, entry ``[i, v]`` of each score array holds the local
    score of the ordered contrast ``(max(v, c), min(v, c))`` in the
    row's non-descendant context (entries at ``v == c`` are 0).
    ``probabilities[i, v]`` is the regression backend's
    ``Pr(o | attribute = v, K = k_i)`` — the probe values every score
    derives from.
    """

    attribute: str
    current: np.ndarray
    probabilities: np.ndarray
    necessity: np.ndarray
    sufficiency: np.ndarray
    necessity_sufficiency: np.ndarray

    @property
    def cardinality(self) -> int:
        """Domain size of the attribute."""
        return self.probabilities.shape[1]


@dataclass(frozen=True)
class ScoreTriple:
    """The three explanation scores for one (attribute(s), x, x', k)."""

    necessity: float
    sufficiency: float
    necessity_sufficiency: float

    def as_dict(self) -> dict[str, float]:
        """Return the scores keyed by their full names."""
        return {
            "necessity": self.necessity,
            "sufficiency": self.sufficiency,
            "necessity_sufficiency": self.necessity_sufficiency,
        }


def _clip01(value: float) -> float:
    return float(min(max(value, 0.0), 1.0))


class ScoreEstimator:
    """Estimates NEC / SUF / NESUF from a black box's input-output table.

    Parameters
    ----------
    table:
        Feature columns of the population being explained.
    positive:
        Boolean vector — the black box made the positive decision ``o``.
    diagram:
        Optional causal diagram over the feature attributes. Without it
        the no-confounding estimators are used.
    outcome_name:
        Name for the internal binary outcome column (must not clash with
        a feature name).
    """

    def __init__(
        self,
        table: Table,
        positive: np.ndarray,
        diagram: CausalDiagram | None = None,
        outcome_name: str = "__outcome__",
        max_local_models: int | None = DEFAULT_MAX_LOCAL_MODELS,
    ):
        positive = np.asarray(positive, dtype=bool)
        if len(positive) != len(table):
            raise ValueError("positive vector length must match the table")
        if outcome_name in table:
            raise ValueError(f"{outcome_name!r} clashes with a feature column")
        self._features = table
        self._outcome = outcome_name
        outcome_col = Column.from_codes(
            outcome_name, positive.astype(np.int64), (False, True)
        )
        self._table = table.with_column(outcome_col)
        self._freq = FrequencyEstimator(self._table)
        self._diagram = diagram
        self._adjuster: BackdoorAdjustment | None = None
        if diagram is not None:
            inputs = [n for n in table.names if n in diagram]
            extended = diagram.with_outcome(outcome_name, inputs)
            self._adjuster = BackdoorAdjustment(self._freq, extended, outcome_name)
        self._positive = positive
        # Per-feature-tuple regression models, LRU-bounded so long-lived
        # tenants probing many attribute subsets don't grow unboundedly;
        # stats() mirrors the engine tensor cache's shape.
        self._local_models: ByteBudgetLRU = ByteBudgetLRU(
            max_bytes=None, max_entries=max_local_models
        )

    # -- shared plumbing ---------------------------------------------------

    @property
    def table(self) -> Table:
        """Features plus the binary outcome column."""
        return self._table

    @property
    def frequency_estimator(self) -> FrequencyEstimator:
        """The underlying smoothed frequency estimator."""
        return self._freq

    @property
    def engine(self) -> ContingencyEngine:
        """The vectorized contingency engine backing all frequency queries."""
        return self._freq.engine

    @property
    def diagram(self) -> CausalDiagram | None:
        """The background causal diagram, if any."""
        return self._diagram

    def apply_delta(
        self,
        inserted_features: Table | None = None,
        inserted_positive: np.ndarray | None = None,
        deleted_rows: Sequence[int] | np.ndarray | None = None,
    ) -> int:
        """Fold a row delta into the estimator's table and engine state.

        ``inserted_features`` is a feature-schema :class:`Table` slice and
        ``inserted_positive`` the black box's positive-decision vector for
        those rows (the caller runs the model; this layer never predicts).
        ``deleted_rows`` are indices into the current population.
        Deletions apply first, then insertions append.  The contingency
        engine is maintained incrementally; the per-attribute local
        regression models are dropped (they are data-dependent and
        lazily refit on next use).  Returns the new data version.
        """
        n_ins = len(inserted_features) if inserted_features is not None else 0
        if n_ins:
            if inserted_positive is None or len(inserted_positive) != n_ins:
                raise ValueError(
                    "inserted_positive must align with inserted_features"
                )
            outcome = Column.from_codes(
                self._outcome,
                np.asarray(inserted_positive, dtype=bool).astype(np.int64),
                (False, True),
            )
            inserted_full = inserted_features.with_column(outcome)
        else:
            inserted_full = None
        version = self._freq.apply_delta(inserted_full, deleted_rows)
        self._table = self._freq.table
        self._features = self._table.drop([self._outcome])
        self._positive = self._table.codes(self._outcome).astype(bool)
        self._local_models.clear()
        return version

    def positive_rate(self, conditions: Mapping[str, int] | None = None) -> float:
        """``Pr(o | conditions)`` over the population."""
        return self._freq.probability_or_default(
            {self._outcome: 1}, dict(conditions or {}), default=0.0
        )

    def _adjustment_for(
        self, treatment: Sequence[str], context: Sequence[str]
    ) -> list[str]:
        """Adjustment set C for Prop 4.2, empty under no-confounding."""
        if self._adjuster is None:
            return []
        known = [t for t in treatment if t in self._adjuster.diagram.nodes]
        if len(known) != len(treatment):
            return []
        found = self._adjuster.adjustment_set(
            known, [c for c in context if c in self._adjuster.diagram.nodes]
        )
        return found or []

    # -- frequency-backend scores (global / contextual) ------------------------

    def necessity(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> float:
        """``NEC^{x'}_x(k)`` point estimate, Eq. (19).

        ``treatment`` holds the factual codes ``x`` and ``baseline`` the
        counterfactual codes ``x'`` (same keys).
        """
        context = dict(context or {})
        self._check_pair(treatment, baseline)
        adjustment = self._adjustment_for(list(treatment), list(context))
        denom = self._freq.probability_or_default(
            {self._outcome: 1}, {**treatment, **context}, default=0.0
        )
        if denom <= 0:
            return 0.0
        mixed = adjusted_probability(
            self._freq,
            event={self._outcome: 0},
            treatment=dict(baseline),
            adjustment=adjustment,
            weight_condition=dict(treatment),
            context=context,
        )
        plain = self._freq.probability_or_default(
            {self._outcome: 0}, {**treatment, **context}, default=0.0
        )
        return _clip01((mixed - plain) / denom)

    def sufficiency(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> float:
        """``SUF^{x'}_x(k)`` point estimate, Eq. (20)."""
        context = dict(context or {})
        self._check_pair(treatment, baseline)
        adjustment = self._adjustment_for(list(treatment), list(context))
        denom = self._freq.probability_or_default(
            {self._outcome: 0}, {**baseline, **context}, default=0.0
        )
        if denom <= 0:
            return 0.0
        mixed = adjusted_probability(
            self._freq,
            event={self._outcome: 1},
            treatment=dict(treatment),
            adjustment=adjustment,
            weight_condition=dict(baseline),
            context=context,
        )
        plain = self._freq.probability_or_default(
            {self._outcome: 1}, {**baseline, **context}, default=0.0
        )
        return _clip01((mixed - plain) / denom)

    def necessity_sufficiency(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> float:
        """``NESUF^{x'}_x(k)`` point estimate, Eq. (21)."""
        context = dict(context or {})
        self._check_pair(treatment, baseline)
        adjustment = self._adjustment_for(list(treatment), list(context))
        high = adjusted_probability(
            self._freq,
            event={self._outcome: 1},
            treatment=dict(treatment),
            adjustment=adjustment,
            weight_condition={},
            context=context,
        )
        low = adjusted_probability(
            self._freq,
            event={self._outcome: 1},
            treatment=dict(baseline),
            adjustment=adjustment,
            weight_condition={},
            context=context,
        )
        return _clip01(high - low)

    def scores(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> ScoreTriple:
        """All three scores for one contrast in one call."""
        return ScoreTriple(
            necessity=self.necessity(treatment, baseline, context),
            sufficiency=self.sufficiency(treatment, baseline, context),
            necessity_sufficiency=self.necessity_sufficiency(
                treatment, baseline, context
            ),
        )

    # -- batched frequency-backend scores ---------------------------------------

    def score_arrays(
        self,
        contrasts: Sequence[tuple[Mapping[str, int], Mapping[str, int]]],
        context: Mapping[str, int] | None = None,
        kinds: Sequence[str] = SCORE_KINDS,
    ) -> dict[str, np.ndarray]:
        """Batched scores as ``{kind: array}`` over many contrasts.

        ``contrasts`` is a sequence of ``(treatment, baseline)`` code
        mappings sharing one ``context``.  Contrasts are grouped by their
        treatment attribute set (one backdoor lookup per group) and each
        group's probabilities — plain conditionals and adjustment sums —
        are evaluated in single vectorized engine passes, so N contrasts
        cost a handful of tensor lookups instead of ~8N mask scans.
        ``kinds`` restricts which of the three scores are computed; the
        result arrays align with the input order.
        """
        kinds = tuple(kinds)
        for kind in kinds:
            if kind not in SCORE_KINDS:
                raise ValueError(
                    f"unknown score kind {kind!r}; options: {SCORE_KINDS}"
                )
        context = dict(context or {})
        pairs = [(dict(t), dict(b)) for t, b in contrasts]
        for treatment, baseline in pairs:
            self._check_pair(treatment, baseline)
        out = {kind: np.zeros(len(pairs)) for kind in kinds}
        if not pairs:
            return out
        engine = self.engine
        event_pos = {self._outcome: 1}
        event_neg = {self._outcome: 0}
        groups: dict[tuple[str, ...], list[int]] = {}
        for i, (treatment, _baseline) in enumerate(pairs):
            groups.setdefault(tuple(sorted(treatment)), []).append(i)
        for signature, indices in groups.items():
            adjustment = self._adjustment_for(list(signature), list(context))
            treatments = [pairs[i][0] for i in indices]
            baselines = [pairs[i][1] for i in indices]
            givens_t = [{**t, **context} for t in treatments]
            givens_b = [{**b, **context} for b in baselines]
            rows = np.asarray(indices)
            if "necessity" in kinds:
                denom = engine.probabilities(
                    [event_pos] * len(rows), givens_t, default=0.0
                )
                plain = engine.probabilities(
                    [event_neg] * len(rows), givens_t, default=0.0
                )
                live = denom > 0
                if live.any():
                    keep = np.nonzero(live)[0]
                    mixed = engine.adjusted_probabilities(
                        event_neg,
                        [baselines[j] for j in keep],
                        adjustment,
                        weight_conditions=[treatments[j] for j in keep],
                        context=context,
                    )
                    out["necessity"][rows[keep]] = np.clip(
                        (mixed - plain[keep]) / denom[keep], 0.0, 1.0
                    )
            if "sufficiency" in kinds:
                denom = engine.probabilities(
                    [event_neg] * len(rows), givens_b, default=0.0
                )
                plain = engine.probabilities(
                    [event_pos] * len(rows), givens_b, default=0.0
                )
                live = denom > 0
                if live.any():
                    keep = np.nonzero(live)[0]
                    mixed = engine.adjusted_probabilities(
                        event_pos,
                        [treatments[j] for j in keep],
                        adjustment,
                        weight_conditions=[baselines[j] for j in keep],
                        context=context,
                    )
                    out["sufficiency"][rows[keep]] = np.clip(
                        (mixed - plain[keep]) / denom[keep], 0.0, 1.0
                    )
            if "necessity_sufficiency" in kinds:
                high = engine.adjusted_probabilities(
                    event_pos, treatments, adjustment, context=context
                )
                low = engine.adjusted_probabilities(
                    event_pos, baselines, adjustment, context=context
                )
                out["necessity_sufficiency"][rows] = np.clip(
                    high - low, 0.0, 1.0
                )
        return out

    def scores_batch(
        self,
        contrasts: Sequence[tuple[Mapping[str, int], Mapping[str, int]]],
        context: Mapping[str, int] | None = None,
    ) -> list[ScoreTriple]:
        """All three scores for many ``(treatment, baseline)`` contrasts at once.

        Equivalent to ``[self.scores(t, b, context) for t, b in contrasts]``
        but computed in a handful of vectorized passes over the engine's
        count tensors; results match the scalar loop to machine precision.
        """
        arrays = self.score_arrays(contrasts, context)
        return [
            ScoreTriple(
                necessity=float(arrays["necessity"][i]),
                sufficiency=float(arrays["sufficiency"][i]),
                necessity_sufficiency=float(arrays["necessity_sufficiency"][i]),
            )
            for i in range(len(arrays["necessity"]))
        ]

    @staticmethod
    def _check_pair(treatment: Mapping[str, int], baseline: Mapping[str, int]) -> None:
        if set(treatment) != set(baseline):
            raise ValueError(
                "treatment and baseline must assign the same attributes"
            )
        if not treatment:
            raise ValueError("empty treatment")
        if all(treatment[k] == baseline[k] for k in treatment):
            raise ValueError("treatment and baseline are identical")

    # -- regression backend (local scores) ---------------------------------------

    def _local_model(self, features: tuple[str, ...]) -> OutcomeProbabilityModel:
        model = self._local_models.get(features)
        if model is None:
            from repro.obs import metrics as _obs

            fit_started = time.perf_counter()
            model = OutcomeProbabilityModel(list(features))
            model.fit(self._features, self._positive)
            _obs.get_registry().histogram(
                "repro_local_model_fit_seconds",
                "Wall time to fit one per-feature-tuple regression model.",
            ).observe(time.perf_counter() - fit_started)
            self._local_models.put(features, model, size=1)
        return model

    def local_model_cache_stats(self):
        """Local-model cache counters as the unified ``CacheStats`` schema."""
        return self._local_models.stats_struct("local_model")

    def local_model_stats(self) -> dict:
        """Deprecated dict view of :meth:`local_model_cache_stats`.

        Same stats shape as the engine tensor cache and the service
        result cache, so operators can size ``max_local_models`` from
        observed hit rates.
        """
        return self.local_model_cache_stats().legacy_dict()

    def local_context(self, attribute: str, row_codes: Mapping[str, int]) -> dict[str, int]:
        """The individual's non-descendant assignment ``k`` for ``attribute``.

        With a diagram, descendants of the attribute respond to the
        intervention and are excluded from the context; without one, all
        other attributes are used (the no-confounding reading).
        """
        names = set(self._features.names)
        if self._diagram is not None and attribute in self._diagram:
            keep = self._diagram.non_descendants(attribute) & names
        else:
            keep = names - {attribute}
        return {n: int(row_codes[n]) for n in sorted(keep) if n in row_codes}

    def local_probability(
        self, attribute: str, code: int, context: Mapping[str, int]
    ) -> float:
        """Smoothed ``Pr(o | X=code, K=context)`` via the regression backend."""
        features = tuple([attribute, *sorted(context)])
        model = self._local_model(features)
        return model.probability({attribute: code, **context})

    def local_scores(
        self,
        attribute: str,
        x: int,
        x_prime: int,
        context: Mapping[str, int],
    ) -> ScoreTriple:
        """Local NEC / SUF / NESUF under no-confounding given a full context.

        Conditioning on all non-descendants of ``attribute`` includes all
        of its observed parents, so the no-confounding formulas (Section 6)
        are causally valid here.
        """
        if x == x_prime:
            raise ValueError("x and x_prime must differ")
        p_hi = self.local_probability(attribute, x, context)
        p_lo = self.local_probability(attribute, x_prime, context)
        nec = (1.0 - p_lo - (1.0 - p_hi)) / p_hi if p_hi > 0 else 0.0
        suf = (p_hi - p_lo) / (1.0 - p_lo) if p_lo < 1 else 0.0
        return ScoreTriple(
            necessity=_clip01(nec),
            sufficiency=_clip01(suf),
            necessity_sufficiency=_clip01(p_hi - p_lo),
        )

    # -- batched regression backend (cohort local scores) -------------------------

    def _local_keep_names(self, attribute: str) -> list[str]:
        """Sorted non-descendant attribute names of ``attribute``.

        The attribute-level half of :meth:`local_context` — it depends
        only on the diagram, so the cohort path computes it once per
        attribute instead of re-walking the graph per row.
        """
        names = set(self._features.names)
        if self._diagram is not None and attribute in self._diagram:
            keep = self._diagram.non_descendants(attribute) & names
        else:
            keep = names - {attribute}
        return sorted(keep)

    def _probe_probabilities(
        self,
        model: OutcomeProbabilityModel,
        context_matrix: np.ndarray,
        context_cards: Sequence[int],
        card: int,
    ) -> np.ndarray:
        """``Pr(o | X = v, K = k_i)`` for every row and value, deduplicated.

        ``context_matrix`` holds each row's context codes in the model's
        feature order (sans the attribute itself).  Contexts are
        deduplicated before probing — categorical cohorts collide
        heavily — via a scalar mixed-radix key when the domain product
        fits an int64 (a 1-D ``np.unique``, far cheaper than the
        ``axis=0`` structured sort), falling back to the row-wise unique
        otherwise.  Returns an ``(n, card)`` probability matrix.
        """
        n, width = context_matrix.shape
        if width == 0:
            unique_contexts = np.zeros((1, 0), dtype=np.int64)
            inverse = np.zeros(n, dtype=np.intp)
        else:
            cards = np.asarray(context_cards, dtype=np.int64)
            in_domain = bool(
                (context_matrix >= 0).all() and (context_matrix < cards).all()
            )
            if in_domain and float(np.prod(cards, dtype=np.float64)) < 2**62:
                strides = np.ones(width, dtype=np.int64)
                strides[:-1] = np.cumprod(cards[::-1], dtype=np.int64)[-2::-1]
                keys = context_matrix @ strides
                _, first, inverse = np.unique(
                    keys, return_index=True, return_inverse=True
                )
                unique_contexts = context_matrix[first]
            else:
                unique_contexts, inverse = np.unique(
                    context_matrix, axis=0, return_inverse=True
                )
        u = unique_contexts.shape[0]
        probes = np.empty((u * card, 1 + width), dtype=np.int64)
        probes[:, 0] = np.tile(np.arange(card, dtype=np.int64), u)
        probes[:, 1:] = np.repeat(unique_contexts, card, axis=0)
        answers = model.probability_codes_batch(probes).reshape(u, card)
        return answers[inverse]

    def local_score_arrays(
        self,
        rows: Sequence[Mapping[str, int]],
        attributes: Sequence[str] | None = None,
    ) -> dict[str, LocalScoreArrays]:
        """Cohort-scale local scores: one matrix pass per attribute group.

        ``rows`` are full code assignments (e.g. ``Table.row_codes``
        mappings) of the individuals to explain.  For each attribute the
        cohort's rows are grouped by their non-descendant feature tuple,
        the per-attribute regression is fitted once (cached), every
        ``(value, context)`` probe the scalar path would issue is
        assembled into one integer matrix, *deduplicated* (categorical
        contexts collide heavily across a cohort), and answered in a
        single :meth:`OutcomeProbabilityModel.probability_codes_batch`
        pass.  NEC / SUF / NESUF against each row's current value are
        then pure array arithmetic — results match the scalar
        :meth:`local_scores` loop to machine precision.
        """
        rows = list(rows)
        names = (
            list(attributes)
            if attributes is not None
            else list(self._features.names)
        )
        out: dict[str, LocalScoreArrays] = {}
        n = len(rows)
        # Homogeneous cohorts (every row assigns the same attributes —
        # the explain_local_batch shape) share one codes matrix; rows
        # with differing key sets take the general per-row grouping.
        key_set = set(rows[0]) if rows else set()
        homogeneous = n > 0 and all(
            len(r) == len(key_set) and all(k in key_set for k in r)
            for r in rows
        )
        if homogeneous:
            order = [nm for nm in self._features.names if nm in key_set]
            column_of = {nm: j for j, nm in enumerate(order)}
            codes = np.array(
                [[int(row[nm]) for nm in order] for row in rows],
                dtype=np.int64,
            ).reshape(n, len(order))
        for attribute in names:
            card = self._features.column(attribute).cardinality
            probabilities = np.zeros((n, card))
            keep_names = self._local_keep_names(attribute)
            if homogeneous and attribute in column_of:
                current = codes[:, column_of[attribute]]
                context_names = [nm for nm in keep_names if nm in column_of]
                model = self._local_model((attribute, *context_names))
                context_matrix = codes[
                    :, [column_of[nm] for nm in context_names]
                ]
                context_cards = [
                    self._features.column(nm).cardinality
                    for nm in context_names
                ]
                probabilities = self._probe_probabilities(
                    model, context_matrix, context_cards, card
                )
            else:
                current = np.array(
                    [int(row[attribute]) for row in rows], dtype=np.int64
                )
                groups: dict[tuple[str, ...], list[int]] = {}
                contexts: list[dict[str, int]] = []
                for i, row in enumerate(rows):
                    context = {
                        nm: int(row[nm]) for nm in keep_names if nm in row
                    }
                    contexts.append(context)
                    groups.setdefault(
                        tuple([attribute, *context]), []
                    ).append(i)
                for features, indices in groups.items():
                    model = self._local_model(features)
                    context_names = features[1:]
                    members = np.asarray(indices)
                    context_matrix = np.array(
                        [
                            [contexts[i][nm] for nm in context_names]
                            for i in indices
                        ],
                        dtype=np.int64,
                    ).reshape(len(indices), len(context_names))
                    context_cards = [
                        self._features.column(nm).cardinality
                        for nm in context_names
                    ]
                    probabilities[members] = self._probe_probabilities(
                        model, context_matrix, context_cards, card
                    )
            values = np.arange(card, dtype=np.int64)
            p_cur = probabilities[np.arange(n), current][:, None]
            raising = values[None, :] > current[:, None]
            p_hi = np.where(raising, probabilities, p_cur)
            p_lo = np.where(raising, p_cur, probabilities)
            with np.errstate(divide="ignore", invalid="ignore"):
                necessity = np.where(
                    p_hi > 0,
                    (1.0 - p_lo - (1.0 - p_hi)) / np.where(p_hi > 0, p_hi, 1.0),
                    0.0,
                )
                sufficiency = np.where(
                    p_lo < 1,
                    (p_hi - p_lo) / np.where(p_lo < 1, 1.0 - p_lo, 1.0),
                    0.0,
                )
            same = values[None, :] == current[:, None]
            necessity = np.where(same, 0.0, np.clip(necessity, 0.0, 1.0))
            sufficiency = np.where(same, 0.0, np.clip(sufficiency, 0.0, 1.0))
            nesuf = np.where(same, 0.0, np.clip(p_hi - p_lo, 0.0, 1.0))
            out[attribute] = LocalScoreArrays(
                attribute=attribute,
                current=current,
                probabilities=probabilities,
                necessity=necessity,
                sufficiency=sufficiency,
                necessity_sufficiency=nesuf,
            )
        return out
