"""Point estimation of the LEWIS explanation scores (Proposition 4.2).

Given the black box's input-output table, a causal diagram, and the
monotonicity assumption, the three scores of Definition 3.1 reduce to
observational quantities:

    NEC_x(k)   = [ sum_c Pr(o'|c,x',k) Pr(c|x,k)  - Pr(o'|x,k) ] / Pr(o|x,k)
    SUF_x(k)   = [ sum_c Pr(o|c,x,k)  Pr(c|x',k)  - Pr(o|x',k) ] / Pr(o'|x',k)
    NESUF_x(k) = sum_c ( Pr(o|x,k,c) - Pr(o|x',c,k) ) Pr(c|k)

where ``C ∪ K`` satisfies the backdoor criterion relative to ``X`` and
the algorithm inputs.  When no diagram is supplied LEWIS falls back to
the no-confounding estimators of Section 6 (``C = ∅``).

Two estimation backends are provided:

* ``frequency`` — smoothed empirical frequencies with explicit adjustment
  sums; used for global and contextual scores where conditioning events
  have support.
* ``regression`` — a per-attribute logistic model of
  ``Pr(o | X, nondesc(X))``; used for local scores where the context is
  an individual's full non-descendant assignment (Section 5.2's
  "regressing over test data predictions").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.causal.graph import CausalDiagram
from repro.causal.identification import BackdoorAdjustment
from repro.data.table import Column, Table
from repro.estimation.adjustment import adjusted_probability
from repro.estimation.engine import ContingencyEngine
from repro.estimation.outcome_model import OutcomeProbabilityModel
from repro.estimation.probability import FrequencyEstimator

SCORE_KINDS = ("necessity", "sufficiency", "necessity_sufficiency")


@dataclass(frozen=True)
class ScoreTriple:
    """The three explanation scores for one (attribute(s), x, x', k)."""

    necessity: float
    sufficiency: float
    necessity_sufficiency: float

    def as_dict(self) -> dict[str, float]:
        """Return the scores keyed by their full names."""
        return {
            "necessity": self.necessity,
            "sufficiency": self.sufficiency,
            "necessity_sufficiency": self.necessity_sufficiency,
        }


def _clip01(value: float) -> float:
    return float(min(max(value, 0.0), 1.0))


class ScoreEstimator:
    """Estimates NEC / SUF / NESUF from a black box's input-output table.

    Parameters
    ----------
    table:
        Feature columns of the population being explained.
    positive:
        Boolean vector — the black box made the positive decision ``o``.
    diagram:
        Optional causal diagram over the feature attributes. Without it
        the no-confounding estimators are used.
    outcome_name:
        Name for the internal binary outcome column (must not clash with
        a feature name).
    """

    def __init__(
        self,
        table: Table,
        positive: np.ndarray,
        diagram: CausalDiagram | None = None,
        outcome_name: str = "__outcome__",
    ):
        positive = np.asarray(positive, dtype=bool)
        if len(positive) != len(table):
            raise ValueError("positive vector length must match the table")
        if outcome_name in table:
            raise ValueError(f"{outcome_name!r} clashes with a feature column")
        self._features = table
        self._outcome = outcome_name
        outcome_col = Column.from_codes(
            outcome_name, positive.astype(np.int64), (False, True)
        )
        self._table = table.with_column(outcome_col)
        self._freq = FrequencyEstimator(self._table)
        self._diagram = diagram
        self._adjuster: BackdoorAdjustment | None = None
        if diagram is not None:
            inputs = [n for n in table.names if n in diagram]
            extended = diagram.with_outcome(outcome_name, inputs)
            self._adjuster = BackdoorAdjustment(self._freq, extended, outcome_name)
        self._positive = positive
        self._local_models: dict[tuple[str, ...], OutcomeProbabilityModel] = {}

    # -- shared plumbing ---------------------------------------------------

    @property
    def table(self) -> Table:
        """Features plus the binary outcome column."""
        return self._table

    @property
    def frequency_estimator(self) -> FrequencyEstimator:
        """The underlying smoothed frequency estimator."""
        return self._freq

    @property
    def engine(self) -> ContingencyEngine:
        """The vectorized contingency engine backing all frequency queries."""
        return self._freq.engine

    @property
    def diagram(self) -> CausalDiagram | None:
        """The background causal diagram, if any."""
        return self._diagram

    def apply_delta(
        self,
        inserted_features: Table | None = None,
        inserted_positive: np.ndarray | None = None,
        deleted_rows: Sequence[int] | np.ndarray | None = None,
    ) -> int:
        """Fold a row delta into the estimator's table and engine state.

        ``inserted_features`` is a feature-schema :class:`Table` slice and
        ``inserted_positive`` the black box's positive-decision vector for
        those rows (the caller runs the model; this layer never predicts).
        ``deleted_rows`` are indices into the current population.
        Deletions apply first, then insertions append.  The contingency
        engine is maintained incrementally; the per-attribute local
        regression models are dropped (they are data-dependent and
        lazily refit on next use).  Returns the new data version.
        """
        n_ins = len(inserted_features) if inserted_features is not None else 0
        if n_ins:
            if inserted_positive is None or len(inserted_positive) != n_ins:
                raise ValueError(
                    "inserted_positive must align with inserted_features"
                )
            outcome = Column.from_codes(
                self._outcome,
                np.asarray(inserted_positive, dtype=bool).astype(np.int64),
                (False, True),
            )
            inserted_full = inserted_features.with_column(outcome)
        else:
            inserted_full = None
        version = self._freq.apply_delta(inserted_full, deleted_rows)
        self._table = self._freq.table
        self._features = self._table.drop([self._outcome])
        self._positive = self._table.codes(self._outcome).astype(bool)
        self._local_models.clear()
        return version

    def positive_rate(self, conditions: Mapping[str, int] | None = None) -> float:
        """``Pr(o | conditions)`` over the population."""
        return self._freq.probability_or_default(
            {self._outcome: 1}, dict(conditions or {}), default=0.0
        )

    def _adjustment_for(
        self, treatment: Sequence[str], context: Sequence[str]
    ) -> list[str]:
        """Adjustment set C for Prop 4.2, empty under no-confounding."""
        if self._adjuster is None:
            return []
        known = [t for t in treatment if t in self._adjuster.diagram.nodes]
        if len(known) != len(treatment):
            return []
        found = self._adjuster.adjustment_set(
            known, [c for c in context if c in self._adjuster.diagram.nodes]
        )
        return found or []

    # -- frequency-backend scores (global / contextual) ------------------------

    def necessity(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> float:
        """``NEC^{x'}_x(k)`` point estimate, Eq. (19).

        ``treatment`` holds the factual codes ``x`` and ``baseline`` the
        counterfactual codes ``x'`` (same keys).
        """
        context = dict(context or {})
        self._check_pair(treatment, baseline)
        adjustment = self._adjustment_for(list(treatment), list(context))
        denom = self._freq.probability_or_default(
            {self._outcome: 1}, {**treatment, **context}, default=0.0
        )
        if denom <= 0:
            return 0.0
        mixed = adjusted_probability(
            self._freq,
            event={self._outcome: 0},
            treatment=dict(baseline),
            adjustment=adjustment,
            weight_condition=dict(treatment),
            context=context,
        )
        plain = self._freq.probability_or_default(
            {self._outcome: 0}, {**treatment, **context}, default=0.0
        )
        return _clip01((mixed - plain) / denom)

    def sufficiency(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> float:
        """``SUF^{x'}_x(k)`` point estimate, Eq. (20)."""
        context = dict(context or {})
        self._check_pair(treatment, baseline)
        adjustment = self._adjustment_for(list(treatment), list(context))
        denom = self._freq.probability_or_default(
            {self._outcome: 0}, {**baseline, **context}, default=0.0
        )
        if denom <= 0:
            return 0.0
        mixed = adjusted_probability(
            self._freq,
            event={self._outcome: 1},
            treatment=dict(treatment),
            adjustment=adjustment,
            weight_condition=dict(baseline),
            context=context,
        )
        plain = self._freq.probability_or_default(
            {self._outcome: 1}, {**baseline, **context}, default=0.0
        )
        return _clip01((mixed - plain) / denom)

    def necessity_sufficiency(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> float:
        """``NESUF^{x'}_x(k)`` point estimate, Eq. (21)."""
        context = dict(context or {})
        self._check_pair(treatment, baseline)
        adjustment = self._adjustment_for(list(treatment), list(context))
        high = adjusted_probability(
            self._freq,
            event={self._outcome: 1},
            treatment=dict(treatment),
            adjustment=adjustment,
            weight_condition={},
            context=context,
        )
        low = adjusted_probability(
            self._freq,
            event={self._outcome: 1},
            treatment=dict(baseline),
            adjustment=adjustment,
            weight_condition={},
            context=context,
        )
        return _clip01(high - low)

    def scores(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> ScoreTriple:
        """All three scores for one contrast in one call."""
        return ScoreTriple(
            necessity=self.necessity(treatment, baseline, context),
            sufficiency=self.sufficiency(treatment, baseline, context),
            necessity_sufficiency=self.necessity_sufficiency(
                treatment, baseline, context
            ),
        )

    # -- batched frequency-backend scores ---------------------------------------

    def score_arrays(
        self,
        contrasts: Sequence[tuple[Mapping[str, int], Mapping[str, int]]],
        context: Mapping[str, int] | None = None,
        kinds: Sequence[str] = SCORE_KINDS,
    ) -> dict[str, np.ndarray]:
        """Batched scores as ``{kind: array}`` over many contrasts.

        ``contrasts`` is a sequence of ``(treatment, baseline)`` code
        mappings sharing one ``context``.  Contrasts are grouped by their
        treatment attribute set (one backdoor lookup per group) and each
        group's probabilities — plain conditionals and adjustment sums —
        are evaluated in single vectorized engine passes, so N contrasts
        cost a handful of tensor lookups instead of ~8N mask scans.
        ``kinds`` restricts which of the three scores are computed; the
        result arrays align with the input order.
        """
        kinds = tuple(kinds)
        for kind in kinds:
            if kind not in SCORE_KINDS:
                raise ValueError(
                    f"unknown score kind {kind!r}; options: {SCORE_KINDS}"
                )
        context = dict(context or {})
        pairs = [(dict(t), dict(b)) for t, b in contrasts]
        for treatment, baseline in pairs:
            self._check_pair(treatment, baseline)
        out = {kind: np.zeros(len(pairs)) for kind in kinds}
        if not pairs:
            return out
        engine = self.engine
        event_pos = {self._outcome: 1}
        event_neg = {self._outcome: 0}
        groups: dict[tuple[str, ...], list[int]] = {}
        for i, (treatment, _baseline) in enumerate(pairs):
            groups.setdefault(tuple(sorted(treatment)), []).append(i)
        for signature, indices in groups.items():
            adjustment = self._adjustment_for(list(signature), list(context))
            treatments = [pairs[i][0] for i in indices]
            baselines = [pairs[i][1] for i in indices]
            givens_t = [{**t, **context} for t in treatments]
            givens_b = [{**b, **context} for b in baselines]
            rows = np.asarray(indices)
            if "necessity" in kinds:
                denom = engine.probabilities(
                    [event_pos] * len(rows), givens_t, default=0.0
                )
                plain = engine.probabilities(
                    [event_neg] * len(rows), givens_t, default=0.0
                )
                live = denom > 0
                if live.any():
                    keep = np.nonzero(live)[0]
                    mixed = engine.adjusted_probabilities(
                        event_neg,
                        [baselines[j] for j in keep],
                        adjustment,
                        weight_conditions=[treatments[j] for j in keep],
                        context=context,
                    )
                    out["necessity"][rows[keep]] = np.clip(
                        (mixed - plain[keep]) / denom[keep], 0.0, 1.0
                    )
            if "sufficiency" in kinds:
                denom = engine.probabilities(
                    [event_neg] * len(rows), givens_b, default=0.0
                )
                plain = engine.probabilities(
                    [event_pos] * len(rows), givens_b, default=0.0
                )
                live = denom > 0
                if live.any():
                    keep = np.nonzero(live)[0]
                    mixed = engine.adjusted_probabilities(
                        event_pos,
                        [treatments[j] for j in keep],
                        adjustment,
                        weight_conditions=[baselines[j] for j in keep],
                        context=context,
                    )
                    out["sufficiency"][rows[keep]] = np.clip(
                        (mixed - plain[keep]) / denom[keep], 0.0, 1.0
                    )
            if "necessity_sufficiency" in kinds:
                high = engine.adjusted_probabilities(
                    event_pos, treatments, adjustment, context=context
                )
                low = engine.adjusted_probabilities(
                    event_pos, baselines, adjustment, context=context
                )
                out["necessity_sufficiency"][rows] = np.clip(
                    high - low, 0.0, 1.0
                )
        return out

    def scores_batch(
        self,
        contrasts: Sequence[tuple[Mapping[str, int], Mapping[str, int]]],
        context: Mapping[str, int] | None = None,
    ) -> list[ScoreTriple]:
        """All three scores for many ``(treatment, baseline)`` contrasts at once.

        Equivalent to ``[self.scores(t, b, context) for t, b in contrasts]``
        but computed in a handful of vectorized passes over the engine's
        count tensors; results match the scalar loop to machine precision.
        """
        arrays = self.score_arrays(contrasts, context)
        return [
            ScoreTriple(
                necessity=float(arrays["necessity"][i]),
                sufficiency=float(arrays["sufficiency"][i]),
                necessity_sufficiency=float(arrays["necessity_sufficiency"][i]),
            )
            for i in range(len(arrays["necessity"]))
        ]

    @staticmethod
    def _check_pair(treatment: Mapping[str, int], baseline: Mapping[str, int]) -> None:
        if set(treatment) != set(baseline):
            raise ValueError(
                "treatment and baseline must assign the same attributes"
            )
        if not treatment:
            raise ValueError("empty treatment")
        if all(treatment[k] == baseline[k] for k in treatment):
            raise ValueError("treatment and baseline are identical")

    # -- regression backend (local scores) ---------------------------------------

    def _local_model(self, features: tuple[str, ...]) -> OutcomeProbabilityModel:
        if features not in self._local_models:
            model = OutcomeProbabilityModel(list(features))
            model.fit(self._features, self._positive)
            self._local_models[features] = model
        return self._local_models[features]

    def local_context(self, attribute: str, row_codes: Mapping[str, int]) -> dict[str, int]:
        """The individual's non-descendant assignment ``k`` for ``attribute``.

        With a diagram, descendants of the attribute respond to the
        intervention and are excluded from the context; without one, all
        other attributes are used (the no-confounding reading).
        """
        names = set(self._features.names)
        if self._diagram is not None and attribute in self._diagram:
            keep = self._diagram.non_descendants(attribute) & names
        else:
            keep = names - {attribute}
        return {n: int(row_codes[n]) for n in sorted(keep) if n in row_codes}

    def local_probability(
        self, attribute: str, code: int, context: Mapping[str, int]
    ) -> float:
        """Smoothed ``Pr(o | X=code, K=context)`` via the regression backend."""
        features = tuple([attribute, *sorted(context)])
        model = self._local_model(features)
        return model.probability({attribute: code, **context})

    def local_scores(
        self,
        attribute: str,
        x: int,
        x_prime: int,
        context: Mapping[str, int],
    ) -> ScoreTriple:
        """Local NEC / SUF / NESUF under no-confounding given a full context.

        Conditioning on all non-descendants of ``attribute`` includes all
        of its observed parents, so the no-confounding formulas (Section 6)
        are causally valid here.
        """
        if x == x_prime:
            raise ValueError("x and x_prime must differ")
        p_hi = self.local_probability(attribute, x, context)
        p_lo = self.local_probability(attribute, x_prime, context)
        nec = (1.0 - p_lo - (1.0 - p_hi)) / p_hi if p_hi > 0 else 0.0
        suf = (p_hi - p_lo) / (1.0 - p_lo) if p_lo < 1 else 0.0
        return ScoreTriple(
            necessity=_clip01(nec),
            sufficiency=_clip01(suf),
            necessity_sufficiency=_clip01(p_hi - p_lo),
        )
