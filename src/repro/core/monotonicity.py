"""Monotonicity diagnostics (Proposition 4.2's key assumption).

Proposition 4.2's point estimates require the algorithm to be monotone
relative to the contrasted values: raising ``X`` never flips a positive
decision to negative.  With only observational data the assumption can
be *probed* by checking that ``Pr(o | x, k)`` is non-decreasing in the
attribute's ordinal codes; with the generating SCM in hand the exact
violation measure ``Λ_viol = Pr(o'_{X<-x} | o, x')`` of Section 5.5 is
available through
:meth:`repro.causal.ground_truth.GroundTruthScores.monotonicity_violation`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.data.table import Table


def empirical_monotonicity_violation(
    table: Table,
    positive: np.ndarray,
    attribute: str,
    context: Mapping[str, int] | None = None,
) -> float:
    """Largest observed drop of ``Pr(o | x, k)`` along the value order.

    Returns 0 when the conditional positive rate is non-decreasing in the
    attribute's codes (consistent with monotonicity); positive values
    report the biggest step-down between consecutive supported values —
    an observational symptom of violation, not the exact ``Λ_viol``.
    """
    positive = np.asarray(positive, dtype=bool)
    if len(positive) != len(table):
        raise ValueError("positive vector length must match the table")
    mask = np.ones(len(table), dtype=bool)
    for name, code in (context or {}).items():
        mask &= table.codes(name) == int(code)
    codes = table.codes(attribute)
    rates = []
    for code in range(table.column(attribute).cardinality):
        members = mask & (codes == code)
        if members.any():
            rates.append(float(positive[members].mean()))
    worst = 0.0
    for prev, nxt in zip(rates[:-1], rates[1:]):
        worst = max(worst, prev - nxt)
    return worst


def monotonicity_from_counts(
    positives: np.ndarray, totals: np.ndarray
) -> tuple[float, int]:
    """``(worst step-down, violating step count)`` from per-code counts.

    The streaming-monitor form of
    :func:`empirical_monotonicity_violation`: fed from the engine's
    incrementally maintained ``(attribute, outcome)`` count tensor
    instead of O(n) mask scans, and bit-identical to it on the worst
    step (both reduce to the same integer-count divisions over the
    supported codes, in code order). Additionally counts how many
    consecutive supported steps decrease — the violation counter a
    drift detector watches.
    """
    rates = [
        p / t for p, t in zip(positives.tolist(), totals.tolist()) if t > 0
    ]
    worst, violations = 0.0, 0
    for prev, nxt in zip(rates[:-1], rates[1:]):
        drop = prev - nxt
        if drop > 0:
            violations += 1
            if drop > worst:
                worst = drop
    return float(worst), violations
