"""Counterfactual-fairness auditing (Section 6 of the paper).

The paper shows counterfactual fairness (Kusner et al. 2017) is captured
by the explanation scores: an algorithm is counterfactually fair w.r.t.
a protected attribute iff the attribute's sufficiency score AND
necessity score are both zero.  :class:`FairnessAuditor` packages that
check, reports per-contrast and per-context score tables, and computes
the classical observational disparity for reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.lewis import Lewis


def group_outcome_counts(
    engine, attribute: str, outcome: str = "__outcome__"
) -> tuple[np.ndarray, np.ndarray]:
    """``(positives, totals)`` per code of ``attribute`` from count tensors.

    Reads the engine's incrementally maintained ``(attribute, outcome)``
    contingency tensor instead of scanning rows — the O(cardinality)
    primitive behind streaming fairness monitors. The tensor axes follow
    the engine's sorted-name order; this normalises to
    ``(attribute, outcome)``.
    """
    names = tuple(sorted((attribute, outcome)))
    tensor = np.asarray(engine.tensor(names))
    if names[0] == outcome:
        tensor = tensor.T
    return tensor[:, 1], tensor.sum(axis=1)


def demographic_disparity_from_counts(
    positives: np.ndarray, totals: np.ndarray
) -> float:
    """Largest positive-rate gap across supported groups, from counts.

    Bit-identical to :meth:`FairnessAuditor.demographic_disparity` (an
    O(n) mask scan): both reduce to the same integer-count divisions.
    """
    rates = [
        p / t for p, t in zip(positives.tolist(), totals.tolist()) if t > 0
    ]
    if len(rates) < 2:
        return 0.0
    return float(max(rates) - min(rates))


@dataclass(frozen=True)
class FairnessVerdict:
    """Audit result for one protected attribute.

    ``necessity`` / ``sufficiency`` are the maxima over all ordered value
    pairs of the protected attribute; the algorithm is counterfactually
    fair iff both are (statistically) zero.
    """

    attribute: str
    necessity: float
    sufficiency: float
    worst_pair: tuple[Any, Any] | None
    demographic_disparity: float
    tolerance: float

    @property
    def is_counterfactually_fair(self) -> bool:
        """Both causal scores vanish (up to ``tolerance``)."""
        return self.necessity <= self.tolerance and self.sufficiency <= self.tolerance

    def summary(self) -> str:
        """One-line human-readable verdict."""
        status = (
            "counterfactually FAIR"
            if self.is_counterfactually_fair
            else "NOT counterfactually fair"
        )
        detail = (
            f"NEC={self.necessity:.3f}, SUF={self.sufficiency:.3f}, "
            f"observational disparity={self.demographic_disparity:+.3f}"
        )
        return f"{self.attribute}: {status} ({detail})"


@dataclass
class ContextualDisparity:
    """Score gap of an attribute between two sub-populations."""

    attribute: str
    context_a: dict[str, Any]
    context_b: dict[str, Any]
    sufficiency_gap: float
    necessity_gap: float


class FairnessAuditor:
    """Audits a fitted :class:`~repro.core.lewis.Lewis` explainer."""

    def __init__(self, lewis: Lewis, tolerance: float = 0.05):
        if not 0.0 <= tolerance < 1.0:
            raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
        self._lewis = lewis
        self.tolerance = float(tolerance)

    def audit(self, protected: str) -> FairnessVerdict:
        """Counterfactual-fairness verdict for one protected attribute."""
        lewis = self._lewis
        col = lewis.data.column(protected)
        best_nec, best_suf = 0.0, 0.0
        worst_pair: tuple[Any, Any] | None = None
        for hi in range(col.cardinality):
            for lo in range(hi):
                triple = lewis.estimator.scores({protected: hi}, {protected: lo})
                if max(triple.necessity, triple.sufficiency) > max(best_nec, best_suf):
                    worst_pair = (col.categories[hi], col.categories[lo])
                best_nec = max(best_nec, triple.necessity)
                best_suf = max(best_suf, triple.sufficiency)
        return FairnessVerdict(
            attribute=protected,
            necessity=best_nec,
            sufficiency=best_suf,
            worst_pair=worst_pair,
            demographic_disparity=self.demographic_disparity(protected),
            tolerance=self.tolerance,
        )

    def audit_all(self, protected: Sequence[str]) -> list[FairnessVerdict]:
        """Audit several protected attributes."""
        return [self.audit(p) for p in protected]

    def demographic_disparity(self, protected: str) -> float:
        """Largest gap in positive-decision rates across the groups.

        Purely observational (no causal claim); reported alongside the
        causal verdict because the two can disagree — a fair algorithm
        can show disparity through correlated non-protected attributes,
        and vice versa.
        """
        lewis = self._lewis
        codes = lewis.data.codes(protected)
        rates = []
        for code in range(lewis.data.column(protected).cardinality):
            members = codes == code
            if members.any():
                rates.append(float(lewis.positive[members].mean()))
        if len(rates) < 2:
            return 0.0
        return max(rates) - min(rates)

    def contextual_disparity(
        self,
        attribute: str,
        context_a: Mapping[str, Any],
        context_b: Mapping[str, Any],
    ) -> ContextualDisparity:
        """Figure-4-style gap: how differently an intervention lands.

        Computes the attribute's best-pair sufficiency/necessity inside
        each context and reports the (a - b) gaps — e.g. the COMPAS
        experiments contrast ``{"race": "White"}`` vs ``{"race": "Black"}``.
        """
        lewis = self._lewis
        score_a = lewis.explain_context(dict(context_a), attributes=[attribute]).score_of(
            attribute
        )
        score_b = lewis.explain_context(dict(context_b), attributes=[attribute]).score_of(
            attribute
        )
        return ContextualDisparity(
            attribute=attribute,
            context_a=dict(context_a),
            context_b=dict(context_b),
            sufficiency_gap=score_a.sufficiency - score_b.sufficiency,
            necessity_gap=score_a.necessity - score_b.necessity,
        )
