"""Fréchet-style bounds on the explanation scores (Proposition 4.1).

These bounds require only interventional quantities ``Pr(o | do(x), k)``
(identified via the backdoor criterion) plus joint observational
probabilities, and hold *without* the monotonicity assumption:

    NEC:   max(0, [P(o,x|k)+P(o,x'|k)-P(o|do(x'),k)] / P(o,x|k))
           <= NEC <= min([P(o'|do(x'),k)-P(o',x'|k)] / P(o,x|k), 1)

    SUF:   max(0, [P(o',x|k)+P(o',x'|k)-P(o'|do(x),k)] / P(o',x'|k))
           <= SUF <= min([P(o|do(x),k)-P(o,x|k)] / P(o',x'|k), 1)

    NESUF: max(0, P(o|do(x),k)-P(o|do(x'),k))
           <= NESUF <= min(P(o|do(x),k), P(o'|do(x'),k))

The NESUF lower bound is the (conditional) causal effect of X on O, which
is the bridge to Proposition 4.4's zero-score characterisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.scores import ScoreEstimator
from repro.estimation.adjustment import adjusted_probabilities


@dataclass(frozen=True)
class ScoreBounds:
    """Lower/upper bounds for the three scores of one contrast."""

    necessity: tuple[float, float]
    sufficiency: tuple[float, float]
    necessity_sufficiency: tuple[float, float]

    def contains(self, necessity: float, sufficiency: float, nesuf: float, tol: float = 1e-9) -> bool:
        """Check whether a score triple lies within all three intervals."""
        lo, hi = self.necessity
        if not lo - tol <= necessity <= hi + tol:
            return False
        lo, hi = self.sufficiency
        if not lo - tol <= sufficiency <= hi + tol:
            return False
        lo, hi = self.necessity_sufficiency
        return lo - tol <= nesuf <= hi + tol


def _interval(lower: float, upper: float) -> tuple[float, float]:
    lower = max(0.0, min(lower, 1.0))
    upper = max(0.0, min(upper, 1.0))
    if lower > upper:
        # Sampling noise can invert degenerate intervals; collapse them.
        lower = upper = (lower + upper) / 2.0
    return (lower, upper)


class BoundsEstimator:
    """Computes Proposition 4.1 bounds on top of a :class:`ScoreEstimator`."""

    def __init__(self, estimator: ScoreEstimator):
        self._est = estimator

    def bounds(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> ScoreBounds:
        """Proposition 4.1 bounds for the contrast ``treatment`` vs ``baseline``."""
        return self.bounds_batch([(treatment, baseline)], context)[0]

    def bounds_batch(
        self,
        contrasts: Sequence[tuple[Mapping[str, int], Mapping[str, int]]],
        context: Mapping[str, int] | None = None,
    ) -> list[ScoreBounds]:
        """Proposition 4.1 bounds for many contrasts in one vectorized pass.

        Contrasts are grouped by their attribute signature; each group's
        interventional terms ``Pr(o | do(·), k)`` are evaluated as one
        batched adjustment sum and the joint observational terms as one
        batched probability query, so N contrasts cost a handful of
        tensor lookups.  Results align with the input order and match
        :meth:`bounds` exactly.
        """
        context = dict(context or {})
        pairs = [(dict(t), dict(b)) for t, b in contrasts]
        engine = self._est.engine
        outcome = self._est._outcome
        out: list[ScoreBounds | None] = [None] * len(pairs)
        groups: dict[tuple, list[int]] = {}
        for i, (treatment, baseline) in enumerate(pairs):
            key = (tuple(sorted(treatment)), tuple(sorted(baseline)))
            groups.setdefault(key, []).append(i)
        for (sig_t, sig_b), indices in groups.items():
            treatments = [pairs[i][0] for i in indices]
            baselines = [pairs[i][1] for i in indices]
            adj_t = self._est._adjustment_for(list(sig_t), list(context))
            adj_b = self._est._adjustment_for(list(sig_b), list(context))
            do_o_x = adjusted_probabilities(
                engine, {outcome: 1}, treatments, adj_t, context=context
            )
            do_o_xp = adjusted_probabilities(
                engine, {outcome: 1}, baselines, adj_b, context=context
            )
            joints = engine.probabilities(
                [{outcome: 1, **t} for t in treatments]
                + [{outcome: 1, **b} for b in baselines]
                + [{outcome: 0, **t} for t in treatments]
                + [{outcome: 0, **b} for b in baselines],
                [context] * (4 * len(indices)),
                default=0.0,
            ).reshape(4, len(indices))
            p_o_x, p_o_xp, p_no_x, p_no_xp = joints
            for j, i in enumerate(indices):
                out[i] = self._assemble(
                    float(do_o_x[j]),
                    float(do_o_xp[j]),
                    float(p_o_x[j]),
                    float(p_o_xp[j]),
                    float(p_no_x[j]),
                    float(p_no_xp[j]),
                )
        return list(out)

    @staticmethod
    def _assemble(
        do_o_x: float,
        do_o_xp: float,
        p_o_x: float,
        p_o_xp: float,
        p_no_x: float,
        p_no_xp: float,
    ) -> ScoreBounds:
        """Fold the six estimated quantities into the three intervals."""
        do_no_x = 1.0 - do_o_x
        do_no_xp = 1.0 - do_o_xp

        if p_o_x > 0:
            nec = _interval(
                (p_o_x + p_o_xp - do_o_xp) / p_o_x,
                (do_no_xp - p_no_xp) / p_o_x,
            )
        else:
            nec = (0.0, 1.0)

        if p_no_xp > 0:
            suf = _interval(
                (p_no_x + p_no_xp - do_no_x) / p_no_xp,
                (do_o_x - p_o_x) / p_no_xp,
            )
        else:
            suf = (0.0, 1.0)

        nesuf = _interval(do_o_x - do_o_xp, min(do_o_x, do_no_xp))
        return ScoreBounds(necessity=nec, sufficiency=suf, necessity_sufficiency=nesuf)
