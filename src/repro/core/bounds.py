"""Fréchet-style bounds on the explanation scores (Proposition 4.1).

These bounds require only interventional quantities ``Pr(o | do(x), k)``
(identified via the backdoor criterion) plus joint observational
probabilities, and hold *without* the monotonicity assumption:

    NEC:   max(0, [P(o,x|k)+P(o,x'|k)-P(o|do(x'),k)] / P(o,x|k))
           <= NEC <= min([P(o'|do(x'),k)-P(o',x'|k)] / P(o,x|k), 1)

    SUF:   max(0, [P(o',x|k)+P(o',x'|k)-P(o'|do(x),k)] / P(o',x'|k))
           <= SUF <= min([P(o|do(x),k)-P(o,x|k)] / P(o',x'|k), 1)

    NESUF: max(0, P(o|do(x),k)-P(o|do(x'),k))
           <= NESUF <= min(P(o|do(x),k), P(o'|do(x'),k))

The NESUF lower bound is the (conditional) causal effect of X on O, which
is the bridge to Proposition 4.4's zero-score characterisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.scores import ScoreEstimator
from repro.estimation.adjustment import adjusted_probability


@dataclass(frozen=True)
class ScoreBounds:
    """Lower/upper bounds for the three scores of one contrast."""

    necessity: tuple[float, float]
    sufficiency: tuple[float, float]
    necessity_sufficiency: tuple[float, float]

    def contains(self, necessity: float, sufficiency: float, nesuf: float, tol: float = 1e-9) -> bool:
        """Check whether a score triple lies within all three intervals."""
        lo, hi = self.necessity
        if not lo - tol <= necessity <= hi + tol:
            return False
        lo, hi = self.sufficiency
        if not lo - tol <= sufficiency <= hi + tol:
            return False
        lo, hi = self.necessity_sufficiency
        return lo - tol <= nesuf <= hi + tol


def _interval(lower: float, upper: float) -> tuple[float, float]:
    lower = max(0.0, min(lower, 1.0))
    upper = max(0.0, min(upper, 1.0))
    if lower > upper:
        # Sampling noise can invert degenerate intervals; collapse them.
        lower = upper = (lower + upper) / 2.0
    return (lower, upper)


class BoundsEstimator:
    """Computes Proposition 4.1 bounds on top of a :class:`ScoreEstimator`."""

    def __init__(self, estimator: ScoreEstimator):
        self._est = estimator

    def _do(self, outcome_code: int, treatment: Mapping[str, int], context: Mapping[str, int]) -> float:
        """``Pr(O=outcome_code | do(treatment), context)`` via backdoor adjustment."""
        adjustment = self._est._adjustment_for(list(treatment), list(context))
        return adjusted_probability(
            self._est.frequency_estimator,
            event={self._est._outcome: outcome_code},
            treatment=dict(treatment),
            adjustment=adjustment,
            weight_condition={},
            context=dict(context),
        )

    def _joint(self, outcome_code: int, values: Mapping[str, int], context: Mapping[str, int]) -> float:
        """``Pr(O=outcome_code, X=values | context)``."""
        return self._est.frequency_estimator.probability_or_default(
            {self._est._outcome: outcome_code, **values}, dict(context), default=0.0
        )

    def bounds(
        self,
        treatment: Mapping[str, int],
        baseline: Mapping[str, int],
        context: Mapping[str, int] | None = None,
    ) -> ScoreBounds:
        """Proposition 4.1 bounds for the contrast ``treatment`` vs ``baseline``."""
        context = dict(context or {})
        do_o_x = self._do(1, treatment, context)
        do_o_xp = self._do(1, baseline, context)
        do_no_x = 1.0 - do_o_x
        do_no_xp = 1.0 - do_o_xp
        p_o_x = self._joint(1, treatment, context)
        p_o_xp = self._joint(1, baseline, context)
        p_no_x = self._joint(0, treatment, context)
        p_no_xp = self._joint(0, baseline, context)

        if p_o_x > 0:
            nec = _interval(
                (p_o_x + p_o_xp - do_o_xp) / p_o_x,
                (do_no_xp - p_no_xp) / p_o_x,
            )
        else:
            nec = (0.0, 1.0)

        if p_no_xp > 0:
            suf = _interval(
                (p_no_x + p_no_xp - do_no_x) / p_no_xp,
                (do_o_x - p_o_x) / p_no_xp,
            )
        else:
            suf = (0.0, 1.0)

        nesuf = _interval(do_o_x - do_o_xp, min(do_o_x, do_no_xp))
        return ScoreBounds(necessity=nec, sufficiency=suf, necessity_sufficiency=nesuf)
