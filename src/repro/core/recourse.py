"""Counterfactual recourse as a 0-1 integer program (Section 4.2).

For an individual with a negative decision, find the minimum-cost
intervention over a user-specified set of actionable attributes whose
sufficiency score exceeds a threshold ``alpha``:

    min  sum_A phi_A(a_A, a_hat_A) * delta_{A, a_hat}
    s.t. SUF_{a_hat}(v) >= alpha
         sum_{a_hat} delta_{A, a_hat} <= 1       for each A
         delta in {0, 1}

The sufficiency constraint is linearised through the logit model of
``Pr(o | A, K)`` (Eq. 28): the constraint becomes a linear inequality
over the deltas with coefficients equal to per-category log-odds
differences. After solving, the recourse is re-scored with the exact
estimator and, when the IP's linear surrogate proves too optimistic, the
threshold is tightened and the IP re-solved (a standard cut loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core import recourse_kernel
from repro.core.recourse_kernel import (
    ENGINES,
    MODES,
    adaptive_chunk_size,
    solve_chunk,
)
from repro.core.scores import ScoreEstimator
from repro.data.table import Table
from repro.estimation.logit import LogitModel, logit
from repro.obs import metrics as _obs
from repro.obs import tracing as _tracing
from repro.opt.integer_program import IntegerProgram
from repro.opt.parametric import SignatureSkeleton
from repro.utils import deadline as _deadline
from repro.utils.exceptions import RecourseInfeasibleError
from repro.utils.validation import check_probability

CostFn = Callable[[str, int, int], float]

_SOLVER_SIGNATURE_SOLVES = _obs.get_registry().counter(
    "repro_solver_signature_solves_total",
    "Distinct signature solves run by recourse solvers.",
)
_SOLVER_SEARCH_NODES = _obs.get_registry().counter(
    "repro_solver_search_nodes_total",
    "Exact-search nodes expanded across signature solves.",
)
_SOLVER_CERTIFIED = _obs.get_registry().counter(
    "repro_solver_certified_total",
    "Signature solves certified optimal by the LP root bound.",
)
_SOLVER_DONOR_SEEDED = _obs.get_registry().counter(
    "repro_solver_donor_seeded_total",
    "Exact searches warm-started from a donor incumbent.",
)
_SOLVER_PARALLEL_BATCHES = _obs.get_registry().counter(
    "repro_solver_parallel_batches_total",
    "Batch solves dispatched to the process pool.",
)
_SOLVER_POOL_FAILURES = _obs.get_registry().counter(
    "repro_solver_pool_failures_total",
    "Process-pool attempts lost to crashed workers or timeouts.",
)
_SOLVER_POOL_FALLBACKS = _obs.get_registry().counter(
    "repro_solver_pool_fallbacks_total",
    "Batch solves completed inline after the pool failed twice.",
)
_SOLVER_CHUNK_SECONDS = _obs.get_registry().histogram(
    "repro_solver_chunk_seconds",
    "Wall time of one signature chunk solve (inline or pool worker).",
)

#: cap on the cross-request warm-start donor pool a solver retains (and
#: exports into snapshots) — donors are tiny dicts, but the pool rides
#: along in every chunk payload, so it stays bounded.
DONOR_POOL_LIMIT = 256


def unit_step_cost(attribute: str, current_code: int, new_code: int) -> float:
    """Default cost: one unit per ordinal step moved."""
    return float(abs(new_code - current_code))


def _check_mode(mode: str) -> None:
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")


@dataclass(frozen=True)
class RecourseAction:
    """One attribute change: ``attribute: current -> new``."""

    attribute: str
    current_value: Any
    new_value: Any
    cost: float


@dataclass(frozen=True)
class Recourse:
    """A recommended intervention with its estimated effect.

    Frozen: :meth:`RecourseSolver.solve_batch` hands the *same* memoised
    instance to every row sharing a signature, so a mutable recourse
    would let one caller silently corrupt the answer served to all
    tenants.  ``optimality_gap`` is 0 for exact solves; in
    ``mode="anytime"`` it is a certified bound — the true exact cost is
    guaranteed within ``total_cost - optimality_gap``..``total_cost``.
    """

    actions: tuple[RecourseAction, ...]
    total_cost: float
    estimated_sufficiency: float
    estimated_probability: float
    threshold: float
    n_constraints: int
    n_variables: int
    optimality_gap: float = 0.0
    mode: str = "exact"

    def __post_init__(self):
        # Accept any sequence of actions but store an immutable tuple.
        object.__setattr__(self, "actions", tuple(self.actions))

    @property
    def is_empty(self) -> bool:
        """True when no action is needed (constraint already satisfied)."""
        return not self.actions

    def as_dict(self) -> dict[str, Any]:
        """``{attribute: new value}`` for the recommended intervention."""
        return {a.attribute: a.new_value for a in self.actions}

    def statements(self) -> list[str]:
        """Human-readable action list in the style of Figure 1."""
        if self.is_empty:
            return ["No action needed: the target probability is already met."]
        lines = [
            f"Change {a.attribute} from {a.current_value!r} to {a.new_value!r}"
            for a in self.actions
        ]
        lines.append(
            f"This recourse will lead to a positive decision with probability "
            f">= {self.estimated_sufficiency:.0%}."
        )
        return lines


class RecourseSolver:
    """Builds and solves the recourse IP for one population.

    Parameters
    ----------
    estimator:
        Score estimator over the black box's input-output table.
    actionable:
        Attribute names a recourse may change.
    cost_fn:
        ``cost_fn(attribute, current_code, new_code) -> float``; defaults
        to :func:`unit_step_cost`.
    engine:
        ``"parametric"`` (default) solves each signature program with
        cached parametric-dual bounds, greedy certificates and a
        warm-started exact search; ``"milp"`` keeps the scipy/HiGHS
        route as an independent oracle for parity testing.
    max_nodes:
        Node budget per signature search (both engines).
    """

    #: minimum number of unsolved signatures before ``workers > 1``
    #: actually spawns a process pool — below this the pool's start-up
    #: cost exceeds the solve time, so the chunks run inline instead
    #: (with identical results either way).
    parallel_threshold = 128

    #: wall-clock budget for one pool attempt (``None`` = unbounded).
    #: A hung worker then surfaces as a timeout instead of wedging the
    #: batch; the request's deadline, when tighter, takes precedence.
    pool_timeout_s: float | None = None

    def __init__(
        self,
        estimator: ScoreEstimator,
        actionable: Sequence[str],
        cost_fn: CostFn | None = None,
        engine: str = "parametric",
        max_nodes: int = 200_000,
    ):
        if not actionable:
            raise ValueError("actionable set must not be empty")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        self._est = estimator
        self.actionable = list(actionable)
        self.cost_fn = cost_fn or unit_step_cost
        self.engine = engine
        self.max_nodes = int(max_nodes)
        table = estimator.table
        missing = [a for a in self.actionable if a not in table]
        if missing:
            raise KeyError(f"actionable attributes not in the data: {missing}")
        # Context: non-descendants of the actionable set (Section 4.2).
        feature_names = [n for n in table.names if n != estimator._outcome]
        diagram = estimator.diagram
        if diagram is not None:
            known = [a for a in self.actionable if a in diagram]
            context_names = sorted(
                diagram.non_descendants_of(known)
                & set(feature_names)
                - set(self.actionable)
            )
        else:
            context_names = [n for n in feature_names if n not in self.actionable]
        self.context_names = context_names
        self._logit = LogitModel(self.actionable, context_names)
        self._logit.fit(table.select(feature_names), estimator._positive)
        #: per-attribute log-odds vectors, read once instead of one
        #: ``coefficient()`` call per (attribute, code) per program
        self._coef_vectors = {
            a: self._logit.coefficient_vector(a) for a in self.actionable
        }
        #: program skeletons keyed by the actionable current-code tuple —
        #: variables, costs, gains and exclusivity rows depend only on it
        self._structures: dict[tuple[int, ...], list[tuple]] = {}
        #: solve-ready skeletons (parametric grids, option orderings)
        #: derived from the structures, same key
        self._skeletons: dict[tuple[int, ...], SignatureSkeleton] = {}
        #: picklable skeleton payloads shipped to worker processes
        self._skeleton_payloads: dict[tuple[int, ...], dict] = {}
        #: solved recourses memoised by (signature, alpha, max_refinements,
        #: mode); distinct individuals sharing (current codes, context)
        #: share the answer
        self._solutions: dict[tuple, Recourse | RecourseInfeasibleError] = {}
        #: cross-request warm-start donors: actionable current-code tuple
        #: -> a solved action set for that signature. Donors only seed
        #: exact-search upper bounds (never answers), so the pool can be
        #: safely carried across updates, requests and snapshot restores.
        self._donor_pool: dict[tuple[int, ...], dict[str, int]] = {}
        #: cumulative kernel counters (searches, certificates, warm starts)
        self._counters = {
            "signature_solves": 0,
            "certified_by_lp_bound": 0,
            "donor_seeded_searches": 0,
            "search_nodes": 0,
            "parallel_batches": 0,
            "pool_failures": 0,
            "pool_fallbacks": 0,
        }

    # -- IP construction ---------------------------------------------------

    def _current_key(self, current: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(int(current[a]) for a in self.actionable)

    def _program_structure(
        self, current: Mapping[str, int]
    ) -> list[tuple[str, list[tuple[tuple, float, float]]]]:
        """Variables, costs and linearised gains for one current-code tuple.

        Returns ``[(attribute, [(name, cost, gain), ...]), ...]``; the
        per-attribute exclusivity constraint is implied by the grouping.
        Cached: a cohort's individuals mostly collide on their actionable
        codes, so the coefficient/cost assembly runs once per distinct
        tuple instead of once per row.
        """
        key = self._current_key(current)
        cached = self._structures.get(key)
        if cached is not None:
            return cached
        table = self._est.table
        structure = []
        for attribute in self.actionable:
            col = table.column(attribute)
            cur = int(current[attribute])
            gains = self._coef_vectors[attribute]
            entries = [
                (
                    (attribute, code),
                    self.cost_fn(attribute, cur, code),
                    float(gains[code] - gains[cur]),
                )
                for code in range(col.cardinality)
                if code != cur
            ]
            structure.append((attribute, entries))
        self._structures[key] = structure
        return structure

    def _skeleton(self, current: Mapping[str, int]) -> SignatureSkeleton:
        """Solve-ready skeleton for one current-code mapping (cached)."""
        return self._skeleton_for_key(self._current_key(current))

    def _skeleton_for_key(self, key: tuple[int, ...]) -> SignatureSkeleton:
        skeleton = self._skeletons.get(key)
        if skeleton is None:
            skeleton = SignatureSkeleton.from_payload(self._skeleton_payload(key))
            self._skeletons[key] = skeleton
        return skeleton

    def _program_shape(self, key: tuple[int, ...]) -> tuple[int, int]:
        """(n_constraints, n_variables) of a signature program, sans solve."""
        payload = self._skeleton_payload(key)
        n_variables = sum(len(codes) for codes in payload["codes"])
        n_constraints = sum(len(codes) > 0 for codes in payload["codes"]) + 1
        return n_constraints, n_variables

    def _skeleton_payload(self, key: tuple[int, ...]) -> dict:
        """Picklable skeleton payload for one current-code tuple (cached)."""
        payload = self._skeleton_payloads.get(key)
        if payload is None:
            structure = self._program_structure(dict(zip(self.actionable, key)))
            payload = {
                "attributes": list(self.actionable),
                "current": key,
                "codes": [
                    [int(name[1]) for name, _, _ in entries]
                    for _, entries in structure
                ],
                "costs": [
                    [float(cost) for _, cost, _ in entries]
                    for _, entries in structure
                ],
                "gains": [
                    [float(gain) for _, _, gain in entries]
                    for _, entries in structure
                ],
            }
            self._skeleton_payloads[key] = payload
        return payload

    def _build_program(
        self,
        row_codes: Mapping[str, int],
        threshold: float,
    ) -> IntegerProgram:
        program = IntegerProgram()
        context = {n: int(row_codes[n]) for n in self.context_names}
        current = {a: int(row_codes[a]) for a in self.actionable}

        base_logit = self._logit.score_codes({**current, **context})
        needed = logit(threshold) - base_logit

        gain_coeffs: dict = {}
        for _attribute, entries in self._program_structure(current):
            exclusivity: dict = {}
            for name, cost, gain in entries:
                program.add_variable(name, cost=cost)
                gain_coeffs[name] = gain
                exclusivity[name] = 1.0
            if exclusivity:
                program.add_le_constraint(exclusivity, 1.0)
        program.add_ge_constraint(gain_coeffs, needed)
        return program

    # -- warm-start donor pool ---------------------------------------------

    def _note_donor(self, key: tuple[int, ...], chosen: Mapping[str, int]) -> None:
        """Remember one solved action set as a future warm-start donor."""
        if key not in self._donor_pool and len(self._donor_pool) < DONOR_POOL_LIMIT:
            self._donor_pool[key] = {a: int(c) for a, c in chosen.items()}

    def _nearest_donors(self, key: tuple[int, ...]) -> list[dict[str, int]]:
        """The pool donor nearest to ``key`` in Hamming distance, if any."""
        if not self._donor_pool:
            return []
        keys = list(self._donor_pool)
        distances = (np.array(keys) != np.array(key)).sum(axis=1)
        return [self._donor_pool[keys[int(np.argmin(distances))]]]

    def _donor_entries(self) -> list[dict]:
        """The pool as plain ``{"key", "chosen"}`` payload entries."""
        return [
            {"key": list(key), "chosen": dict(chosen)}
            for key, chosen in self._donor_pool.items()
        ]

    def export_donor_pool(self) -> list[dict]:
        """JSON-safe donor pool for persistence (see :mod:`repro.store`).

        Entries carry the signature's current codes as an attribute-keyed
        mapping (not a positional tuple) so a solver constructed with the
        same attributes in a different order — or restored in another
        process — can re-key them against its own layout.
        """
        return [
            {
                "current": {
                    a: int(c) for a, c in zip(self.actionable, key)
                },
                "chosen": dict(chosen),
            }
            for key, chosen in self._donor_pool.items()
        ]

    def seed_donor_pool(self, entries: Sequence[Mapping]) -> int:
        """Load exported donor entries; returns how many were accepted.

        Entries whose ``current`` mapping does not cover this solver's
        actionable set are skipped (a pool exported for a different
        actionable set is simply not applicable).
        """
        accepted = 0
        for entry in entries:
            current = entry.get("current") or {}
            if any(a not in current for a in self.actionable):
                continue
            key = tuple(int(current[a]) for a in self.actionable)
            chosen = {
                str(a): int(c) for a, c in (entry.get("chosen") or {}).items()
            }
            if chosen:
                before = len(self._donor_pool)
                self._note_donor(key, chosen)
                accepted += len(self._donor_pool) > before
        return accepted

    # -- solving -------------------------------------------------------------

    def solve(
        self,
        row_codes: Mapping[str, int],
        alpha: float = 0.8,
        max_refinements: int = 4,
        mode: str = "exact",
    ) -> Recourse:
        """Compute minimal-cost recourse for one individual.

        ``alpha`` is the target sufficiency; Eq. (28) converts it into the
        probability threshold ``Pr(o|a,k) + alpha * Pr(o'|a,k)``. Raises
        :class:`RecourseInfeasibleError` when no intervention on the
        actionable set achieves it.  ``mode="anytime"`` returns the
        greedy LP rounding with a certified ``optimality_gap`` instead
        of the exact optimum.
        """
        check_probability(alpha, "alpha")
        _check_mode(mode)
        context = {n: int(row_codes[n]) for n in self.context_names}
        current = {a: int(row_codes[a]) for a in self.actionable}
        key = self._current_key(current)
        base_logit = float(self._logit.score_codes({**current, **context}))
        result = recourse_kernel.solve_signature(
            self._skeleton(current),
            base_logit,
            alpha,
            max_refinements,
            mode=mode,
            engine=self.engine,
            node_limit=self.max_nodes,
            donors=self._nearest_donors(key),
        )
        self._absorb_stats(result)
        if result["status"] == "ok" and result["chosen"]:
            self._note_donor(key, result["chosen"])
        return self._materialize(result, current, alpha, mode)

    def _materialize(
        self,
        result: Mapping[str, Any],
        current: Mapping[str, int],
        alpha: float,
        mode: str,
    ) -> Recourse:
        """Turn a kernel result dict into a :class:`Recourse` (or raise)."""
        if result["status"] == "infeasible":
            if result["reason"] == "no_candidates":
                # No candidate action exists (all actionable attributes
                # are stuck at their only value) and the threshold is not
                # yet met: provably infeasible.
                raise RecourseInfeasibleError(
                    f"no candidate values on {self.actionable} and the "
                    f"target probability is not met"
                )
            raise RecourseInfeasibleError(
                f"no intervention on {self.actionable} reaches sufficiency {alpha}"
            )
        if result["status"] == "empty":
            # Constraint (25) already holds with delta = 0: the paper's
            # "no action is taken" case.
            return Recourse(
                actions=(),
                total_cost=0.0,
                estimated_sufficiency=1.0,
                estimated_probability=result["probability"],
                threshold=result["probability"],
                n_constraints=0,
                n_variables=0,
                optimality_gap=0.0,
                mode=mode,
            )
        n_constraints, n_variables = self._program_shape(self._current_key(current))
        new_codes = dict(current)
        for attribute in self.actionable:
            if attribute in result["chosen"]:
                new_codes[attribute] = int(result["chosen"][attribute])
        actions = self._actions(self._est.table, current, new_codes)
        return Recourse(
            actions=actions,
            total_cost=float(result["objective"]),
            estimated_sufficiency=result["sufficiency"],
            estimated_probability=result["probability"],
            threshold=result["threshold"],
            n_constraints=n_constraints,
            n_variables=n_variables,
            optimality_gap=float(result["gap"]),
            mode=mode,
        )

    def _absorb_stats(self, result: Mapping[str, Any]) -> None:
        stats = result.get("stats", {})
        self._counters["signature_solves"] += 1
        self._counters["certified_by_lp_bound"] += stats.get("certified", 0)
        self._counters["donor_seeded_searches"] += stats.get("donor_seeded", 0)
        self._counters["search_nodes"] += stats.get("nodes", 0)
        if _obs.enabled():
            _SOLVER_SIGNATURE_SOLVES.inc()
            _SOLVER_CERTIFIED.inc(stats.get("certified", 0))
            _SOLVER_DONOR_SEEDED.inc(stats.get("donor_seeded", 0))
            _SOLVER_SEARCH_NODES.inc(stats.get("nodes", 0))

    @staticmethod
    def _ingest_chunk(chunk: Any) -> list[dict]:
        """Unwrap one :func:`solve_chunk` return value.

        When the chunk payload carried a trace context the kernel hands
        back an envelope with its own wall timing (measured inside the
        worker process); replay it into the request trace and feed the
        chunk-solve histogram.  Plain-list returns pass through.
        """
        if not isinstance(chunk, Mapping):
            return chunk
        span = chunk["span"]
        _SOLVER_CHUNK_SECONDS.observe(span["duration_ms"] / 1e3)
        _tracing.record_span(
            span["trace"],
            span["name"],
            span["duration_ms"],
            started_unix=span["started_unix"],
            tags=span["tags"],
        )
        return chunk["results"]

    def solve_batch(
        self,
        rows_codes: Sequence[Mapping[str, int]],
        alpha: float = 0.8,
        max_refinements: int = 4,
        on_infeasible: str = "raise",
        workers: int | None = None,
        mode: str = "exact",
        mp_context: str | None = None,
    ) -> list[Recourse | None]:
        """Minimal-cost recourse for a whole cohort.

        Equivalent to ``[self.solve(row, alpha) for row in rows_codes]``
        but amortised: base log-odds for every row are scored through
        the logit model in *one* matrix pass; individuals are grouped by
        their ``(current actionable codes, context)`` signature so each
        distinct 0-1 program is solved once (categorical cohorts collide
        heavily); solved signatures are memoised across calls keyed by
        ``(signature, alpha, max_refinements, mode)``; and within a
        batch, each signature's search is warm-started from the nearest
        (Hamming distance on actionable codes) already-solved neighbour.

        ``workers > 1`` partitions the unsolved signatures into
        fixed-size chunks and solves them on a ``ProcessPoolExecutor``.
        Chunk boundaries, item order and warm-start neighbourhoods never
        depend on the worker count, so the results are bit-identical to
        the serial path — ``workers`` is purely a wall-clock knob (and
        small batches below :attr:`parallel_threshold` stay inline,
        where a pool could only lose).  ``mp_context`` forces a
        multiprocessing start method (default: ``fork`` where available,
        else ``spawn``; payloads are spawn-safe plain data either way).

        ``on_infeasible`` is ``"raise"`` (first infeasible individual
        aborts the batch, mirroring the scalar loop) or ``"none"``
        (infeasible rows yield ``None`` — the cohort-audit mode).
        """
        check_probability(alpha, "alpha")
        _check_mode(mode)
        if on_infeasible not in ("raise", "none"):
            raise ValueError(
                f"on_infeasible must be 'raise' or 'none', got {on_infeasible!r}"
            )
        if workers is not None and int(workers) < 0:
            raise ValueError(f"workers must be >= 0, got {workers!r}")
        rows_codes = list(rows_codes)
        if not rows_codes:
            return []
        _deadline.check("recourse solve_batch")
        names = self.actionable + self.context_names
        matrix = np.array(
            [[int(row[name]) for name in names] for row in rows_codes],
            dtype=np.int64,
        )
        signatures, inverse = np.unique(matrix, axis=0, return_inverse=True)
        # The memo key includes the refinement budget and mode: a
        # signature found infeasible under a small budget may become
        # feasible with more threshold refinements, and an anytime
        # answer must never be served where an exact one was asked.
        need = [
            i
            for i, signature in enumerate(map(tuple, signatures))
            if (signature, alpha, max_refinements, mode) not in self._solutions
        ]
        if need:
            # np.unique sorts signatures lexicographically with the
            # actionable codes leading, so consecutive unsolved items
            # are natural warm-start neighbours.
            base_logits = self._logit.score_codes_batch(signatures[need])
            items = []
            for base_logit, i in zip(base_logits, need):
                signature = tuple(int(c) for c in signatures[i])
                key = signature[: len(self.actionable)]
                self._skeleton_payload(key)  # ensure cached
                items.append(
                    {
                        "key": key,
                        "signature": signature,
                        "base_logit": float(base_logit),
                    }
                )
            # Every chunk sees the same pre-batch donor snapshot, so the
            # warm starts a chunk receives never depend on which worker
            # ran a sibling chunk first.
            donors = self._donor_entries()
            # The caller's trace context rides in every chunk payload as
            # plain data so pool workers can time themselves for the trace.
            trace_ctx = _tracing.current_context()
            chunk_size = adaptive_chunk_size(len(items), workers)
            payloads = []
            for start in range(0, len(items), chunk_size):
                chunk = items[start : start + chunk_size]
                payload = {
                    "skeletons": {
                        key: self._skeleton_payloads[key]
                        for key in {item["key"] for item in chunk}
                    },
                    "items": [
                        {"key": item["key"], "base_logit": item["base_logit"]}
                        for item in chunk
                    ],
                    "alpha": float(alpha),
                    "max_refinements": int(max_refinements),
                    "mode": mode,
                    "engine": self.engine,
                    "node_limit": self.max_nodes,
                    "donors": donors,
                }
                if trace_ctx is not None:
                    payload["trace"] = trace_ctx
                payloads.append(payload)
            use_pool = (
                workers is not None
                and int(workers) > 1
                and len(payloads) > 1
                and len(items) >= self.parallel_threshold
            )
            chunk_results = None
            if use_pool:
                chunk_results = self._run_chunks_parallel(
                    payloads, int(workers), mp_context
                )
                self._counters["parallel_batches"] += 1
                if _obs.enabled():
                    _SOLVER_PARALLEL_BATCHES.inc()
            if chunk_results is None:
                # The serial path — and the containment path: when the
                # pool died twice (crashed workers, timeouts), the same
                # payloads run inline through the same solve_chunk, so
                # the fallback is bit-identical to serial by construction.
                if use_pool:
                    _deadline.check("recourse pool fallback")
                chunk_results = []
                for payload in payloads:
                    _deadline.check("recourse chunk solve")
                    chunk_results.append(
                        solve_chunk(
                            payload,
                            skeletons={
                                key: self._skeleton_for_key(key)
                                for key in payload["skeletons"]
                            },
                        )
                    )
            chunk_results = [self._ingest_chunk(c) for c in chunk_results]
            with _tracing.span("recourse_merge", tags={"signatures": len(items)}):
                for item, result in zip(
                    items, (r for chunk in chunk_results for r in chunk)
                ):
                    self._absorb_stats(result)
                    if result["status"] == "ok" and result["chosen"]:
                        self._note_donor(item["key"], result["chosen"])
                    current = dict(zip(self.actionable, item["key"]))
                    try:
                        solved = self._materialize(result, current, alpha, mode)
                    except RecourseInfeasibleError as exc:
                        solved = exc
                    self._solutions[
                        (item["signature"], alpha, max_refinements, mode)
                    ] = solved
        out: list[Recourse | None] = []
        for row_index, unique_index in enumerate(inverse):
            signature = tuple(int(c) for c in signatures[unique_index])
            solved = self._solutions[(signature, alpha, max_refinements, mode)]
            if isinstance(solved, RecourseInfeasibleError):
                if on_infeasible == "raise":
                    raise RecourseInfeasibleError(
                        f"row {row_index}: {solved}"
                    ) from solved
                out.append(None)
            else:
                out.append(solved)
        return out

    def _run_chunks_parallel(
        self, payloads: list[dict], workers: int, mp_context: str | None
    ) -> list[list[dict] | dict] | None:
        """Map :func:`solve_chunk` over payloads on a process pool.

        Failure containment: a crashed worker (``BrokenProcessPool``),
        a worker exceeding :attr:`pool_timeout_s` / the request deadline,
        or a pool that cannot even start gets **one bounded retry** on a
        fresh pool; if that fails too, returns ``None`` so the caller
        runs the identical payloads inline — results are bit-identical
        either way, only wall-clock differs.  Returning ``None`` instead
        of raising keeps the policy (fallback) out of the mechanism.
        """
        import multiprocessing as mp
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures.process import BrokenProcessPool

        method = mp_context or (
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        context = mp.get_context(method)
        for _attempt in range(2):  # first try + one bounded retry
            timeout = self.pool_timeout_s
            remaining = _deadline.remaining_s()
            if remaining is not None:
                timeout = remaining if timeout is None else min(timeout, remaining)
                if timeout <= 0:
                    _deadline.check("recourse pool dispatch")
            pool = ProcessPoolExecutor(
                max_workers=min(workers, len(payloads)), mp_context=context
            )
            try:
                # pool.map preserves payload order: the merge is deterministic.
                results = list(pool.map(solve_chunk, payloads, timeout=timeout))
                pool.shutdown(wait=True)
                return results
            except (BrokenProcessPool, TimeoutError, OSError):
                # don't block on possibly-hung workers during teardown
                pool.shutdown(wait=False, cancel_futures=True)
                self._counters["pool_failures"] += 1
                if _obs.enabled():
                    _SOLVER_POOL_FAILURES.inc()
        self._counters["pool_fallbacks"] += 1
        if _obs.enabled():
            _SOLVER_POOL_FALLBACKS.inc()
        return None

    def solution_memo_stats(self) -> dict:
        """Size and solve counters of the signature-keyed caches."""
        infeasible = sum(
            isinstance(v, RecourseInfeasibleError)
            for v in self._solutions.values()
        )
        return {
            "solved_signatures": len(self._solutions),
            "infeasible_signatures": infeasible,
            "program_skeletons": len(self._structures),
            "donor_pool": len(self._donor_pool),
            **self._counters,
        }

    def _actions(
        self,
        table: Table,
        current: Mapping[str, int],
        new_codes: Mapping[str, int],
    ) -> list[RecourseAction]:
        actions = []
        for attribute, code in new_codes.items():
            if code == current[attribute]:
                continue
            categories = table.column(attribute).categories
            actions.append(
                RecourseAction(
                    attribute=attribute,
                    current_value=categories[current[attribute]],
                    new_value=categories[code],
                    # The solver's objective priced this move through
                    # cost_fn; the reported per-action cost must agree.
                    cost=float(self.cost_fn(attribute, current[attribute], code)),
                )
            )
        return actions
