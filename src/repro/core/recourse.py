"""Counterfactual recourse as a 0-1 integer program (Section 4.2).

For an individual with a negative decision, find the minimum-cost
intervention over a user-specified set of actionable attributes whose
sufficiency score exceeds a threshold ``alpha``:

    min  sum_A phi_A(a_A, a_hat_A) * delta_{A, a_hat}
    s.t. SUF_{a_hat}(v) >= alpha
         sum_{a_hat} delta_{A, a_hat} <= 1       for each A
         delta in {0, 1}

The sufficiency constraint is linearised through the logit model of
``Pr(o | A, K)`` (Eq. 28): the constraint becomes a linear inequality
over the deltas with coefficients equal to per-category log-odds
differences. After solving, the recourse is re-scored with the exact
estimator and, when the IP's linear surrogate proves too optimistic, the
threshold is tightened and the IP re-solved (a standard cut loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.scores import ScoreEstimator
from repro.data.table import Table
from repro.estimation.logit import LogitModel, logit
from repro.opt.branch_and_bound import solve_binary_program
from repro.opt.integer_program import IntegerProgram
from repro.utils.exceptions import RecourseInfeasibleError
from repro.utils.validation import check_probability

CostFn = Callable[[str, int, int], float]


def unit_step_cost(attribute: str, current_code: int, new_code: int) -> float:
    """Default cost: one unit per ordinal step moved."""
    return float(abs(new_code - current_code))


@dataclass(frozen=True)
class RecourseAction:
    """One attribute change: ``attribute: current -> new``."""

    attribute: str
    current_value: Any
    new_value: Any
    cost: float


@dataclass
class Recourse:
    """A recommended intervention with its estimated effect."""

    actions: list[RecourseAction]
    total_cost: float
    estimated_sufficiency: float
    estimated_probability: float
    threshold: float
    n_constraints: int
    n_variables: int

    @property
    def is_empty(self) -> bool:
        """True when no action is needed (constraint already satisfied)."""
        return not self.actions

    def as_dict(self) -> dict[str, Any]:
        """``{attribute: new value}`` for the recommended intervention."""
        return {a.attribute: a.new_value for a in self.actions}

    def statements(self) -> list[str]:
        """Human-readable action list in the style of Figure 1."""
        if self.is_empty:
            return ["No action needed: the target probability is already met."]
        lines = [
            f"Change {a.attribute} from {a.current_value!r} to {a.new_value!r}"
            for a in self.actions
        ]
        lines.append(
            f"This recourse will lead to a positive decision with probability "
            f">= {self.estimated_sufficiency:.0%}."
        )
        return lines


class RecourseSolver:
    """Builds and solves the recourse IP for one population.

    Parameters
    ----------
    estimator:
        Score estimator over the black box's input-output table.
    actionable:
        Attribute names a recourse may change.
    cost_fn:
        ``cost_fn(attribute, current_code, new_code) -> float``; defaults
        to :func:`unit_step_cost`.
    """

    def __init__(
        self,
        estimator: ScoreEstimator,
        actionable: Sequence[str],
        cost_fn: CostFn | None = None,
    ):
        if not actionable:
            raise ValueError("actionable set must not be empty")
        self._est = estimator
        self.actionable = list(actionable)
        self.cost_fn = cost_fn or unit_step_cost
        table = estimator.table
        missing = [a for a in self.actionable if a not in table]
        if missing:
            raise KeyError(f"actionable attributes not in the data: {missing}")
        # Context: non-descendants of the actionable set (Section 4.2).
        feature_names = [n for n in table.names if n != estimator._outcome]
        diagram = estimator.diagram
        if diagram is not None:
            known = [a for a in self.actionable if a in diagram]
            context_names = sorted(
                diagram.non_descendants_of(known)
                & set(feature_names)
                - set(self.actionable)
            )
        else:
            context_names = [n for n in feature_names if n not in self.actionable]
        self.context_names = context_names
        self._logit = LogitModel(self.actionable, context_names)
        self._logit.fit(table.select(feature_names), estimator._positive)
        #: per-attribute log-odds vectors, read once instead of one
        #: ``coefficient()`` call per (attribute, code) per program
        self._coef_vectors = {
            a: self._logit.coefficient_vector(a) for a in self.actionable
        }
        #: program skeletons keyed by the actionable current-code tuple —
        #: variables, costs, gains and exclusivity rows depend only on it
        self._structures: dict[tuple[int, ...], list[tuple]] = {}
        #: solved recourses memoised by (signature, alpha, max_refinements);
        #: distinct individuals sharing (current codes, context) share the
        #: answer
        self._solutions: dict[tuple, Recourse | RecourseInfeasibleError] = {}

    # -- IP construction ---------------------------------------------------

    def _current_key(self, current: Mapping[str, int]) -> tuple[int, ...]:
        return tuple(int(current[a]) for a in self.actionable)

    def _program_structure(
        self, current: Mapping[str, int]
    ) -> list[tuple[str, list[tuple[tuple, float, float]]]]:
        """Variables, costs and linearised gains for one current-code tuple.

        Returns ``[(attribute, [(name, cost, gain), ...]), ...]``; the
        per-attribute exclusivity constraint is implied by the grouping.
        Cached: a cohort's individuals mostly collide on their actionable
        codes, so the coefficient/cost assembly runs once per distinct
        tuple instead of once per row.
        """
        key = self._current_key(current)
        cached = self._structures.get(key)
        if cached is not None:
            return cached
        table = self._est.table
        structure = []
        for attribute in self.actionable:
            col = table.column(attribute)
            cur = int(current[attribute])
            gains = self._coef_vectors[attribute]
            entries = [
                (
                    (attribute, code),
                    self.cost_fn(attribute, cur, code),
                    float(gains[code] - gains[cur]),
                )
                for code in range(col.cardinality)
                if code != cur
            ]
            structure.append((attribute, entries))
        self._structures[key] = structure
        return structure

    def _build_program(
        self,
        row_codes: Mapping[str, int],
        threshold: float,
    ) -> IntegerProgram:
        program = IntegerProgram()
        context = {n: int(row_codes[n]) for n in self.context_names}
        current = {a: int(row_codes[a]) for a in self.actionable}

        base_logit = self._logit.score_codes({**current, **context})
        needed = logit(threshold) - base_logit

        gain_coeffs: dict = {}
        for _attribute, entries in self._program_structure(current):
            exclusivity: dict = {}
            for name, cost, gain in entries:
                program.add_variable(name, cost=cost)
                gain_coeffs[name] = gain
                exclusivity[name] = 1.0
            if exclusivity:
                program.add_le_constraint(exclusivity, 1.0)
        program.add_ge_constraint(gain_coeffs, needed)
        return program

    # -- solving -------------------------------------------------------------

    def solve(
        self,
        row_codes: Mapping[str, int],
        alpha: float = 0.8,
        max_refinements: int = 4,
    ) -> Recourse:
        """Compute minimal-cost recourse for one individual.

        ``alpha`` is the target sufficiency; Eq. (28) converts it into the
        probability threshold ``Pr(o|a,k) + alpha * Pr(o'|a,k)``. Raises
        :class:`RecourseInfeasibleError` when no intervention on the
        actionable set achieves it.
        """
        check_probability(alpha, "alpha")
        context = {n: int(row_codes[n]) for n in self.context_names}
        current = {a: int(row_codes[a]) for a in self.actionable}
        base_prob = self._logit.probability_codes({**current, **context})
        return self._solve_from_base(
            current, context, base_prob, alpha, max_refinements
        )

    def _solve_from_base(
        self,
        current: Mapping[str, int],
        context: Mapping[str, int],
        base_prob: float,
        alpha: float,
        max_refinements: int,
    ) -> Recourse:
        """The threshold/refine loop, given an already-scored base probability."""
        table = self._est.table
        if base_prob >= alpha:
            # Constraint (25) already holds with delta = 0: the paper's
            # "no action is taken" case.
            return Recourse(
                actions=[],
                total_cost=0.0,
                estimated_sufficiency=1.0,
                estimated_probability=base_prob,
                threshold=base_prob,
                n_constraints=0,
                n_variables=0,
            )
        threshold = base_prob + alpha * (1.0 - base_prob)
        threshold = min(threshold, 1.0 - 1e-6)

        last_error: Exception | None = None
        for _refine in range(max_refinements):
            program = self._build_program({**current, **context}, threshold)
            if program.n_variables == 0:
                # No candidate action exists (all actionable attributes
                # are stuck at their only value) and the threshold is not
                # yet met: provably infeasible.
                raise RecourseInfeasibleError(
                    f"no candidate values on {self.actionable} and the "
                    f"target probability is not met"
                )
            try:
                solution = solve_binary_program(program)
            except RecourseInfeasibleError as exc:
                last_error = exc
                break
            chosen = {
                attr_code: 1 for attr_code, v in solution.values.items() if v == 1
            }
            new_codes = dict(current)
            for (attribute, code) in chosen:
                new_codes[attribute] = code
            achieved = self._logit.probability_codes({**new_codes, **context})
            suf = self._sufficiency(current, new_codes, context)
            if suf >= alpha - 1e-9:
                actions = self._actions(table, current, new_codes)
                return Recourse(
                    actions=actions,
                    total_cost=solution.objective,
                    estimated_sufficiency=suf,
                    estimated_probability=achieved,
                    threshold=threshold,
                    n_constraints=program.n_constraints,
                    n_variables=program.n_variables,
                )
            # Surrogate too optimistic: tighten and re-solve.
            threshold = min(1.0 - 1e-6, threshold + 0.5 * (1.0 - threshold))
        raise RecourseInfeasibleError(
            f"no intervention on {self.actionable} reaches sufficiency {alpha}"
        ) from last_error

    def solve_batch(
        self,
        rows_codes: Sequence[Mapping[str, int]],
        alpha: float = 0.8,
        max_refinements: int = 4,
        on_infeasible: str = "raise",
    ) -> list[Recourse | None]:
        """Minimal-cost recourse for a whole cohort.

        Equivalent to ``[self.solve(row, alpha) for row in rows_codes]``
        but amortised three ways: base probabilities for every row are
        scored through the logit model in *one* matrix pass; individuals
        are grouped by their ``(current actionable codes, context)``
        signature so each distinct 0-1 program is built and solved once
        (categorical cohorts collide heavily); and solved signatures are
        memoised across calls keyed by ``(signature, alpha)``, so a
        follow-up audit at the same threshold never re-solves.

        ``on_infeasible`` is ``"raise"`` (first infeasible individual
        aborts the batch, mirroring the scalar loop) or ``"none"``
        (infeasible rows yield ``None`` — the cohort-audit mode).
        """
        check_probability(alpha, "alpha")
        if on_infeasible not in ("raise", "none"):
            raise ValueError(
                f"on_infeasible must be 'raise' or 'none', got {on_infeasible!r}"
            )
        rows_codes = list(rows_codes)
        if not rows_codes:
            return []
        names = self.actionable + self.context_names
        matrix = np.array(
            [[int(row[name]) for name in names] for row in rows_codes],
            dtype=np.int64,
        )
        signatures, inverse = np.unique(matrix, axis=0, return_inverse=True)
        # The memo key includes the refinement budget: a signature found
        # infeasible under a small budget may become feasible with more
        # threshold refinements, and must then be re-solved.
        need = [
            i
            for i, signature in enumerate(map(tuple, signatures))
            if (signature, alpha, max_refinements) not in self._solutions
        ]
        if need:
            base_probs = self._logit.probability_codes_batch(signatures[need])
            for base_prob, i in zip(base_probs, need):
                signature = tuple(int(c) for c in signatures[i])
                current = dict(zip(self.actionable, signature))
                context = dict(
                    zip(self.context_names, signature[len(self.actionable):])
                )
                try:
                    solved = self._solve_from_base(
                        current, context, float(base_prob), alpha, max_refinements
                    )
                except RecourseInfeasibleError as exc:
                    solved = exc
                self._solutions[(signature, alpha, max_refinements)] = solved
        out: list[Recourse | None] = []
        for row_index, unique_index in enumerate(inverse):
            signature = tuple(int(c) for c in signatures[unique_index])
            solved = self._solutions[(signature, alpha, max_refinements)]
            if isinstance(solved, RecourseInfeasibleError):
                if on_infeasible == "raise":
                    raise RecourseInfeasibleError(
                        f"row {row_index}: {solved}"
                    ) from solved
                out.append(None)
            else:
                out.append(solved)
        return out

    def solution_memo_stats(self) -> dict:
        """Size counters of the signature-keyed solve caches."""
        infeasible = sum(
            isinstance(v, RecourseInfeasibleError)
            for v in self._solutions.values()
        )
        return {
            "solved_signatures": len(self._solutions),
            "infeasible_signatures": infeasible,
            "program_skeletons": len(self._structures),
        }

    def _sufficiency(
        self,
        current: Mapping[str, int],
        new_codes: Mapping[str, int],
        context: Mapping[str, int],
    ) -> float:
        changed = {a: c for a, c in new_codes.items() if c != current[a]}
        if not changed:
            return self._logit.probability_codes({**current, **context})
        baseline = {a: current[a] for a in changed}
        # Exact-estimator check of the surrogate's promise; the logit
        # model conditions on the individual's full context so it is the
        # natural local sufficiency estimate as well.
        probability_new = self._logit.probability_codes({**new_codes, **context})
        probability_old = self._logit.probability_codes({**current, **context})
        if probability_old >= 1.0:
            return 1.0
        return max(
            0.0,
            min(1.0, (probability_new - probability_old) / (1.0 - probability_old)),
        )

    def _actions(
        self,
        table: Table,
        current: Mapping[str, int],
        new_codes: Mapping[str, int],
    ) -> list[RecourseAction]:
        actions = []
        for attribute, code in new_codes.items():
            if code == current[attribute]:
                continue
            categories = table.column(attribute).categories
            actions.append(
                RecourseAction(
                    attribute=attribute,
                    current_value=categories[current[attribute]],
                    new_value=categories[code],
                    # The solver's objective priced this move through
                    # cost_fn; the reported per-action cost must agree.
                    cost=float(self.cost_fn(attribute, current[attribute], code)),
                )
            )
        return actions
