"""Counterfactual recourse as a 0-1 integer program (Section 4.2).

For an individual with a negative decision, find the minimum-cost
intervention over a user-specified set of actionable attributes whose
sufficiency score exceeds a threshold ``alpha``:

    min  sum_A phi_A(a_A, a_hat_A) * delta_{A, a_hat}
    s.t. SUF_{a_hat}(v) >= alpha
         sum_{a_hat} delta_{A, a_hat} <= 1       for each A
         delta in {0, 1}

The sufficiency constraint is linearised through the logit model of
``Pr(o | A, K)`` (Eq. 28): the constraint becomes a linear inequality
over the deltas with coefficients equal to per-category log-odds
differences. After solving, the recourse is re-scored with the exact
estimator and, when the IP's linear surrogate proves too optimistic, the
threshold is tightened and the IP re-solved (a standard cut loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.core.scores import ScoreEstimator
from repro.data.table import Table
from repro.estimation.logit import LogitModel, logit
from repro.opt.branch_and_bound import solve_binary_program
from repro.opt.integer_program import IntegerProgram
from repro.utils.exceptions import RecourseInfeasibleError
from repro.utils.validation import check_probability

CostFn = Callable[[str, int, int], float]


def unit_step_cost(attribute: str, current_code: int, new_code: int) -> float:
    """Default cost: one unit per ordinal step moved."""
    return float(abs(new_code - current_code))


@dataclass(frozen=True)
class RecourseAction:
    """One attribute change: ``attribute: current -> new``."""

    attribute: str
    current_value: Any
    new_value: Any
    cost: float


@dataclass
class Recourse:
    """A recommended intervention with its estimated effect."""

    actions: list[RecourseAction]
    total_cost: float
    estimated_sufficiency: float
    estimated_probability: float
    threshold: float
    n_constraints: int
    n_variables: int

    @property
    def is_empty(self) -> bool:
        """True when no action is needed (constraint already satisfied)."""
        return not self.actions

    def as_dict(self) -> dict[str, Any]:
        """``{attribute: new value}`` for the recommended intervention."""
        return {a.attribute: a.new_value for a in self.actions}

    def statements(self) -> list[str]:
        """Human-readable action list in the style of Figure 1."""
        if self.is_empty:
            return ["No action needed: the target probability is already met."]
        lines = [
            f"Change {a.attribute} from {a.current_value!r} to {a.new_value!r}"
            for a in self.actions
        ]
        lines.append(
            f"This recourse will lead to a positive decision with probability "
            f">= {self.estimated_sufficiency:.0%}."
        )
        return lines


class RecourseSolver:
    """Builds and solves the recourse IP for one population.

    Parameters
    ----------
    estimator:
        Score estimator over the black box's input-output table.
    actionable:
        Attribute names a recourse may change.
    cost_fn:
        ``cost_fn(attribute, current_code, new_code) -> float``; defaults
        to :func:`unit_step_cost`.
    """

    def __init__(
        self,
        estimator: ScoreEstimator,
        actionable: Sequence[str],
        cost_fn: CostFn | None = None,
    ):
        if not actionable:
            raise ValueError("actionable set must not be empty")
        self._est = estimator
        self.actionable = list(actionable)
        self.cost_fn = cost_fn or unit_step_cost
        table = estimator.table
        missing = [a for a in self.actionable if a not in table]
        if missing:
            raise KeyError(f"actionable attributes not in the data: {missing}")
        # Context: non-descendants of the actionable set (Section 4.2).
        feature_names = [n for n in table.names if n != estimator._outcome]
        diagram = estimator.diagram
        if diagram is not None:
            known = [a for a in self.actionable if a in diagram]
            context_names = sorted(
                diagram.non_descendants_of(known)
                & set(feature_names)
                - set(self.actionable)
            )
        else:
            context_names = [n for n in feature_names if n not in self.actionable]
        self.context_names = context_names
        self._logit = LogitModel(self.actionable, context_names)
        self._logit.fit(table.select(feature_names), estimator._positive)

    # -- IP construction ---------------------------------------------------

    def _build_program(
        self,
        row_codes: Mapping[str, int],
        threshold: float,
    ) -> IntegerProgram:
        table = self._est.table
        program = IntegerProgram()
        context = {n: int(row_codes[n]) for n in self.context_names}
        current = {a: int(row_codes[a]) for a in self.actionable}

        base_logit = self._logit.score_codes({**current, **context})
        needed = logit(threshold) - base_logit

        gain_coeffs: dict = {}
        for attribute in self.actionable:
            col = table.column(attribute)
            cur = current[attribute]
            exclusivity: dict = {}
            for code in range(col.cardinality):
                if code == cur:
                    continue
                name = (attribute, code)
                program.add_variable(
                    name, cost=self.cost_fn(attribute, cur, code)
                )
                gain_coeffs[name] = self._logit.coefficient(
                    attribute, code
                ) - self._logit.coefficient(attribute, cur)
                exclusivity[name] = 1.0
            if exclusivity:
                program.add_le_constraint(exclusivity, 1.0)
        program.add_ge_constraint(gain_coeffs, needed)
        return program

    # -- solving -------------------------------------------------------------

    def solve(
        self,
        row_codes: Mapping[str, int],
        alpha: float = 0.8,
        max_refinements: int = 4,
    ) -> Recourse:
        """Compute minimal-cost recourse for one individual.

        ``alpha`` is the target sufficiency; Eq. (28) converts it into the
        probability threshold ``Pr(o|a,k) + alpha * Pr(o'|a,k)``. Raises
        :class:`RecourseInfeasibleError` when no intervention on the
        actionable set achieves it.
        """
        check_probability(alpha, "alpha")
        table = self._est.table
        context = {n: int(row_codes[n]) for n in self.context_names}
        current = {a: int(row_codes[a]) for a in self.actionable}

        base_prob = self._logit.probability_codes({**current, **context})
        if base_prob >= alpha:
            # Constraint (25) already holds with delta = 0: the paper's
            # "no action is taken" case.
            return Recourse(
                actions=[],
                total_cost=0.0,
                estimated_sufficiency=1.0,
                estimated_probability=base_prob,
                threshold=base_prob,
                n_constraints=0,
                n_variables=0,
            )
        threshold = base_prob + alpha * (1.0 - base_prob)
        threshold = min(threshold, 1.0 - 1e-6)

        last_error: Exception | None = None
        for _refine in range(max_refinements):
            program = self._build_program(row_codes, threshold)
            if program.n_variables == 0:
                # No candidate action exists (all actionable attributes
                # are stuck at their only value) and the threshold is not
                # yet met: provably infeasible.
                raise RecourseInfeasibleError(
                    f"no candidate values on {self.actionable} and the "
                    f"target probability is not met"
                )
            try:
                solution = solve_binary_program(program)
            except RecourseInfeasibleError as exc:
                last_error = exc
                break
            chosen = {
                attr_code: 1 for attr_code, v in solution.values.items() if v == 1
            }
            new_codes = dict(current)
            for (attribute, code) in chosen:
                new_codes[attribute] = code
            achieved = self._logit.probability_codes({**new_codes, **context})
            suf = self._sufficiency(current, new_codes, context)
            if suf >= alpha - 1e-9:
                actions = self._actions(table, current, new_codes)
                return Recourse(
                    actions=actions,
                    total_cost=solution.objective,
                    estimated_sufficiency=suf,
                    estimated_probability=achieved,
                    threshold=threshold,
                    n_constraints=program.n_constraints,
                    n_variables=program.n_variables,
                )
            # Surrogate too optimistic: tighten and re-solve.
            threshold = min(1.0 - 1e-6, threshold + 0.5 * (1.0 - threshold))
        raise RecourseInfeasibleError(
            f"no intervention on {self.actionable} reaches sufficiency {alpha}"
        ) from last_error

    def _sufficiency(
        self,
        current: Mapping[str, int],
        new_codes: Mapping[str, int],
        context: Mapping[str, int],
    ) -> float:
        changed = {a: c for a, c in new_codes.items() if c != current[a]}
        if not changed:
            return self._logit.probability_codes({**current, **context})
        baseline = {a: current[a] for a in changed}
        # Exact-estimator check of the surrogate's promise; the logit
        # model conditions on the individual's full context so it is the
        # natural local sufficiency estimate as well.
        probability_new = self._logit.probability_codes({**new_codes, **context})
        probability_old = self._logit.probability_codes({**current, **context})
        if probability_old >= 1.0:
            return 1.0
        return max(
            0.0,
            min(1.0, (probability_new - probability_old) / (1.0 - probability_old)),
        )

    @staticmethod
    def _actions(
        table: Table,
        current: Mapping[str, int],
        new_codes: Mapping[str, int],
    ) -> list[RecourseAction]:
        actions = []
        for attribute, code in new_codes.items():
            if code == current[attribute]:
                continue
            categories = table.column(attribute).categories
            actions.append(
                RecourseAction(
                    attribute=attribute,
                    current_value=categories[current[attribute]],
                    new_value=categories[code],
                    cost=float(abs(code - current[attribute])),
                )
            )
        return actions
