"""LEWIS core: explanation scores, bounds, explanations, recourse.

This package implements the paper's contribution (Sections 3–4):

* :mod:`repro.core.scores` — point estimation of the necessity,
  sufficiency and necessity-and-sufficiency scores (Proposition 4.2),
* :mod:`repro.core.bounds` — Fréchet-style bounds valid without the
  monotonicity assumption (Proposition 4.1),
* :mod:`repro.core.explanations` — global / contextual / local
  explanation generation (Section 3.2),
* :mod:`repro.core.recourse` — minimal-cost counterfactual recourse as a
  0-1 integer program (Section 4.2),
* :mod:`repro.core.lewis` — the :class:`~repro.core.lewis.Lewis` facade
  tying everything together.
"""

from repro.core.scores import LocalScoreArrays, ScoreEstimator, ScoreTriple
from repro.core.bounds import ScoreBounds, BoundsEstimator
from repro.core.explanations import (
    AttributeScore,
    GlobalExplanation,
    LocalContribution,
    LocalExplanation,
    build_local_explanation,
    build_local_explanations_batch,
)
from repro.core.recourse import Recourse, RecourseAction, RecourseSolver, unit_step_cost
from repro.core.ordering import infer_value_order
from repro.core.monotonicity import empirical_monotonicity_violation
from repro.core.fairness import ContextualDisparity, FairnessAuditor, FairnessVerdict
from repro.core.uncertainty import BootstrapScores, ScoreInterval
from repro.core.gaming import GamingReport, audit_recourse_gaming
from repro.core.lewis import Lewis

__all__ = [
    "LocalScoreArrays",
    "ScoreEstimator",
    "ScoreTriple",
    "build_local_explanation",
    "build_local_explanations_batch",
    "ScoreBounds",
    "BoundsEstimator",
    "AttributeScore",
    "GlobalExplanation",
    "LocalContribution",
    "LocalExplanation",
    "Recourse",
    "RecourseAction",
    "RecourseSolver",
    "unit_step_cost",
    "infer_value_order",
    "empirical_monotonicity_violation",
    "ContextualDisparity",
    "FairnessAuditor",
    "FairnessVerdict",
    "BootstrapScores",
    "ScoreInterval",
    "GamingReport",
    "audit_recourse_gaming",
    "Lewis",
]
