"""Inferring attribute-value orderings from the black box (Section 4.1).

LEWIS assumes an ordinal importance of attribute values (``x > x'`` means
``x`` is more favourable). For categorical attributes without a natural
order, the paper infers one "by comparing the output of the algorithm for
x and x'": each candidate value is probed by setting the whole population
to that value and measuring the average positive decision — a direct
interventional probe of the deterministic algorithm.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.table import Column, Table


def infer_value_order(
    predict_positive: Callable[[Table], np.ndarray],
    table: Table,
    attribute: str,
    max_probe_rows: int = 2_000,
    seed: int | None = 0,
) -> list:
    """Return the attribute's categories ordered from least to most favourable.

    Parameters
    ----------
    predict_positive:
        Maps a feature table to a boolean/0-1 vector of positive decisions
        — typically ``lambda t: model.predict_codes(t) == positive_code``.
    table:
        Population to probe (subsampled to ``max_probe_rows``).
    attribute:
        The column whose domain should be ordered.
    """
    col = table.column(attribute)
    if len(table) > max_probe_rows:
        rng = np.random.default_rng(seed)
        table = table.take(rng.choice(len(table), max_probe_rows, replace=False))
        col = table.column(attribute)

    favourability = []
    for code in range(col.cardinality):
        probed = table.with_column(
            Column.from_codes(
                attribute,
                np.full(len(table), code, dtype=np.int64),
                col.categories,
                col.ordered,
            )
        )
        rate = float(np.mean(np.asarray(predict_positive(probed), dtype=float)))
        favourability.append((rate, code))
    favourability.sort()
    return [col.categories[code] for _rate, code in favourability]


def order_table_attributes(
    predict_positive: Callable[[Table], np.ndarray],
    table: Table,
    attributes: Sequence[str] | None = None,
    max_probe_rows: int = 2_000,
    seed: int | None = 0,
) -> Table:
    """Reorder every unordered attribute's domain by inferred favourability.

    Ordered (ordinal) columns are left untouched; unordered ones are
    reordered so downstream score computation can rely on
    ``code(x) > code(x')  <=>  x more favourable than x'``.

    All probes run against the *original* table: ``predict_positive``
    must see the attribute codes the black box was trained on, so the
    orderings are computed first and only then applied. Callers that keep
    using the black box afterwards must translate reordered codes back to
    the original domain (see :meth:`repro.core.lewis.Lewis.predict_positive`).
    """
    attributes = list(attributes) if attributes is not None else table.names
    orders: dict[str, list] = {}
    for name in attributes:
        col = table.column(name)
        if col.ordered or col.cardinality < 2:
            continue
        orders[name] = infer_value_order(
            predict_positive, table, name, max_probe_rows=max_probe_rows, seed=seed
        )
    out = table
    for name, order in orders.items():
        out = out.with_column(out.column(name).with_order(order))
    return out
