"""The LEWIS facade: one object, all explanation types.

``Lewis`` wires together the black box, its input-output table, the
background causal diagram, value-order inference, score estimation,
bounds, explanations and recourse behind the API a downstream user works
with:

>>> lew = Lewis(model, data=test_table, feature_names=features, graph=g)
>>> lew.explain_global().ranking("sufficiency")
>>> lew.explain_context({"sex": "Male"})
>>> lew.explain_local(index=7)
>>> lew.recourse(index=7, actionable=["savings", "credit_amount"], alpha=0.9)
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.causal.graph import CausalDiagram
from repro.core.bounds import BoundsEstimator, ScoreBounds
from repro.core.explanations import (
    GlobalExplanation,
    LocalExplanation,
    build_global_explanation,
    build_local_explanation,
    build_local_explanations_batch,
)
from repro.core.ordering import order_table_attributes
from repro.core.recourse import CostFn, Recourse, RecourseSolver
from repro.core.scores import ScoreEstimator, ScoreTriple
from repro.data.table import Table
from repro.estimation.adjustment import adjusted_probability
from repro.models.pipeline import TableModel
from repro.utils.lru import ByteBudgetLRU


class Lewis:
    """Post-hoc, model-agnostic explainer for a black-box decision algorithm.

    Parameters
    ----------
    model:
        Either a fitted :class:`~repro.models.pipeline.TableModel` or any
        callable mapping a feature :class:`Table` to an outcome vector.
    data:
        Population to explain over (typically held-out test rows). Only
        the feature columns are used; predictions are recomputed.
    feature_names:
        The algorithm's input attributes. Attributes present in ``data``
        but not listed here still receive scores (indirect influence,
        Remark 3.2) as long as they appear in the diagram or table.
    positive_outcome:
        The favourable decision. For classifiers this is a label of the
        model's outcome domain (default: the largest code). For
        regression black boxes pass ``threshold`` instead and outcomes
        ``>= threshold`` count as positive.
    graph:
        Background causal diagram over the attributes. ``None`` activates
        the no-confounding fallback of Section 6.
    infer_orderings:
        Re-order unordered attribute domains by probing the black box
        (Section 4.1) so "higher code = more favourable" holds everywhere.
    positive_vector:
        Restore hook (see :mod:`repro.store`): the precomputed
        positive-decision vector over ``data``. When given, the black box
        is *not* re-run over the population — a snapshot restore supplies
        the predictions it saved. Must align with ``data`` row for row.
    model_domains:
        Restore hook: the domain layout the black box was trained on,
        keyed by column name. Pass together with the already-reordered
        ``data`` and ``infer_orderings=False`` to rebuild an explainer
        whose favourability ordering was inferred in a previous process.
    """

    def __init__(
        self,
        model: TableModel | Callable[[Table], np.ndarray],
        data: Table,
        feature_names: Sequence[str] | None = None,
        positive_outcome: Any | None = None,
        threshold: float | None = None,
        graph: CausalDiagram | None = None,
        attributes: Sequence[str] | None = None,
        infer_orderings: bool = True,
        seed: int | None = 0,
        *,
        positive_vector: np.ndarray | None = None,
        model_domains: Mapping[str, Sequence[Any]] | None = None,
    ):
        self._model = model
        self.graph = graph
        self.threshold = threshold

        if isinstance(model, TableModel):
            self.feature_names = list(feature_names or model.feature_names)
        else:
            if feature_names is None:
                raise ValueError("feature_names is required for callable models")
            self.feature_names = list(feature_names)

        #: attributes receiving explanations: features plus any extra
        #: columns (e.g. sensitive attributes the algorithm never sees).
        self.attributes = list(attributes) if attributes is not None else [
            n for n in data.names if n in set(self.feature_names) | set(
                graph.nodes if graph is not None else []
            )
        ]
        self._positive_outcome = positive_outcome

        table = data.select(
            [n for n in data.names if n in set(self.attributes) | set(self.feature_names)]
        )
        #: the domain layout the black box was trained on; predictions are
        #: always issued in this space even after favourability reordering.
        if model_domains is not None:
            self._model_domains = {
                name: tuple(domain) for name, domain in model_domains.items()
            }
        else:
            self._model_domains = {name: table.domain(name) for name in table.names}
        if infer_orderings:
            table = order_table_attributes(
                self._raw_predict_positive, table, self.attributes, seed=seed
            )
        self.data = table
        if positive_vector is not None:
            positive = np.asarray(positive_vector, dtype=bool)
            if len(positive) != len(table):
                raise ValueError(
                    f"positive_vector has {len(positive)} entries; "
                    f"data has {len(table)} rows"
                )
            self._positive = positive
        else:
            self._positive = np.asarray(self.predict_positive(table), dtype=bool)
        self.estimator = ScoreEstimator(table, self._positive, diagram=graph)
        self.bounds_estimator = BoundsEstimator(self.estimator)
        #: cached solvers as ``key -> (table_version, solver)``; a version
        #: mismatch at lookup time drops the entry, so a solver fitted on
        #: pre-update rows can never serve stale logit coefficients even
        #: when the estimator was updated behind this facade's back.
        #: LRU-bounded because ``cost_fn`` keys on object identity — a
        #: caller passing per-request lambdas must not grow it unboundedly.
        self._recourse_solvers: ByteBudgetLRU = ByteBudgetLRU(
            max_bytes=None, max_entries=16
        )
        #: warm-start donor stash keyed by sorted actionable tuple;
        #: survives :meth:`apply_delta` (donors only seed search bounds,
        #: never answers) and is what snapshots persist/restores seed.
        self._recourse_warm: dict[tuple[str, ...], list[dict]] = {}

    # -- black-box plumbing ---------------------------------------------------

    def _to_model_space(self, table: Table) -> Table:
        """Translate reordered domains back to the black box's layout.

        Favourability-ordering (Section 4.1) permutes category codes for
        score computation; the model, however, was trained on the
        original layout, so its inputs are always remapped back here.
        """
        out = table
        for name in table.names:
            original = self._model_domains.get(name)
            col = table.column(name)
            if original is not None and col.categories != original:
                out = out.with_column(col.with_order(original))
        return out

    def predict_positive(self, table: Table) -> np.ndarray:
        """Boolean positive-decision vector for ``table``.

        Accepts tables in either the original or the reordered domain
        layout; codes are translated to the model's layout before the
        black box is called.
        """
        return self._raw_predict_positive(self._to_model_space(table))

    def _raw_predict_positive(self, table: Table) -> np.ndarray:
        """Positive-decision vector, assuming model-space codes."""
        features = table.select(self.feature_names)
        if isinstance(self._model, TableModel):
            if self._model.is_classifier:
                codes = self._model.predict_codes(features)
                return np.isin(codes, self._positive_codes())
            values = self._model.predict_value(features)
            threshold = self.threshold if self.threshold is not None else 0.5
            return values >= threshold
        outcome = np.asarray(self._model(features))
        if outcome.dtype == bool:
            return outcome
        if self.threshold is not None:
            return outcome >= self.threshold
        if self._positive_outcome is not None:
            if isinstance(self._positive_outcome, (set, frozenset, list, tuple)):
                favourable = set(self._positive_outcome)
                return np.fromiter(
                    (o in favourable for o in outcome), dtype=bool, count=len(outcome)
                )
            return outcome == self._positive_outcome
        return outcome.astype(float) >= 0.5

    def _positive_codes(self) -> np.ndarray:
        """Outcome codes counted as the favourable decision.

        The multi-class extension of Section 4.1: ``positive_outcome``
        may be a single label or a *set* of labels (the favourable
        partition ``O >= o``); scores are computed against that partition.
        """
        domain = self._model.outcome_domain_
        if self._positive_outcome is None:
            return np.array([len(domain) - 1])
        if isinstance(self._positive_outcome, (set, frozenset, list, tuple)):
            return np.array([domain.index(o) for o in self._positive_outcome])
        return np.array([domain.index(self._positive_outcome)])

    @property
    def positive(self) -> np.ndarray:
        """Positive-decision vector over :attr:`data`."""
        return self._positive

    @property
    def positive_rate(self) -> float:
        """Population-level rate of positive decisions."""
        return float(self._positive.mean())

    # -- incremental data updates ------------------------------------------

    @property
    def table_version(self) -> int:
        """Data-version token, bumped by every non-empty :meth:`apply_delta`."""
        return self.estimator.engine.version

    def apply_delta(
        self,
        inserted_rows: Sequence[Mapping[str, Any]] | Table | None = None,
        deleted_rows: Sequence[int] | np.ndarray | None = None,
    ) -> int:
        """Update the explained population in place, without a rebuild.

        ``inserted_rows`` are decoded ``{attribute: label}`` mappings (or
        a feature :class:`Table` in this explainer's domain layout);
        labels must come from the existing domains — a delta can never
        extend a category set.  ``deleted_rows`` are indices into
        :attr:`data`; deletions apply first, then insertions append.

        The black box is invoked only on the inserted rows; cached
        contingency tensors are maintained incrementally via
        :meth:`ContingencyEngine.apply_delta`; recourse solvers and local
        regression models (data-dependent) are dropped for lazy refit.
        Returns the new :attr:`table_version`.
        """
        if inserted_rows is not None and not isinstance(inserted_rows, Table):
            rows = list(inserted_rows)
            if rows:
                encoded = self.data.encode_rows(rows)
                inserted_rows = Table(
                    self.data.column(name).replaced(encoded[name])
                    for name in self.data.names
                )
            else:
                inserted_rows = None
        n_ins = len(inserted_rows) if inserted_rows is not None else 0
        inserted_positive = (
            np.asarray(self.predict_positive(inserted_rows), dtype=bool)
            if n_ins
            else None
        )
        version = self.estimator.apply_delta(
            inserted_rows if n_ins else None, inserted_positive, deleted_rows
        )
        self.data = self.estimator._features
        self._positive = self.estimator._positive
        # Solvers embed data-dependent logit fits and must refit, but
        # their warm-start donor pools stay valid (donors are feasibility
        # -checked upper-bound seeds) — stash them for the refit solvers.
        self._stash_recourse_warm()
        self._recourse_solvers.clear()
        return version

    # -- raw score access ---------------------------------------------------------

    def _encode_context(self, context: Mapping[str, Any]) -> dict[str, int]:
        return {
            name: self.data.column(name).code_of(value)
            for name, value in context.items()
        }

    def score(
        self,
        attribute: str,
        value: Any,
        baseline: Any,
        context: Mapping[str, Any] | None = None,
    ) -> ScoreTriple:
        """NEC/SUF/NESUF for one labelled contrast ``value`` vs ``baseline``."""
        col = self.data.column(attribute)
        return self.estimator.scores(
            {attribute: col.code_of(value)},
            {attribute: col.code_of(baseline)},
            self._encode_context(context or {}),
        )

    def interventional_probability(
        self,
        do: Mapping[str, Any],
        context: Mapping[str, Any] | None = None,
        positive: bool = True,
    ) -> float:
        """``Pr(O = o | do(X <- x), k)`` — the do-operator of Section 2.

        Example 2.1's query "probability of loan approval had all
        applicants selected a 24-month repayment duration" becomes
        ``lewis.interventional_probability({"month": "12-24 months"})``.
        Identified via the backdoor criterion when a diagram is present,
        estimated as the plain conditional otherwise.
        """
        treatment = {
            name: self.data.column(name).code_of(value)
            for name, value in do.items()
        }
        context_codes = self._encode_context(context or {})
        estimator = self.estimator
        adjustment = estimator._adjustment_for(
            list(treatment), list(context_codes)
        )
        return adjusted_probability(
            estimator.frequency_estimator,
            event={estimator._outcome: 1 if positive else 0},
            treatment=treatment,
            adjustment=adjustment,
            weight_condition={},
            context=context_codes,
        )

    def scores_batch(
        self,
        contrasts: Sequence[tuple[Mapping[str, Any], Mapping[str, Any]]],
        context: Mapping[str, Any] | None = None,
    ) -> list[ScoreTriple]:
        """Batched labelled scores for many ``(values, baselines)`` contrasts.

        Each contrast is a pair of ``{attribute: label}`` mappings (as
        accepted by :meth:`score_set`); all contrasts share one
        ``context``.  The whole batch is evaluated in a few vectorized
        passes over the contingency engine — the fast path behind
        :meth:`explain_global` — and results align with the input order.
        """
        encoded = []
        for values, baselines in contrasts:
            encoded.append(
                (
                    {
                        name: self.data.column(name).code_of(value)
                        for name, value in values.items()
                    },
                    {
                        name: self.data.column(name).code_of(value)
                        for name, value in baselines.items()
                    },
                )
            )
        return self.estimator.scores_batch(
            encoded, self._encode_context(context or {})
        )

    def score_set(
        self,
        values: Mapping[str, Any],
        baselines: Mapping[str, Any],
        context: Mapping[str, Any] | None = None,
    ) -> ScoreTriple:
        """Scores for a joint contrast over a *set* of attributes.

        Definition 3.1 is stated for attribute sets; this is the labelled
        convenience over :meth:`ScoreEstimator.scores` — e.g.
        ``score_set({"savings": ">1000 DM", "status": ">200 DM"},
        {"savings": "<100 DM", "status": "<0 DM"})``.
        """
        treatment = {
            name: self.data.column(name).code_of(value)
            for name, value in values.items()
        }
        baseline = {
            name: self.data.column(name).code_of(value)
            for name, value in baselines.items()
        }
        return self.estimator.scores(
            treatment, baseline, self._encode_context(context or {})
        )

    def score_bounds(
        self,
        attribute: str,
        value: Any,
        baseline: Any,
        context: Mapping[str, Any] | None = None,
    ) -> ScoreBounds:
        """Proposition 4.1 bounds for one labelled contrast."""
        col = self.data.column(attribute)
        return self.bounds_estimator.bounds(
            {attribute: col.code_of(value)},
            {attribute: col.code_of(baseline)},
            self._encode_context(context or {}),
        )

    def score_intervals(
        self,
        attribute: str,
        value: Any,
        baseline: Any,
        context: Mapping[str, Any] | None = None,
        n_bootstrap: int = 50,
        level: float = 0.9,
        seed: int | None = 0,
    ) -> dict:
        """Bootstrap confidence intervals for one labelled contrast.

        Returns ``{score name: ScoreInterval}``; see
        :class:`repro.core.uncertainty.BootstrapScores`.
        """
        from repro.core.uncertainty import BootstrapScores

        features = self.data.select(
            [n for n in self.data.names if n != self.estimator._outcome]
        )
        boot = BootstrapScores(
            features,
            self._positive,
            diagram=self.graph,
            n_bootstrap=n_bootstrap,
            seed=seed,
        )
        col = self.data.column(attribute)
        return boot.intervals(
            {attribute: col.code_of(value)},
            {attribute: col.code_of(baseline)},
            self._encode_context(context or {}),
            level=level,
        )

    # -- explanations -----------------------------------------------------------

    def explain_global(
        self,
        attributes: Sequence[str] | None = None,
        max_pairs_per_attribute: int | None = 8,
    ) -> GlobalExplanation:
        """Population-level explanation (context ``K = ∅``)."""
        return build_global_explanation(
            self.estimator,
            list(attributes or self.attributes),
            context=None,
            max_pairs_per_attribute=max_pairs_per_attribute,
        )

    def explain_context(
        self,
        context: Mapping[str, Any],
        attributes: Sequence[str] | None = None,
        max_pairs_per_attribute: int | None = 8,
    ) -> GlobalExplanation:
        """Sub-population explanation for a user-defined context ``k``."""
        if not context:
            raise ValueError("context must not be empty; use explain_global")
        return build_global_explanation(
            self.estimator,
            list(attributes or self.attributes),
            context=self._encode_context(context),
            context_labels=dict(context),
            max_pairs_per_attribute=max_pairs_per_attribute,
        )

    def explain_local(
        self,
        index: int | None = None,
        individual: Mapping[str, Any] | None = None,
        attributes: Sequence[str] | None = None,
    ) -> LocalExplanation:
        """Individual-level explanation (context ``K = V``).

        Pass either a row ``index`` into :attr:`data` or a decoded
        ``individual`` mapping covering all attributes.
        """
        if (index is None) == (individual is None):
            raise ValueError("pass exactly one of index / individual")
        if index is not None:
            row_codes = self.data.row_codes(int(index))
            outcome_positive = bool(self._positive[int(index)])
        else:
            row_codes = {
                name: self.data.column(name).code_of(value)
                for name, value in individual.items()
                if name in self.data
            }
            single = self.data.take(np.array([0]))
            for name, code in row_codes.items():
                col = single.column(name)
                single = single.with_column(
                    col.replaced(np.array([code], dtype=np.int64))
                )
            outcome_positive = bool(self.predict_positive(single)[0])
        return build_local_explanation(
            self.estimator,
            row_codes,
            outcome_positive,
            list(attributes or self.attributes),
        )

    def explain_local_batch(
        self,
        indices: Sequence[int],
        attributes: Sequence[str] | None = None,
    ) -> list[LocalExplanation]:
        """Local explanations for a cohort of rows in a few matrix passes.

        Equivalent to ``[self.explain_local(index=i) for i in indices]``
        but the whole cohort's regression probes are deduplicated and
        answered in one pass per attribute group (see
        :meth:`ScoreEstimator.local_score_arrays`); results match the
        scalar loop to machine precision.
        """
        indices = [int(i) for i in indices]
        rows = [self.data.row_codes(i) for i in indices]
        outcomes = [bool(self._positive[i]) for i in indices]
        return build_local_explanations_batch(
            self.estimator, rows, outcomes, list(attributes or self.attributes)
        )

    # -- recourse ---------------------------------------------------------------

    def _recourse_solver(
        self, actionable: Sequence[str], cost_fn: CostFn | None
    ) -> RecourseSolver:
        """The cached solver for ``(actionable, cost_fn)`` at the current data version.

        Solvers embed a fitted :class:`~repro.estimation.logit.LogitModel`
        (and memoised IP solutions), all functions of the table contents;
        an entry built against a superseded :attr:`table_version` is
        discarded and refit so recourse after :meth:`apply_delta` always
        reflects the updated rows.
        """
        key = (tuple(sorted(actionable)), cost_fn)
        version = self.table_version
        entry = self._recourse_solvers.get(key)
        if entry is None or entry[0] != version:
            solver = RecourseSolver(self.estimator, list(actionable), cost_fn)
            if entry is not None:
                # refit across a version bump: carry the donor pool over
                solver.seed_donor_pool(entry[1].export_donor_pool())
            stash = self._recourse_warm.get(key[0])
            if stash:
                solver.seed_donor_pool(stash)
            self._recourse_solvers.put(key, (version, solver), size=1)
            return solver
        return entry[1]

    def solver_stats(self) -> dict:
        """Aggregated :meth:`RecourseSolver.solution_memo_stats` over live solvers.

        The per-session solver gauges the metrics registry exports; zero
        counters when no solver has been instantiated yet.
        """
        totals: dict[str, float] = {"solvers": 0}
        for key in list(self._recourse_solvers):
            try:
                _version, solver = self._recourse_solvers[key]
            except KeyError:  # evicted mid-iteration
                continue
            totals["solvers"] += 1
            for name, value in solver.solution_memo_stats().items():
                totals[name] = totals.get(name, 0) + value
        return totals

    def _stash_recourse_warm(self) -> None:
        """Merge every live solver's donor pool into the warm stash."""
        for key in list(self._recourse_solvers):
            _version, solver = self._recourse_solvers[key]
            exported = solver.export_donor_pool()
            if exported:
                merged = {
                    tuple(sorted(e["current"].items())): e
                    for e in self._recourse_warm.get(key[0], [])
                }
                for e in exported:
                    merged.setdefault(tuple(sorted(e["current"].items())), e)
                self._recourse_warm[key[0]] = list(merged.values())

    def export_recourse_warm(self) -> list[dict]:
        """JSON-safe warm-start state for snapshot persistence.

        Returns ``[{"actionable": [...], "donors": [...]}, ...]`` — the
        stash plus every live solver's donor pool — suitable for
        :func:`repro.store.snapshot.snapshot_session` to embed in a
        manifest and :meth:`seed_recourse_warm` to reload.
        """
        self._stash_recourse_warm()
        return [
            {"actionable": list(actionable), "donors": list(donors)}
            for actionable, donors in sorted(self._recourse_warm.items())
            if donors
        ]

    def seed_recourse_warm(self, state: Sequence[Mapping]) -> None:
        """Load warm-start state exported by :meth:`export_recourse_warm`."""
        for block in state or []:
            actionable = tuple(sorted(block.get("actionable") or ()))
            donors = list(block.get("donors") or [])
            if actionable and donors:
                self._recourse_warm[actionable] = donors

    def recourse(
        self,
        index: int,
        actionable: Sequence[str],
        alpha: float = 0.8,
        cost_fn: CostFn | None = None,
        mode: str = "exact",
    ) -> Recourse:
        """Minimal-cost recourse for the individual at ``index``.

        ``mode="anytime"`` trades exactness for latency: the answer is a
        greedy LP rounding carrying a certified ``optimality_gap``.
        """
        solver = self._recourse_solver(actionable, cost_fn)
        return solver.solve(self.data.row_codes(int(index)), alpha=alpha, mode=mode)

    def recourse_batch(
        self,
        indices: Sequence[int],
        actionable: Sequence[str],
        alpha: float = 0.8,
        cost_fn: CostFn | None = None,
        on_infeasible: str = "raise",
        workers: int | None = None,
        mode: str = "exact",
    ) -> list[Recourse | None]:
        """Minimal-cost recourse for a cohort of individuals.

        Routes through :meth:`RecourseSolver.solve_batch`: one logit
        matrix pass for every base probability and one warm-started
        signature solve per *distinct* ``(current codes, context)``
        signature.  ``workers > 1`` spreads unsolved signatures over a
        process pool (results identical to serial); ``mode="anytime"``
        returns greedy solutions with certified gaps.  With
        ``on_infeasible="none"`` infeasible rows yield ``None`` instead
        of aborting the batch.
        """
        solver = self._recourse_solver(actionable, cost_fn)
        rows = [self.data.row_codes(int(i)) for i in indices]
        return solver.solve_batch(
            rows,
            alpha=alpha,
            on_infeasible=on_infeasible,
            workers=workers,
            mode=mode,
        )

    def recourse_audit(
        self,
        actionable: Sequence[str],
        alpha: float = 0.8,
        indices: Sequence[int] | None = None,
        cost_fn: CostFn | None = None,
        workers: int | None = None,
        mode: str = "exact",
    ) -> dict:
        """Cohort recourse audit: who can reach a positive decision, and how.

        Runs :meth:`recourse_batch` over ``indices`` (default: every
        individual with the negative decision) and aggregates the
        answers — feasibility counts, cost statistics over feasible
        recourses, and how often each actionable attribute appears in a
        recommended intervention.  ``workers`` and ``mode`` pass through
        to the solver; the summary's ``solver`` block reports its memo,
        certificate and warm-start counters.  The JSON-friendly summary
        backs the ``/v1/recourse/batch`` service endpoint and the CLI
        cohort mode.
        """
        chosen = (
            [int(i) for i in indices]
            if indices is not None
            else [int(i) for i in self.negative_indices()]
        )
        recourses = self.recourse_batch(
            chosen, actionable, alpha=alpha, cost_fn=cost_fn,
            on_infeasible="none", workers=workers, mode=mode,
        )
        feasible = [r for r in recourses if r is not None]
        costs = [r.total_cost for r in feasible if not r.is_empty]
        attribute_counts: dict[str, int] = {}
        for r in feasible:
            for action in r.actions:
                attribute_counts[action.attribute] = (
                    attribute_counts.get(action.attribute, 0) + 1
                )
        solver = self._recourse_solver(actionable, cost_fn)
        return {
            "n": len(chosen),
            "indices": chosen,
            "alpha": float(alpha),
            "mode": mode,
            "solver": solver.solution_memo_stats(),
            "feasible": len(feasible),
            "infeasible": len(recourses) - len(feasible),
            "already_satisfied": sum(r.is_empty for r in feasible),
            "mean_cost": float(np.mean(costs)) if costs else 0.0,
            "max_cost": float(np.max(costs)) if costs else 0.0,
            "attribute_counts": dict(
                sorted(attribute_counts.items(), key=lambda kv: -kv[1])
            ),
            "recourses": recourses,
        }

    def negative_indices(self) -> np.ndarray:
        """Row indices of individuals with the negative decision."""
        return np.nonzero(~self._positive)[0]

    def positive_indices(self) -> np.ndarray:
        """Row indices of individuals with the positive decision."""
        return np.nonzero(self._positive)[0]
