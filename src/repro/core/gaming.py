"""Gaming audit for recourse (the paper's Section 6 future work).

Strategic classification asks whether a recommended intervention
genuinely improves the individual's underlying qualification or merely
*games* the classifier by moving a proxy feature.  With a structural
causal model of the domain, the two are separable: re-run the SCM under
the recourse's intervention and compare

* the change in the **black box's** positive rate (what the recourse
  promised), against
* the change in the **true label mechanism's** positive rate (what the
  world would actually do).

A large positive gap — classifier improves, truth does not — is the
signature of a gaming-prone recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from repro.causal.scm import StructuralCausalModel
from repro.core.recourse import Recourse
from repro.data.table import Table
from repro.utils.rng import as_generator


@dataclass(frozen=True)
class GamingReport:
    """How a recourse's classifier gain compares with its true-label gain."""

    classifier_gain: float
    true_label_gain: float

    @property
    def gaming_index(self) -> float:
        """Classifier gain not backed by a true-label gain (>= 0 is bad)."""
        return self.classifier_gain - self.true_label_gain

    def is_gaming(self, tolerance: float = 0.15) -> bool:
        """True when the classifier gain outruns the true gain by more
        than ``tolerance`` probability mass."""
        return self.gaming_index > tolerance


def audit_recourse_gaming(
    recourse: Recourse,
    scm: StructuralCausalModel,
    predict_positive: Callable[[Table], np.ndarray],
    label: str,
    favourable_label_codes: tuple[int, ...] | int = 1,
    feature_names: list[str] | None = None,
    n_samples: int = 5_000,
    seed: int | np.random.Generator | None = 0,
) -> GamingReport:
    """Audit one recourse against the generating SCM.

    Parameters
    ----------
    recourse:
        The recommendation to audit (label-level actions).
    scm:
        Generating model including the true label node ``label``.
    predict_positive:
        The black box as a positive-decision function over feature tables.
    favourable_label_codes:
        Code(s) of the label counted as the truly favourable outcome.
    feature_names:
        Input columns of the black box (default: all SCM nodes but the
        label).
    """
    rng = as_generator(seed)
    if feature_names is None:
        feature_names = [n for n in scm.nodes if n != label]
    if isinstance(favourable_label_codes, int):
        favourable_label_codes = (favourable_label_codes,)

    interventions: Mapping[str, int] = {}
    sample_plain = scm.sample(n_samples, seed=rng)
    if not recourse.is_empty:
        interventions = {
            action.attribute: sample_plain.column(action.attribute).categories.index(
                action.new_value
            )
            for action in recourse.actions
        }
    exogenous = scm.draw_exogenous(n_samples, rng)
    factual = scm.to_table(scm.evaluate(exogenous))
    counterfactual = scm.to_table(scm.evaluate(exogenous, interventions))

    def rates(table: Table) -> tuple[float, float]:
        classifier = float(
            np.mean(np.asarray(predict_positive(table.select(feature_names)), float))
        )
        truth = float(np.isin(table.codes(label), favourable_label_codes).mean())
        return classifier, truth

    clf_before, truth_before = rates(factual)
    clf_after, truth_after = rates(counterfactual)
    return GamingReport(
        classifier_gain=clf_after - clf_before,
        true_label_gain=truth_after - truth_before,
    )
