"""Thread-safe process-wide metrics: counters, gauges, log-scale histograms.

One :class:`MetricsRegistry` per process (:func:`get_registry`) holds
every instrument under a namespaced, labelled metric name.  Subsystems
either *push* (``counter(...).inc()`` on the hot path) or register a
*collector* — a callable sampled at snapshot time — for state they
already track (cache hit counters, WAL sizes, solver memo sizes), so
the registry is the single source of truth the ``/metrics`` endpoint,
``/v1/stats`` and the ``repro obs`` CLI all read.

Design constraints, in order:

* **Cheap when idle.** Every instrument checks one module flag before
  touching its lock; :func:`set_enabled` (or ``REPRO_OBS=0``) turns the
  whole layer into no-ops.  The overhead benchmark gates the enabled
  path at <3% of the service smoke workload.
* **Stable snapshot schema.** :meth:`MetricsRegistry.snapshot` returns
  ``{"counters": {...}, "gauges": {...}, "histograms": {...}}`` keyed
  by the full metric name (labels inline, Prometheus style); the same
  snapshot renders to Prometheus text exposition format via
  :func:`render_prometheus` — stdlib only, no client library.
* **One cache-stats shape.** :class:`CacheStats` is the dataclass every
  cache in the system (result cache, engine tensor cache, local-model
  cache, session registry) reports through; ``legacy_dict()`` is the
  shim that keeps the historical ``stats()`` dict keys alive.
"""

from __future__ import annotations

import bisect
import math
import os
import re
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: module-wide enable flag; instruments check it before doing any work.
_ENABLED = os.environ.get("REPRO_OBS", "1").strip().lower() not in (
    "0",
    "false",
    "no",
    "off",
)


def enabled() -> bool:
    """Whether instruments record (``REPRO_OBS=0`` disables at import)."""
    return _ENABLED


def set_enabled(flag: bool) -> bool:
    """Flip the global instrument switch; returns the previous value.

    The overhead benchmark measures the same workload under both
    settings; tests use it to assert the disabled path is free.
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(flag)
    return previous


def _label_suffix(labels: Mapping[str, Any] | None) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        if not _LABEL_RE.match(str(key)):
            raise ValueError(f"invalid label name {key!r}")
        value = str(labels[key]).replace("\\", "\\\\").replace('"', '\\"')
        parts.append(f'{key}="{value}"')
    return "{" + ",".join(parts) + "}"


def full_name(name: str, labels: Mapping[str, Any] | None = None) -> str:
    """``name{label="value",...}`` with labels sorted — the snapshot key."""
    if not _NAME_RE.match(name):
        raise ValueError(f"invalid metric name {name!r}")
    return name + _label_suffix(labels)


#: log-scale latency buckets in seconds: 0.1 ms up to 60 s, roughly one
#: bucket per 2.5x.  Fixed at registration so bucket counts are stable
#: across snapshots and mergeable across processes.
DEFAULT_TIME_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


def log_buckets(lo: float, hi: float, per_decade: int = 3) -> tuple[float, ...]:
    """Log-spaced bucket bounds from ``lo`` to at least ``hi``.

    For instruments whose dynamic range is not latency-shaped (batch
    sizes, byte counts); rounded to 6 significant digits so the bounds
    render stably in the Prometheus output.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got ({lo}, {hi})")
    bounds = []
    exponent = math.floor(math.log10(lo) * per_decade)
    while True:
        bound = float(f"{10 ** (exponent / per_decade):.6g}")
        if bound >= lo and (not bounds or bound > bounds[-1]):
            bounds.append(bound)
        if bound >= hi:
            return tuple(bounds)
        exponent += 1


class Counter:
    """Monotone counter; ``inc`` is thread-safe and gated on the flag."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Point-in-time value; settable and incrementable."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    Bucket bounds are frozen at construction (log-scale by default) so
    an ``observe`` is a bisect plus two adds under the instrument's own
    lock — no allocation, no resize, safe from any thread.
    """

    __slots__ = ("name", "bounds", "_lock", "_counts", "_count", "_sum")

    def __init__(self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be strictly increasing and non-empty")
        self.name = name
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        if not _ENABLED:
            return
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def snapshot(self) -> dict:
        """``{"count", "sum", "buckets": [[le, cumulative], ...]}``."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            sum_ = self._sum
        cumulative = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            cumulative.append([bound, running])
        cumulative.append(["+Inf", total])
        return {"count": total, "sum": sum_, "buckets": cumulative}


# ---------------------------------------------------------------------------
# the unified cache-stats schema


@dataclass(frozen=True)
class CacheStats:
    """The one cache-statistics shape every cache in the system reports.

    Replaces the three historically divergent ``stats()`` dicts (result
    cache / engine tensor cache / local-model cache).  ``legacy_dict``
    reproduces the pre-unification key set exactly, so existing callers
    of the old ``stats()`` methods keep working — those dict shapes are
    deprecated in favour of this class and the registry's
    ``repro_cache_*`` gauges.
    """

    name: str
    entries: int
    bytes: int
    max_bytes: int | None
    max_entries: int | None
    hits: int
    misses: int
    evictions: int
    extra: Mapping[str, float] = field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return (self.hits / total) if total else 0.0

    @classmethod
    def from_lru(
        cls,
        name: str,
        lru,
        extra: Mapping[str, float] | None = None,
    ) -> "CacheStats":
        """Build from a :class:`~repro.utils.lru.ByteBudgetLRU`."""
        return cls(
            name=str(name),
            entries=len(lru._items),
            bytes=lru._bytes,
            max_bytes=lru.max_bytes,
            max_entries=lru.max_entries,
            hits=lru._hits,
            misses=lru._misses,
            evictions=lru._evictions,
            extra=dict(extra or {}),
        )

    def with_extra(self, extra: Mapping[str, float]) -> "CacheStats":
        """A copy with ``extra`` merged in (for cache-specific counters)."""
        import dataclasses

        return dataclasses.replace(self, extra={**dict(self.extra), **dict(extra)})

    def as_dict(self) -> dict:
        """The unified schema, JSON-ready."""
        return {
            "name": self.name,
            "entries": self.entries,
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            **dict(self.extra),
        }

    def legacy_dict(self) -> dict:
        """Deprecated pre-unification key set (the back-compat shim)."""
        return {
            "entries": self.entries,
            "bytes": self.bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate,
            **dict(self.extra),
        }

    def metric_samples(self, labels: Mapping[str, Any] | None = None) -> dict:
        """``repro_cache_*`` gauge samples for a registry collector."""
        labels = {"cache": self.name, **dict(labels or {})}
        samples = {
            full_name("repro_cache_entries", labels): float(self.entries),
            full_name("repro_cache_bytes", labels): float(self.bytes),
            full_name("repro_cache_hits_total", labels): float(self.hits),
            full_name("repro_cache_misses_total", labels): float(self.misses),
            full_name("repro_cache_evictions_total", labels): float(self.evictions),
            full_name("repro_cache_hit_rate", labels): float(self.hit_rate),
        }
        if self.max_bytes is not None:
            samples[full_name("repro_cache_max_bytes", labels)] = float(
                self.max_bytes
            )
        return samples


# ---------------------------------------------------------------------------
# the registry


class MetricsRegistry:
    """Namespaced process-wide registry of instruments and collectors.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: calling
    with the same ``(name, labels)`` returns the same instrument, so
    call sites need no registration ceremony.  A *collector* is a
    zero-argument callable returning ``{full_name: value}`` gauges
    sampled at snapshot time — the pull path for subsystems that
    already keep counters (caches, WAL, solver memos).  A collector
    that raises :class:`LookupError` is dropped (the idiom for weakref'd
    owners that have been garbage-collected); any other exception skips
    it for that snapshot and counts an error.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._types: dict[str, str] = {}
        self._help: dict[str, str] = {}
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, Callable[[], Mapping[str, float]]] = {}
        self._collector_errors = 0

    # -- instrument creation -----------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> None:
        existing = self._types.get(name)
        if existing is not None and existing != kind:
            raise ValueError(
                f"metric {name!r} already registered as {existing}, not {kind}"
            )
        self._types[name] = kind
        if help and name not in self._help:
            self._help[name] = str(help)

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
    ) -> Counter:
        key = full_name(name, labels)
        with self._lock:
            self._family(name, "counter", help)
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = Counter(key)
                self._counters[key] = instrument
            return instrument

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
    ) -> Gauge:
        key = full_name(name, labels)
        with self._lock:
            self._family(name, "gauge", help)
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = Gauge(key)
                self._gauges[key] = instrument
            return instrument

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Mapping[str, Any] | None = None,
        buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        key = full_name(name, labels)
        with self._lock:
            self._family(name, "histogram", help)
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = Histogram(key, buckets)
            elif instrument.bounds != tuple(float(b) for b in buckets):
                raise ValueError(
                    f"histogram {key!r} already registered with different buckets"
                )
            self._histograms[key] = instrument
            return instrument

    def declare(self, name: str, kind: str, help: str = "") -> None:
        """Register a family's TYPE/HELP without creating an instrument.

        For labelled families whose instruments are created lazily per
        label set: declaring at import time makes ``/metrics`` advertise
        the family from the first scrape.
        """
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        full_name(name)  # validates the family name
        with self._lock:
            self._family(name, kind, help)

    # -- collectors ----------------------------------------------------------

    def register_collector(
        self, key: str, fn: Callable[[], Mapping[str, float]]
    ) -> str:
        """Register (or replace) the collector stored under ``key``."""
        with self._lock:
            self._collectors[str(key)] = fn
        return str(key)

    def unregister_collector(self, key: str) -> bool:
        with self._lock:
            return self._collectors.pop(str(key), None) is not None

    def register_cache(
        self,
        key: str,
        supplier: Callable[[], CacheStats],
        labels: Mapping[str, Any] | None = None,
    ) -> str:
        """Collector shorthand: export a :class:`CacheStats` supplier."""
        labels = dict(labels or {})

        def collect() -> Mapping[str, float]:
            return supplier().metric_samples(labels)

        return self.register_collector(key, collect)

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Stable point-in-time view: counters, gauges, histograms.

        Collector outputs land in the ``gauges`` section (point-in-time
        samples by nature).  The shape is the contract ``/v1/stats``,
        ``/metrics`` and the CLI all build on.
        """
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.items())
            collectors = list(self._collectors.items())
        out = {
            "counters": {c.name: c.value for c in counters},
            "gauges": {g.name: g.value for g in gauges},
            "histograms": {key: h.snapshot() for key, h in histograms},
        }
        dead = []
        for key, fn in collectors:
            try:
                samples = fn()
            except LookupError:
                dead.append(key)
                continue
            except Exception:
                self._collector_errors += 1
                continue
            for name, value in samples.items():
                out["gauges"][name] = float(value)
        for key in dead:
            self.unregister_collector(key)
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of a snapshot."""
        return render_prometheus(self.snapshot(), self._types, self._help)

    def stats(self) -> dict:
        """Registry self-accounting (instrument/collector counts)."""
        with self._lock:
            return {
                "counters": len(self._counters),
                "gauges": len(self._gauges),
                "histograms": len(self._histograms),
                "collectors": len(self._collectors),
                "collector_errors": self._collector_errors,
            }

    def reset(self) -> None:
        """Drop every instrument and collector (tests only)."""
        with self._lock:
            self._types.clear()
            self._help.clear()
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._collectors.clear()
            self._collector_errors = 0


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(float(value))


def _split_labels(key: str) -> tuple[str, str]:
    """Split a full metric name into (family, label suffix incl. braces)."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


def _merge_le(suffix: str, le: Any) -> str:
    le_text = le if isinstance(le, str) else _format_value(float(le))
    if not suffix:
        return '{le="%s"}' % le_text
    return suffix[:-1] + ',le="%s"}' % le_text


def render_prometheus(
    snapshot: Mapping[str, Any],
    types: Mapping[str, str] | None = None,
    help: Mapping[str, str] | None = None,
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text.

    Families are sorted by name and samples within a family by label
    suffix, so the output is deterministic; histogram buckets emit the
    standard ``_bucket``/``_sum``/``_count`` triple with cumulative
    counts and a trailing ``+Inf`` bucket.
    """
    types = dict(types or {})
    help = dict(help or {})
    families: dict[str, list[str]] = {}

    def family_of(key: str, fallback_kind: str) -> str:
        name, _suffix = _split_labels(key)
        if name not in types:
            types[name] = fallback_kind
        return name

    for key in sorted(snapshot.get("counters", {})):
        name = family_of(key, "counter")
        value = snapshot["counters"][key]
        families.setdefault(name, []).append(f"{key} {_format_value(value)}")
    for key in sorted(snapshot.get("gauges", {})):
        name = family_of(key, "gauge")
        value = snapshot["gauges"][key]
        families.setdefault(name, []).append(f"{key} {_format_value(value)}")
    for key in sorted(snapshot.get("histograms", {})):
        name, suffix = _split_labels(key)
        if name not in types:
            types[name] = "histogram"
        data = snapshot["histograms"][key]
        lines = families.setdefault(name, [])
        for le, cumulative in data["buckets"]:
            lines.append(
                f"{name}_bucket{_merge_le(suffix, le)} {_format_value(cumulative)}"
            )
        lines.append(f"{name}_sum{suffix} {_format_value(data['sum'])}")
        lines.append(f"{name}_count{suffix} {_format_value(data['count'])}")

    out: list[str] = []
    for name in sorted(set(types) | set(families)):
        text = help.get(name)
        if text:
            escaped = text.replace("\\", "\\\\").replace("\n", "\\n")
            out.append(f"# HELP {name} {escaped}")
        out.append(f"# TYPE {name} {types.get(name, 'untyped')}")
        out.extend(families.get(name, []))
    return "\n".join(out) + "\n"


#: the process-wide default registry every subsystem pushes into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return REGISTRY


def preregister() -> None:
    """Import every instrumented subsystem so its metric families exist.

    ``/metrics`` should advertise the full family catalogue (with zero
    values) from the first scrape, not only after each subsystem has
    seen traffic; the server calls this once at startup.
    """
    import repro.estimation.engine  # noqa: F401
    import repro.core.recourse  # noqa: F401
    import repro.faults  # noqa: F401
    import repro.monitor.monitors  # noqa: F401
    import repro.replication.manager  # noqa: F401
    import repro.service.scheduler  # noqa: F401
    import repro.store.registry  # noqa: F401
    import repro.store.wal  # noqa: F401


__all__ = [
    "CacheStats",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "enabled",
    "full_name",
    "get_registry",
    "log_buckets",
    "preregister",
    "render_prometheus",
    "set_enabled",
]
