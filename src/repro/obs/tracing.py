"""Request tracing: trace/span context, bounded rings, slow capture.

A *trace* is born at a system edge — the HTTP server opens one per
request, the CLI one per command — and identified by a 16-hex-char
``trace_id`` that doubles as the request id quoted in responses, error
bodies and WAL records.  Within a trace, :func:`span` context managers
record named, timed sections; the current ``(trace_id, span_id)`` pair
lives in a :mod:`contextvars` variable so nesting works naturally
within a thread.

The serving stack crosses two boundaries a context variable cannot:

* **thread** — the micro-batcher's dispatch thread runs handler code on
  behalf of many caller threads.  ``submit`` captures
  :func:`current_context` into the queued item and the dispatcher
  re-enters it with :func:`attach`, so queue-wait and compute spans
  parent correctly.
* **process** — recourse chunk solves run on a process pool.  The chunk
  payload carries the context as plain data; workers return span
  timings in their result envelope and the parent replays them into
  the trace with :func:`record_span`.

Finished traces are appended to a bounded ring (newest win) plus a
separate, longer-lived ring for *slow* requests (root duration above
``REPRO_OBS_SLOW_MS``, default 100) so a burst of fast traffic cannot
evict the interesting outliers — the sampled slow-request capture.
``REPRO_PROFILE=1`` additionally runs cProfile over each root span in
its thread and attaches the top functions by cumulative time to the
trace.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from repro.obs import metrics as _metrics

#: (trace_id, span_id) of the innermost active span in this context.
_CONTEXT: contextvars.ContextVar[tuple[str, str] | None] = contextvars.ContextVar(
    "repro_obs_context", default=None
)

SLOW_MS_DEFAULT = float(os.environ.get("REPRO_OBS_SLOW_MS", "100"))
RING_CAPACITY = 256
SLOW_RING_CAPACITY = 64
PROFILE_TOP_N = 20


def new_id() -> str:
    """A fresh 16-hex-char trace/request id.

    ``os.urandom(8).hex()`` rather than ``uuid.uuid4()``: ids are minted
    several times per request (trace + every span), and skipping the
    UUID object construction keeps the always-on path cheap.
    """
    return os.urandom(8).hex()


#: read once at import: the env var is an opt-in set before launch, and
#: re-reading ``os.environ`` costs ~1 µs per trace on the always-on path.
_PROFILING = os.environ.get("REPRO_PROFILE", "").strip() == "1"


def profiling_enabled() -> bool:
    """Whether ``REPRO_PROFILE=1`` per-span cProfile capture is on.

    Captured at import time; tests can monkeypatch ``_PROFILING``.
    """
    return _PROFILING


def current_context() -> dict | None:
    """The active ``{"trace_id", "span_id"}`` as plain (picklable) data."""
    ctx = _CONTEXT.get()
    if ctx is None:
        return None
    return {"trace_id": ctx[0], "span_id": ctx[1]}


def current_trace_id() -> str | None:
    """The active trace id, if any — the request-correlation token."""
    ctx = _CONTEXT.get()
    return None if ctx is None else ctx[0]


def _profile_top(profile, limit: int = PROFILE_TOP_N) -> list[dict]:
    """Top functions by cumulative time from a cProfile run."""
    import pstats

    stats = pstats.Stats(profile)
    rows = []
    for (filename, lineno, name), entry in stats.stats.items():  # type: ignore[attr-defined]
        _cc, ncalls, tottime, cumtime = entry[:4]
        rows.append(
            {
                "function": f"{os.path.basename(filename)}:{lineno}:{name}",
                "calls": int(ncalls),
                "tottime_s": round(float(tottime), 6),
                "cumtime_s": round(float(cumtime), 6),
            }
        )
    rows.sort(key=lambda r: -r["cumtime_s"])
    return rows[:limit]


class Tracer:
    """Accumulates spans per trace and retains finished traces in rings."""

    def __init__(
        self,
        capacity: int = RING_CAPACITY,
        slow_capacity: int = SLOW_RING_CAPACITY,
        slow_ms: float = SLOW_MS_DEFAULT,
    ):
        self.slow_ms = float(slow_ms)
        self._lock = threading.Lock()
        self._active: dict[str, dict] = {}
        self._ring: deque[dict] = deque(maxlen=int(capacity))
        self._slow: deque[dict] = deque(maxlen=int(slow_capacity))
        self._started = 0
        self._finished = 0
        self._slow_captured = 0
        self._orphan_spans = 0

    # -- lifecycle of one trace ---------------------------------------------

    def begin(
        self, trace_id: str, name: str, tags: Mapping[str, Any] | None = None
    ) -> None:
        with self._lock:
            self._active[trace_id] = {
                "trace_id": trace_id,
                "name": name,
                "started_unix": time.time(),
                "tags": dict(tags or {}),
                "spans": [],
            }
            self._started += 1

    def add_span(self, trace_id: str, span: Mapping[str, Any]) -> None:
        """Append one finished span to an active trace (drop if unknown)."""
        with self._lock:
            active = self._active.get(trace_id)
            if active is None:
                self._orphan_spans += 1
                return
            active["spans"].append(dict(span))

    def finish(
        self,
        trace_id: str,
        duration_ms: float,
        status: str = "ok",
        profile: list[dict] | None = None,
        root_span: Mapping[str, Any] | None = None,
    ) -> dict | None:
        """Finalize a trace into the ring(s); returns the trace record.

        ``root_span`` lets the edge append its own span and finalize
        under one lock acquisition instead of two — the always-on path
        runs this once per request.
        """
        with self._lock:
            record = self._active.pop(trace_id, None)
            if record is None:
                return None
            if root_span is not None:
                record["spans"].append(dict(root_span))
            record["duration_ms"] = round(float(duration_ms), 3)
            record["status"] = status
            record["slow"] = duration_ms >= self.slow_ms
            record["n_spans"] = len(record["spans"])
            if profile:
                record["profile"] = profile
            self._ring.append(record)
            self._finished += 1
            if record["slow"]:
                self._slow.append(record)
                self._slow_captured += 1
            return record

    # -- reading -------------------------------------------------------------

    def peek_spans(self, trace_id: str) -> list[dict]:
        """Spans recorded so far for a still-active trace (copies)."""
        with self._lock:
            active = self._active.get(trace_id)
            return [dict(s) for s in active["spans"]] if active else []

    def get(self, trace_id: str) -> dict | None:
        """A finished trace by id (checks both rings, newest first)."""
        with self._lock:
            for ring in (self._ring, self._slow):
                for record in reversed(ring):
                    if record["trace_id"] == trace_id:
                        return dict(record)
        return None

    def query(
        self, min_ms: float = 0.0, limit: int = 50, slow_only: bool = False
    ) -> list[dict]:
        """Finished traces, newest first, filtered by root duration."""
        limit = max(0, int(limit))
        with self._lock:
            source = self._slow if slow_only else self._ring
            records = [dict(r) for r in reversed(source)]
        out = [r for r in records if r["duration_ms"] >= float(min_ms)]
        return out[:limit]

    def stats(self) -> dict:
        with self._lock:
            return {
                "active": len(self._active),
                "retained": len(self._ring),
                "slow_retained": len(self._slow),
                "started": self._started,
                "finished": self._finished,
                "slow_captured": self._slow_captured,
                "orphan_spans": self._orphan_spans,
                "slow_ms": self.slow_ms,
            }

    def clear(self) -> None:
        """Drop every active and retained trace (tests only)."""
        with self._lock:
            self._active.clear()
            self._ring.clear()
            self._slow.clear()


#: the process-wide tracer the server, CLI and instruments share.
TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-wide default tracer."""
    return TRACER


# ---------------------------------------------------------------------------
# context managers


@contextmanager
def trace(
    name: str,
    trace_id: str | None = None,
    tags: Mapping[str, Any] | None = None,
    tracer: Tracer | None = None,
) -> Iterator[str | None]:
    """Open a root span: the edge entry point (HTTP request, CLI command).

    Yields the trace id (``None`` when observability is disabled).  The
    trace is finalized into the tracer's rings when the block exits, so
    a follow-up ``/v1/traces`` query observes it immediately.
    """
    if not _metrics.enabled():
        yield None
        return
    tracer = tracer or TRACER
    tid = trace_id or new_id()
    root_span = new_id()
    token = _CONTEXT.set((tid, root_span))
    started_unix = time.time()
    tracer.begin(tid, name, tags)
    profile = None
    if profiling_enabled():
        import cProfile

        profile = cProfile.Profile()
        try:
            profile.enable()
        except ValueError:  # another profiler active in this thread
            profile = None
    started = time.perf_counter()
    status = "ok"
    try:
        yield tid
    except BaseException as exc:
        status = f"error:{type(exc).__name__}"
        raise
    finally:
        duration_ms = (time.perf_counter() - started) * 1e3
        if profile is not None:
            profile.disable()
        _CONTEXT.reset(token)
        tracer.finish(
            tid,
            duration_ms,
            status=status,
            profile=_profile_top(profile) if profile is not None else None,
            root_span={
                "span_id": root_span,
                "parent_id": None,
                "name": name,
                "started_unix": started_unix,
                "duration_ms": round(duration_ms, 3),
                "tags": dict(tags or {}),
            },
        )


@contextmanager
def span(
    name: str,
    tags: Mapping[str, Any] | None = None,
    tracer: Tracer | None = None,
) -> Iterator[None]:
    """Record a timed child span under the active trace (no-op outside one)."""
    ctx = _CONTEXT.get()
    if ctx is None or not _metrics.enabled():
        yield
        return
    tracer = tracer or TRACER
    tid, parent = ctx
    sid = new_id()
    token = _CONTEXT.set((tid, sid))
    started_unix = time.time()
    started = time.perf_counter()
    try:
        yield
    finally:
        _CONTEXT.reset(token)
        tracer.add_span(
            tid,
            {
                "span_id": sid,
                "parent_id": parent,
                "name": name,
                "started_unix": started_unix,
                "duration_ms": round((time.perf_counter() - started) * 1e3, 3),
                "tags": dict(tags or {}),
            },
        )


@contextmanager
def attach(ctx: Mapping[str, Any] | None) -> Iterator[None]:
    """Re-enter a captured :func:`current_context` on another thread."""
    if ctx is None or not _metrics.enabled():
        yield
        return
    token = _CONTEXT.set((str(ctx["trace_id"]), str(ctx["span_id"])))
    try:
        yield
    finally:
        _CONTEXT.reset(token)


def record_span(
    ctx: Mapping[str, Any] | None,
    name: str,
    duration_ms: float,
    started_unix: float | None = None,
    tags: Mapping[str, Any] | None = None,
    tracer: Tracer | None = None,
) -> None:
    """Replay an externally measured span into a trace.

    The path for timings measured where a context manager cannot run:
    queue waits measured across threads, chunk solves measured in pool
    worker processes and shipped home as plain data.
    """
    if ctx is None or not _metrics.enabled():
        return
    (tracer or TRACER).add_span(
        str(ctx["trace_id"]),
        {
            "span_id": new_id(),
            "parent_id": str(ctx.get("span_id") or "") or None,
            "name": name,
            "started_unix": time.time() if started_unix is None else started_unix,
            "duration_ms": round(float(duration_ms), 3),
            "tags": dict(tags or {}),
        },
    )


__all__ = [
    "PROFILE_TOP_N",
    "RING_CAPACITY",
    "SLOW_MS_DEFAULT",
    "SLOW_RING_CAPACITY",
    "TRACER",
    "Tracer",
    "attach",
    "current_context",
    "current_trace_id",
    "get_tracer",
    "new_id",
    "profiling_enabled",
    "record_span",
    "span",
    "trace",
]
