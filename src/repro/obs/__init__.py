"""Process-wide observability: metrics registry, request tracing, profiling.

Every layer of the serving stack — result cache, engine tensor cache,
micro-batcher, write-ahead log, recourse solver pool, monitors — used to
expose its own ad-hoc ``stats()`` dict and nothing else.  This package
gives them one shared measurement substrate:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket log-scale histograms with a stable
  snapshot schema and Prometheus text exposition, plus the unified
  :class:`CacheStats` schema every cache in the system reports through.
* :mod:`repro.obs.tracing` — ``trace_id``/span context created at the
  HTTP edge (and CLI entry) and propagated through the session, the
  micro-batcher's dispatch lane, and the recourse process pool (as
  plain chunk metadata); finished traces land in a bounded in-memory
  ring with a separate longer-lived ring for slow requests, and
  ``REPRO_PROFILE=1`` attaches a cProfile summary per root span.

The always-on path is cheap (one flag check plus a lock-guarded add per
event); ``REPRO_OBS=0`` or :func:`set_enabled` turns every instrument
into a no-op, which is what ``benchmarks/bench_obs_overhead.py`` uses
to prove the instrumented path stays within its <3% overhead budget.
"""

from repro.obs.metrics import (
    CacheStats,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    enabled,
    get_registry,
    preregister,
    render_prometheus,
    set_enabled,
)
from repro.obs.tracing import (
    Tracer,
    attach,
    current_context,
    current_trace_id,
    get_tracer,
    new_id,
    profiling_enabled,
    record_span,
    span,
    trace,
)

__all__ = [
    "CacheStats",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "attach",
    "current_context",
    "current_trace_id",
    "enabled",
    "get_registry",
    "get_tracer",
    "new_id",
    "preregister",
    "profiling_enabled",
    "record_span",
    "render_prometheus",
    "set_enabled",
    "span",
    "trace",
]
