"""Synthetic replica of the UCI drug-consumption dataset.

Per the paper's own description of the causal structure: ``country``,
``age``, ``gender`` and ``ethnicity`` are root nodes that affect both the
outcome and the other attributes (education and the five personality
measurements); the outcome is also affected by those other attributes.

The prediction task is the paper's multi-class one: when the individual
last consumed magic mushrooms — never / more than a decade ago / within
the last decade.  The favourable outcome is ``"never"``.
"""

from __future__ import annotations

from repro.causal.equations import linear_threshold, root_categorical
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.data.bundle import DatasetBundle

DOMAINS = {
    "country": ("UK", "other", "USA"),
    "age": ("18-24", "25-34", "35-44", "45+"),
    "gender": ("female", "male"),
    "ethnicity": ("other", "white"),
    "edu": ("left school", "some college", "bachelors", "masters+"),
    "openness": ("low", "medium", "high"),
    "conscientious": ("low", "medium", "high"),
    "extraversion": ("low", "medium", "high"),
    "impulsive": ("low", "medium", "high"),
    "sensation": ("low", "medium", "high"),
}

LABEL = "mushrooms"
#: ordered from most to least favourable (the paper's o1 > o2 > o3)
LABEL_DOMAIN = ("never", "decade ago", "last decade")

FEATURES = [
    "country",
    "age",
    "gender",
    "ethnicity",
    "edu",
    "openness",
    "conscientious",
    "extraversion",
    "impulsive",
    "sensation",
]

#: higher sensation/openness/impulsiveness raise usage (less favourable),
#: so favourability orderings are inferred from the black box.
UNORDERED = (
    "country",
    "gender",
    "ethnicity",
    "openness",
    "extraversion",
    "impulsive",
    "sensation",
)


def build_drug_scm() -> StructuralCausalModel:
    """The generating SCM; the usage label is the final equation."""
    eqs = [
        StructuralEquation(
            "country", (), DOMAINS["country"], root_categorical([0.55, 0.15, 0.3])
        ),
        StructuralEquation(
            "age", (), DOMAINS["age"], root_categorical([0.35, 0.3, 0.2, 0.15])
        ),
        StructuralEquation(
            "gender", (), DOMAINS["gender"], root_categorical([0.5, 0.5])
        ),
        StructuralEquation(
            "ethnicity", (), DOMAINS["ethnicity"], root_categorical([0.1, 0.9])
        ),
        StructuralEquation(
            "edu",
            ("age", "country"),
            DOMAINS["edu"],
            linear_threshold(
                {"age": 0.4, "country": 0.2}, cuts=[0.4, 1.1, 1.9], noise_scale=0.9
            ),
        ),
        StructuralEquation(
            "openness",
            ("age", "gender"),
            DOMAINS["openness"],
            linear_threshold(
                {"age": -0.2, "gender": 0.15}, bias=1.1, cuts=[0.7, 1.5], noise_scale=0.8
            ),
        ),
        StructuralEquation(
            "conscientious",
            ("age",),
            DOMAINS["conscientious"],
            linear_threshold({"age": 0.35}, bias=0.4, cuts=[0.7, 1.6], noise_scale=0.8),
        ),
        StructuralEquation(
            "extraversion",
            ("gender",),
            DOMAINS["extraversion"],
            linear_threshold({"gender": 0.2}, bias=0.8, cuts=[0.7, 1.4], noise_scale=0.8),
        ),
        StructuralEquation(
            "impulsive",
            ("age", "gender"),
            DOMAINS["impulsive"],
            linear_threshold(
                {"age": -0.35, "gender": 0.3}, bias=1.2, cuts=[0.7, 1.6], noise_scale=0.8
            ),
        ),
        StructuralEquation(
            "sensation",
            ("age", "gender", "impulsive"),
            DOMAINS["sensation"],
            linear_threshold(
                {"age": -0.3, "gender": 0.25, "impulsive": 0.4},
                bias=0.9,
                cuts=[0.8, 1.7],
                noise_scale=0.8,
            ),
        ),
        StructuralEquation(
            LABEL,
            (
                "country",
                "age",
                "sensation",
                "openness",
                "impulsive",
                "edu",
                "conscientious",
                "gender",
                "ethnicity",
            ),
            LABEL_DOMAIN,
            # Latent propensity: countries/personality raise usage;
            # education and conscientiousness lower it. Code 0 = never.
            linear_threshold(
                {
                    "country": 0.7,
                    "age": -0.3,
                    "sensation": 0.7,
                    "openness": 0.5,
                    "impulsive": 0.4,
                    "edu": -0.35,
                    "conscientious": -0.3,
                    "gender": 0.2,
                    "ethnicity": 0.2,
                },
                bias=-0.4,
                cuts=[0.8, 1.6],
                noise_scale=1.0,
            ),
        ),
    ]
    return StructuralCausalModel(eqs)


def generate_drug(n_rows: int = 1_886, seed: int | None = 0) -> DatasetBundle:
    """Generate the drug-consumption replica as a :class:`DatasetBundle`."""
    scm = build_drug_scm()
    table = scm.sample(n_rows, seed=seed)
    for name in UNORDERED:
        col = table.column(name)
        table = table.with_column(
            type(col)(col.name, col.codes, col.categories, ordered=False)
        )
    return DatasetBundle(
        name="drug",
        table=table,
        feature_names=list(FEATURES),
        label=LABEL,
        positive_label="never",
        graph=scm.diagram.subgraph(FEATURES),
        scm=scm,
        actionable=["edu"],
        contexts={
            "uk": {"country": "UK"},
            "usa": {"country": "USA"},
        },
    )
