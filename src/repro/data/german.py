"""Synthetic replica of the UCI German credit dataset.

The real file is not downloadable offline, so rows are generated from a
structural causal model whose diagram follows the causal structure the
paper relies on (Chiappa 2019 / Figure 2 of the paper): demographics
(``sex``, ``age``) drive employment, skill, savings, account status,
credit history, housing and the loan's shape (purpose, amount, duration,
investment rate), all of which drive the good/bad credit-risk label.

Column names and domains mirror the UCI schema closely enough that the
paper's figures (3a, 4a, 5, 9a, 10a/b) read the same way.
"""

from __future__ import annotations

from repro.causal.equations import (
    linear_threshold,
    logistic_binary,
    root_categorical,
)
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.data.bundle import DatasetBundle

#: attribute domains (ordinal unless noted)
DOMAINS = {
    "sex": ("Female", "Male"),
    "age": ("<25 yr", "25-35 yr", "35-50 yr", ">50 yr"),
    "employment": ("<1 yr", "1-4 yr", "4-7 yr", ">7 yr"),
    "skill": ("unskilled", "skilled", "highly qualified"),
    "housing": ("rent", "own"),
    "savings": ("<100 DM", "100-500 DM", "500-1000 DM", ">1000 DM"),
    "status": ("<0 DM", "0-200 DM", ">200 DM"),
    "credit_hist": ("delay in past", "existing paid", "all paid duly"),
    "property": ("none", "car", "real estate"),
    "purpose": ("repairs", "education", "furniture", "business", "car"),
    "credit_amount": ("<1000 DM", "1000-3000 DM", "3000-5000 DM", ">5000 DM"),
    "month": ("<12 months", "12-24 months", "24-36 months", ">36 months"),
    "invest": ("1%", "2%", "3%", "4%"),
    "debtors": ("none", "co-applicant", "guarantor"),
}

#: attributes without a natural favourability order (LEWIS infers one)
UNORDERED = ("purpose", "credit_amount", "month", "invest", "debtors")

LABEL = "credit_risk"
LABEL_DOMAIN = ("bad", "good")

FEATURES = [
    "sex",
    "age",
    "employment",
    "skill",
    "housing",
    "savings",
    "status",
    "credit_hist",
    "property",
    "purpose",
    "credit_amount",
    "month",
    "invest",
    "debtors",
]

ACTIONABLE = ["savings", "credit_amount", "month", "purpose", "invest"]


def build_german_scm() -> StructuralCausalModel:
    """The generating SCM; label included as the final equation."""
    eqs = [
        StructuralEquation("sex", (), DOMAINS["sex"], root_categorical([0.45, 0.55])),
        StructuralEquation(
            "age", (), DOMAINS["age"], root_categorical([0.2, 0.35, 0.3, 0.15])
        ),
        StructuralEquation(
            "employment",
            ("age",),
            DOMAINS["employment"],
            linear_threshold({"age": 0.9}, cuts=[0.7, 1.7, 2.7], noise_scale=0.8),
        ),
        StructuralEquation(
            "skill",
            ("employment", "sex"),
            DOMAINS["skill"],
            linear_threshold(
                {"employment": 0.5, "sex": 0.3}, cuts=[0.7, 1.9], noise_scale=0.7
            ),
        ),
        StructuralEquation(
            "savings",
            ("employment", "age"),
            DOMAINS["savings"],
            linear_threshold(
                {"employment": 0.6, "age": 0.4}, cuts=[1.0, 2.0, 3.0], noise_scale=0.9
            ),
        ),
        StructuralEquation(
            "housing",
            ("age", "savings"),
            DOMAINS["housing"],
            logistic_binary({"age": 0.5, "savings": 0.6}, bias=-1.8),
        ),
        StructuralEquation(
            "status",
            ("savings", "employment"),
            DOMAINS["status"],
            linear_threshold(
                {"savings": 0.6, "employment": 0.3}, cuts=[1.0, 2.2], noise_scale=0.8
            ),
        ),
        StructuralEquation(
            "credit_hist",
            ("age", "employment"),
            DOMAINS["credit_hist"],
            linear_threshold(
                {"age": 0.5, "employment": 0.4}, cuts=[0.8, 2.2], noise_scale=0.8
            ),
        ),
        StructuralEquation(
            "property",
            ("housing", "savings"),
            DOMAINS["property"],
            linear_threshold(
                {"housing": 1.0, "savings": 0.4}, cuts=[0.8, 1.9], noise_scale=0.7
            ),
        ),
        StructuralEquation(
            "purpose",
            ("age",),
            DOMAINS["purpose"],
            linear_threshold({"age": 0.35}, cuts=[0.3, 0.9, 1.5, 2.1], noise_scale=1.0),
        ),
        StructuralEquation(
            "credit_amount",
            ("purpose", "savings"),
            DOMAINS["credit_amount"],
            linear_threshold(
                {"purpose": 0.4, "savings": 0.35}, cuts=[0.7, 1.6, 2.5], noise_scale=0.9
            ),
        ),
        StructuralEquation(
            "month",
            ("credit_amount", "purpose"),
            DOMAINS["month"],
            linear_threshold(
                {"credit_amount": 0.7, "purpose": 0.15},
                cuts=[0.7, 1.6, 2.5],
                noise_scale=0.8,
            ),
        ),
        StructuralEquation(
            "invest",
            ("credit_amount", "savings"),
            DOMAINS["invest"],
            linear_threshold(
                {"credit_amount": -0.4, "savings": 0.5},
                bias=1.5,
                cuts=[0.6, 1.5, 2.4],
                noise_scale=0.9,
            ),
        ),
        StructuralEquation(
            "debtors", (), DOMAINS["debtors"], root_categorical([0.8, 0.12, 0.08])
        ),
        StructuralEquation(
            LABEL,
            (
                "status",
                "credit_hist",
                "savings",
                "month",
                "credit_amount",
                "employment",
                "housing",
                "invest",
                "purpose",
            ),
            LABEL_DOMAIN,
            logistic_binary(
                {
                    "status": 1.1,
                    "credit_hist": 1.2,
                    "savings": 0.7,
                    "month": -0.6,
                    "credit_amount": -0.35,
                    "employment": 0.45,
                    "housing": 0.5,
                    "invest": 0.3,
                    "purpose": 0.25,
                },
                bias=-2.6,
            ),
        ),
    ]
    return StructuralCausalModel(eqs)


def generate_german(n_rows: int = 1_000, seed: int | None = 0) -> DatasetBundle:
    """Generate the German credit replica as a :class:`DatasetBundle`."""
    scm = build_german_scm()
    table = scm.sample(n_rows, seed=seed)
    # Mark the attributes LEWIS should infer orderings for.
    for name in UNORDERED:
        col = table.column(name)
        table = table.with_column(
            type(col)(col.name, col.codes, col.categories, ordered=False)
        )
    return DatasetBundle(
        name="german",
        table=table,
        feature_names=list(FEATURES),
        label=LABEL,
        positive_label="good",
        graph=scm.diagram.subgraph(FEATURES),
        scm=scm,
        actionable=list(ACTIONABLE),
        contexts={
            "young": {"age": "<25 yr"},
            "old": {"age": ">50 yr"},
            "male": {"sex": "Male"},
            "female": {"sex": "Female"},
        },
    )
