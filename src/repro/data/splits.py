"""Train/test splitting utilities."""

from __future__ import annotations

import numpy as np

from repro.data.table import Table
from repro.utils.rng import as_generator


def train_test_split(
    table: Table,
    test_fraction: float = 0.3,
    seed: int | np.random.Generator | None = None,
    stratify: str | None = None,
) -> tuple[Table, Table]:
    """Split ``table`` into (train, test) by row shuffling.

    Parameters
    ----------
    test_fraction:
        Fraction of rows assigned to the test split, in (0, 1).
    stratify:
        Optional column name; when given, each category contributes
        proportionally to both splits (useful for rare outcome labels).
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_generator(seed)
    n = len(table)
    if stratify is None:
        order = rng.permutation(n)
        n_test = int(round(n * test_fraction))
        return table.take(order[n_test:]), table.take(order[:n_test])

    codes = table.codes(stratify)
    train_idx: list[np.ndarray] = []
    test_idx: list[np.ndarray] = []
    for code in np.unique(codes):
        members = np.nonzero(codes == code)[0]
        members = rng.permutation(members)
        n_test = int(round(len(members) * test_fraction))
        test_idx.append(members[:n_test])
        train_idx.append(members[n_test:])
    train = rng.permutation(np.concatenate(train_idx))
    test = rng.permutation(np.concatenate(test_idx))
    return table.take(train), table.take(test)
