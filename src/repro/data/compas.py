"""Synthetic replica of the ProPublica COMPAS dataset.

Generated from an SCM following the fair-inference diagram the paper
cites (Nabi & Shpitser 2018): demographics (``race``, ``sex``,
``age_cat``) drive juvenile and adult criminal history, which drive both
the two-year recidivism label and the COMPAS *software score*.  The
software-score mechanism deliberately encodes the racial bias ProPublica
documented (the same criminal history scores higher for Black
defendants), so the contextual experiments of Figures 4c/4d reproduce
their shape.

The favourable decision throughout is "predicted NOT to recidivate" /
"low software score".
"""

from __future__ import annotations

import numpy as np

from repro.causal.equations import (
    linear_threshold,
    logistic_binary,
    root_categorical,
)
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.data.bundle import DatasetBundle
from repro.data.table import Table

DOMAINS = {
    "race": ("White", "Black"),
    "sex": ("Female", "Male"),
    "age_cat": ("<25", "25-45", ">45"),
    "juv_fel_count": ("0", "1", "2+"),
    "priors_count": ("0", "1-3", "4-9", "10+"),
    "charge_degree": ("misdemeanor", "felony"),
}

#: every attribute's favourability is inferred from the black box: more
#: priors are *worse* for the defendant, so the raw count order is not a
#: favourability order (Section 4.1's ordering inference).
UNORDERED = tuple(DOMAINS)

LABEL = "two_year_recid"
LABEL_DOMAIN = ("no", "yes")

#: the software score column generated alongside the label
SCORE = "compas_score"
SCORE_DOMAIN = ("low", "medium", "high")

FEATURES = ["race", "sex", "age_cat", "juv_fel_count", "priors_count", "charge_degree"]


def build_compas_scm() -> StructuralCausalModel:
    """The generating SCM: history drives both the label and the score."""
    eqs = [
        StructuralEquation("race", (), DOMAINS["race"], root_categorical([0.45, 0.55])),
        StructuralEquation("sex", (), DOMAINS["sex"], root_categorical([0.2, 0.8])),
        StructuralEquation(
            "age_cat", (), DOMAINS["age_cat"], root_categorical([0.25, 0.55, 0.2])
        ),
        StructuralEquation(
            "juv_fel_count",
            ("race", "sex", "age_cat"),
            DOMAINS["juv_fel_count"],
            linear_threshold(
                {"race": 0.5, "sex": 0.3, "age_cat": -0.5},
                bias=0.3,
                cuts=[0.7, 1.4],
                noise_scale=0.8,
            ),
        ),
        StructuralEquation(
            "priors_count",
            ("race", "sex", "age_cat", "juv_fel_count"),
            DOMAINS["priors_count"],
            linear_threshold(
                {"race": 0.4, "sex": 0.3, "age_cat": 0.3, "juv_fel_count": 0.7},
                cuts=[0.8, 1.7, 2.6],
                noise_scale=0.9,
            ),
        ),
        StructuralEquation(
            "charge_degree",
            ("priors_count", "juv_fel_count"),
            DOMAINS["charge_degree"],
            logistic_binary({"priors_count": 0.4, "juv_fel_count": 0.4}, bias=-1.0),
        ),
        StructuralEquation(
            LABEL,
            ("priors_count", "juv_fel_count", "age_cat", "charge_degree", "sex"),
            LABEL_DOMAIN,
            logistic_binary(
                {
                    "priors_count": 0.9,
                    "juv_fel_count": 0.6,
                    "age_cat": -0.5,
                    "charge_degree": 0.3,
                    "sex": 0.2,
                },
                bias=-1.6,
            ),
        ),
        StructuralEquation(
            SCORE,
            ("priors_count", "juv_fel_count", "age_cat", "race"),
            SCORE_DOMAIN,
            # The documented bias: race enters the *score* directly even
            # though it does not enter the recidivism mechanism above, and
            # it amplifies the weight of criminal history.
            linear_threshold(
                {
                    "priors_count": 0.8,
                    "juv_fel_count": 0.7,
                    "age_cat": -0.4,
                    "race": 0.9,
                },
                cuts=[1.2, 2.4],
                noise_scale=0.6,
            ),
        ),
    ]
    return StructuralCausalModel(eqs)


def compas_software_positive(table: Table) -> np.ndarray:
    """The COMPAS "software" as a black box: positive = LOW risk score.

    A deterministic re-implementation of the score mechanism's central
    tendency (no exogenous noise), used when experiments explain the
    software itself rather than a trained classifier (Figures 3c, 4c, 4d).
    """
    latent = (
        0.8 * table.codes("priors_count")
        + 0.7 * table.codes("juv_fel_count")
        - 0.4 * table.codes("age_cat")
        + 0.9 * table.codes("race")
    )
    return latent < 1.8  # below the mid cut: low/medium risk


def generate_compas(n_rows: int = 5_200, seed: int | None = 0) -> DatasetBundle:
    """Generate the COMPAS replica as a :class:`DatasetBundle`.

    The bundle's label is two-year recidivism; positive (favourable)
    decision is ``"no"``. The generated table also carries the
    ``compas_score`` column for software-score experiments.
    """
    scm = build_compas_scm()
    table = scm.sample(n_rows, seed=seed)
    for name in UNORDERED:
        col = table.column(name)
        table = table.with_column(
            type(col)(col.name, col.codes, col.categories, ordered=False)
        )
    return DatasetBundle(
        name="compas",
        table=table,
        feature_names=list(FEATURES),
        label=LABEL,
        positive_label="no",
        graph=scm.diagram.subgraph(FEATURES),
        scm=scm,
        actionable=[],  # criminal history is not actionable (Section 5.3)
        contexts={
            "white": {"race": "White"},
            "black": {"race": "Black"},
        },
    )
