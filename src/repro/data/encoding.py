"""Feature encodings that turn a :class:`~repro.data.table.Table` into
numeric matrices consumable by the ML substrate.

Two encodings are provided:

* :func:`ordinal_matrix` — each column becomes one integer feature (its
  code). Appropriate for tree models, which split on thresholds over the
  ordinal codes.
* :class:`OneHotEncoder` — each category becomes one 0/1 feature.
  Appropriate for linear models, neural networks, LIME/SHAP surrogates and
  the recourse logit model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.table import Table
from repro.utils.validation import check_fitted


def ordinal_matrix(table: Table, names: Sequence[str] | None = None) -> np.ndarray:
    """Return the integer code matrix of ``names`` as ``float64``."""
    return table.codes_matrix(names).astype(np.float64)


class OneHotEncoder:
    """One-hot encoding with a fixed, fit-time feature layout.

    The layout is derived from column domains (not observed values), so
    transforming a table with unseen *rows* is always safe as long as the
    schema matches.
    """

    def __init__(self, drop_first: bool = False):
        self.drop_first = drop_first
        self.columns_: list[str] | None = None
        self.domains_: dict[str, tuple] | None = None
        self.feature_names_: list[str] | None = None
        self._slices: dict[str, slice] = {}

    def fit(self, table: Table, names: Sequence[str] | None = None) -> "OneHotEncoder":
        """Record the encoding layout from ``table``'s column domains."""
        names = list(names) if names is not None else table.names
        self.columns_ = names
        self.domains_ = {n: table.domain(n) for n in names}
        self.feature_names_ = []
        self._slices = {}
        start = 0
        for name in names:
            cats = self.domains_[name][1 if self.drop_first else 0:]
            self.feature_names_.extend(f"{name}={c}" for c in cats)
            self._slices[name] = slice(start, start + len(cats))
            start += len(cats)
        return self

    @property
    def n_features(self) -> int:
        """Width of the encoded matrix."""
        check_fitted(self, "feature_names_")
        return len(self.feature_names_)

    def transform(self, table: Table) -> np.ndarray:
        """Encode ``table`` into an ``(n, n_features)`` float matrix."""
        check_fitted(self, "columns_")
        n = len(table)
        out = np.zeros((n, self.n_features), dtype=np.float64)
        offset = 1 if self.drop_first else 0
        for name in self.columns_:
            col = table.column(name)
            if col.categories != self.domains_[name]:
                raise ValueError(
                    f"column {name!r}: domain changed since fit"
                )
            block = self._slices[name]
            codes = col.codes - offset
            valid = codes >= 0
            rows = np.nonzero(valid)[0]
            out[rows, block.start + codes[valid]] = 1.0
        return out

    def fit_transform(self, table: Table, names: Sequence[str] | None = None) -> np.ndarray:
        """Fit the layout on ``table`` and return its encoding."""
        return self.fit(table, names).transform(table)

    def transform_codes(self, codes: dict[str, int]) -> np.ndarray:
        """Encode one row given as ``{column: code}``; returns shape (n_features,)."""
        check_fitted(self, "columns_")
        out = np.zeros(self.n_features, dtype=np.float64)
        offset = 1 if self.drop_first else 0
        for name in self.columns_:
            code = codes[name] - offset
            if code >= 0:
                out[self._slices[name].start + code] = 1.0
        return out

    def transform_codes_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Encode an ``(n, len(columns_))`` integer code matrix in one pass.

        Columns of ``matrix`` align with :attr:`columns_` (fit order).
        Equivalent to stacking :meth:`transform_codes` row by row, but
        the whole indicator matrix is scattered with one fancy-index
        assignment per column instead of N Python-level row builds.
        """
        check_fitted(self, "columns_")
        matrix = np.asarray(matrix)
        if matrix.ndim != 2 or matrix.shape[1] != len(self.columns_):
            raise ValueError(
                f"code matrix must be (n, {len(self.columns_)}); "
                f"got shape {matrix.shape}"
            )
        n = matrix.shape[0]
        out = np.zeros((n, self.n_features), dtype=np.float64)
        offset = 1 if self.drop_first else 0
        for j, name in enumerate(self.columns_):
            codes = matrix[:, j].astype(np.int64) - offset
            valid = codes >= 0
            rows = np.nonzero(valid)[0]
            out[rows, self._slices[name].start + codes[valid]] = 1.0
        return out

    def feature_slice(self, name: str) -> slice:
        """Return the slice of encoded features belonging to column ``name``."""
        check_fitted(self, "columns_")
        return self._slices[name]
