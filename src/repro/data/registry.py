"""Dataset registry: one-call loading by name."""

from __future__ import annotations

from typing import Callable

from repro.data.adult import generate_adult
from repro.data.bundle import DatasetBundle
from repro.data.compas import generate_compas
from repro.data.drug import generate_drug
from repro.data.german import generate_german
from repro.data.synthetic import generate_german_syn, generate_wide

_LOADERS: dict[str, Callable[..., DatasetBundle]] = {
    "german": generate_german,
    "adult": generate_adult,
    "compas": generate_compas,
    "drug": generate_drug,
    "german_syn": generate_german_syn,
    "wide": generate_wide,
}

#: paper-scale default row counts (Table 2)
DEFAULT_ROWS = {
    "german": 1_000,
    "adult": 48_000,
    "compas": 5_200,
    "drug": 1_886,
    "german_syn": 10_000,
    "wide": 5_000,
}


def available_datasets() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_LOADERS)


def load_dataset(name: str, n_rows: int | None = None, seed: int | None = 0, **kwargs) -> DatasetBundle:
    """Generate the named dataset replica.

    ``n_rows`` defaults to the paper's scale (Table 2); extra keyword
    arguments are forwarded to the generator (e.g. ``violation=`` for
    ``german_syn``).
    """
    if name not in _LOADERS:
        raise KeyError(f"unknown dataset {name!r}; options: {available_datasets()}")
    loader = _LOADERS[name]
    if name == "wide":
        return loader(n_rows=n_rows or DEFAULT_ROWS[name], seed=seed, **kwargs)
    return loader(n_rows or DEFAULT_ROWS[name], seed=seed, **kwargs)
