"""Synthetic replica of the UCI Adult income dataset.

Generated from an SCM following the causal diagram the paper cites
(Chiappa 2019): demographics (``age``, ``sex``, ``country``) drive
education and marital status; education and sex drive occupation and
workclass; occupation / marital status / sex drive working hours; income
depends on all of them.  The replica deliberately encodes the dataset
quirks the paper discusses — married individuals report household income
(strong marital effect) and there is a favourable bias toward males — so
Figure 3b's "high necessity, low sufficiency for age" shape reproduces.
"""

from __future__ import annotations

from repro.causal.equations import (
    linear_threshold,
    logistic_binary,
    root_categorical,
)
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.data.bundle import DatasetBundle

DOMAINS = {
    "sex": ("Female", "Male"),
    "age": ("<=30 yr", "31-45 yr", "46-60 yr", ">60 yr"),
    "country": ("other", "USA"),
    "edu": ("dropout", "HS-grad", "bachelors", "masters+"),
    "marital": ("never married", "divorced", "married"),
    "occup": ("service", "blue-collar", "sales", "professional"),
    "class": ("private", "gov", "self-employed"),
    "hours": ("<30", "30-40", "40-50", ">50"),
}

UNORDERED = ("marital", "occup", "class")

LABEL = "income"
LABEL_DOMAIN = ("<=50K", ">50K")

FEATURES = ["sex", "age", "country", "edu", "marital", "occup", "class", "hours"]

ACTIONABLE = ["edu", "hours", "occup", "class"]


def build_adult_scm() -> StructuralCausalModel:
    """The generating SCM; the income label is the final equation."""
    eqs = [
        StructuralEquation("sex", (), DOMAINS["sex"], root_categorical([0.33, 0.67])),
        StructuralEquation(
            "age", (), DOMAINS["age"], root_categorical([0.3, 0.35, 0.25, 0.1])
        ),
        StructuralEquation(
            "country", (), DOMAINS["country"], root_categorical([0.1, 0.9])
        ),
        StructuralEquation(
            "edu",
            ("age", "sex", "country"),
            DOMAINS["edu"],
            linear_threshold(
                {"age": 0.25, "sex": 0.25, "country": 0.5},
                cuts=[0.5, 1.4, 2.2],
                noise_scale=0.9,
            ),
        ),
        StructuralEquation(
            "marital",
            ("age", "sex"),
            DOMAINS["marital"],
            linear_threshold(
                {"age": 0.8, "sex": 0.35}, cuts=[0.9, 1.7], noise_scale=0.9
            ),
        ),
        StructuralEquation(
            "occup",
            ("edu", "sex"),
            DOMAINS["occup"],
            linear_threshold(
                {"edu": 0.8, "sex": 0.3}, cuts=[0.8, 1.7, 2.6], noise_scale=0.9
            ),
        ),
        StructuralEquation(
            "class",
            ("edu", "occup"),
            DOMAINS["class"],
            linear_threshold(
                {"edu": 0.3, "occup": 0.3}, cuts=[1.0, 2.1], noise_scale=1.0
            ),
        ),
        StructuralEquation(
            "hours",
            ("occup", "marital", "sex"),
            DOMAINS["hours"],
            linear_threshold(
                {"occup": 0.4, "marital": 0.3, "sex": 0.3},
                cuts=[0.6, 1.5, 2.6],
                noise_scale=0.9,
            ),
        ),
        StructuralEquation(
            LABEL,
            ("edu", "occup", "marital", "hours", "age", "class", "sex"),
            LABEL_DOMAIN,
            logistic_binary(
                {
                    "edu": 0.8,
                    "occup": 0.7,
                    "marital": 1.2,  # household income for married rows
                    "hours": 0.6,
                    "age": 0.35,
                    "class": 0.3,
                    "sex": 0.4,  # the documented favourable male bias
                },
                bias=-6.2,
            ),
        ),
    ]
    return StructuralCausalModel(eqs)


def generate_adult(n_rows: int = 48_000, seed: int | None = 0) -> DatasetBundle:
    """Generate the Adult income replica as a :class:`DatasetBundle`."""
    scm = build_adult_scm()
    table = scm.sample(n_rows, seed=seed)
    for name in UNORDERED:
        col = table.column(name)
        table = table.with_column(
            type(col)(col.name, col.codes, col.categories, ordered=False)
        )
    return DatasetBundle(
        name="adult",
        table=table,
        feature_names=list(FEATURES),
        label=LABEL,
        positive_label=">50K",
        graph=scm.diagram.subgraph(FEATURES),
        scm=scm,
        actionable=list(ACTIONABLE),
        contexts={
            "young": {"age": "<=30 yr"},
            "old": {"age": "46-60 yr"},
            "male": {"sex": "Male"},
            "female": {"sex": "Female"},
        },
    )
