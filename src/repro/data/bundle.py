"""Dataset bundle: a table plus the causal metadata LEWIS needs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.data.table import Table

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.causal.graph import CausalDiagram
    from repro.causal.scm import StructuralCausalModel


@dataclass
class DatasetBundle:
    """Everything an experiment needs about one dataset.

    Attributes
    ----------
    name:
        Dataset identifier (``"german"``, ``"adult"``, ...).
    table:
        Generated rows, label column included.
    feature_names:
        Input attributes of the decision algorithm, in order.
    label:
        Name of the training label column (the *dataset* outcome, distinct
        from the black-box prediction column LEWIS explains).
    positive_label:
        The label value regarded as the favourable decision ``o``.
    graph:
        Background causal diagram over the feature attributes (and label).
    scm:
        The generating structural causal model; used for ground-truth
        counterfactuals on synthetic validation data.
    actionable:
        Attributes a recourse intervention may change.
    contexts:
        Named sub-population definitions used by contextual experiments,
        e.g. ``{"young": {"age": "<=30"}}``.
    """

    name: str
    table: Table
    feature_names: list[str]
    label: str
    positive_label: Any
    graph: "CausalDiagram"
    scm: "StructuralCausalModel | None" = None
    actionable: list[str] = field(default_factory=list)
    contexts: dict[str, dict[str, Any]] = field(default_factory=dict)

    @property
    def features(self) -> Table:
        """Return the feature columns only."""
        return self.table.select(self.feature_names)

    @property
    def labels(self) -> Table:
        """Return the label column as a one-column table."""
        return self.table.select([self.label])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DatasetBundle({self.name!r}, rows={len(self.table)}, "
            f"features={len(self.feature_names)}, label={self.label!r})"
        )
