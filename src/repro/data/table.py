"""A minimal column-typed tabular container with discrete domains.

LEWIS operates on discrete, finite attribute domains (continuous values
are binned, Section 2 of the paper).  :class:`Column` therefore stores a
vector of small integer *codes* alongside an ordered tuple of *categories*
(the decoded labels).  :class:`Table` is an ordered collection of equal
length columns with the slicing/filtering/grouping operations the rest of
the library needs.  Both types are immutable-by-convention: operations
return new objects and never mutate in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.utils.exceptions import DomainError
from repro.utils.validation import check_same_length


@dataclass(frozen=True)
class Column:
    """A named vector of integer codes over an ordered categorical domain.

    Parameters
    ----------
    name:
        Attribute name.
    codes:
        Integer array; ``codes[i]`` indexes into ``categories``.
    categories:
        Ordered tuple of category labels. For ordinal attributes the tuple
        order *is* the attribute order used by LEWIS (``x > x'`` means the
        code of ``x`` is larger).
    ordered:
        Whether the category order carries meaning. When ``False``, LEWIS
        infers an ordering from the black-box output (Section 4.1).
    """

    name: str
    codes: np.ndarray
    categories: tuple
    ordered: bool = True

    def __post_init__(self) -> None:
        codes = np.asarray(self.codes, dtype=np.int64)
        object.__setattr__(self, "codes", codes)
        object.__setattr__(self, "categories", tuple(self.categories))
        if codes.ndim != 1:
            raise ValueError(f"column {self.name!r}: codes must be 1-D")
        if codes.size and (codes.min() < 0 or codes.max() >= len(self.categories)):
            raise DomainError(
                f"column {self.name!r}: codes outside [0, {len(self.categories)})"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_values(
        cls,
        name: str,
        values: Sequence[Any],
        categories: Sequence[Any] | None = None,
        ordered: bool = True,
    ) -> "Column":
        """Build a column from raw labels, inferring the domain if needed.

        When ``categories`` is omitted the domain is the sorted set of
        distinct values (numpy-sortable values only).
        """
        values = list(values)
        if categories is None:
            try:
                categories = sorted(set(values))
            except TypeError:
                categories = list(dict.fromkeys(values))
        index = {c: i for i, c in enumerate(categories)}
        try:
            codes = np.fromiter((index[v] for v in values), dtype=np.int64, count=len(values))
        except KeyError as exc:
            raise DomainError(
                f"column {name!r}: value {exc.args[0]!r} not in categories"
            ) from exc
        return cls(name, codes, tuple(categories), ordered)

    @classmethod
    def from_codes(
        cls,
        name: str,
        codes: np.ndarray,
        categories: Sequence[Any],
        ordered: bool = True,
    ) -> "Column":
        """Build a column directly from integer codes."""
        return cls(name, np.asarray(codes, dtype=np.int64), tuple(categories), ordered)

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return int(self.codes.size)

    @property
    def cardinality(self) -> int:
        """Number of categories in the domain."""
        return len(self.categories)

    def decode(self) -> list:
        """Return the column as a list of category labels."""
        return [self.categories[c] for c in self.codes]

    def code_of(self, value: Any) -> int:
        """Return the integer code of ``value``; raise if absent."""
        try:
            return self.categories.index(value)
        except ValueError as exc:
            raise DomainError(
                f"column {self.name!r}: {value!r} not in domain {self.categories!r}"
            ) from exc

    def value_counts(self) -> dict:
        """Return ``{category: count}`` including zero-count categories."""
        counts = np.bincount(self.codes, minlength=self.cardinality)
        return {cat: int(n) for cat, n in zip(self.categories, counts)}

    # -- transformations ---------------------------------------------------

    def take(self, indices: np.ndarray) -> "Column":
        """Return a new column with rows at ``indices``."""
        return Column(self.name, self.codes[indices], self.categories, self.ordered)

    def replaced(self, codes: np.ndarray) -> "Column":
        """Return a copy of this column with new codes, same domain."""
        return Column(self.name, codes, self.categories, self.ordered)

    def renamed(self, name: str) -> "Column":
        """Return a copy of this column under a new name."""
        return Column(name, self.codes, self.categories, self.ordered)

    def with_order(self, categories: Sequence[Any]) -> "Column":
        """Return a copy with the domain reordered to ``categories``.

        Codes are remapped so decoded values are unchanged. Used when LEWIS
        infers an attribute ordering from the black box (Section 4.1).
        """
        if set(categories) != set(self.categories):
            raise DomainError(
                f"column {self.name!r}: reorder must be a permutation of the domain"
            )
        new_index = {c: i for i, c in enumerate(categories)}
        remap = np.array([new_index[c] for c in self.categories], dtype=np.int64)
        return Column(self.name, remap[self.codes], tuple(categories), ordered=True)


def bin_numeric(
    name: str,
    values: np.ndarray,
    bins: int = 5,
    edges: Sequence[float] | None = None,
    labels: Sequence[Any] | None = None,
) -> Column:
    """Discretise a continuous vector into an ordinal :class:`Column`.

    ``edges`` are interior cut points; when omitted, quantile cuts are
    used. Labels default to readable interval strings.
    """
    values = np.asarray(values, dtype=float)
    if edges is None:
        qs = np.linspace(0, 1, bins + 1)[1:-1]
        edges = np.unique(np.quantile(values, qs))
    edges = np.asarray(edges, dtype=float)
    codes = np.searchsorted(edges, values, side="right")
    if labels is None:
        bounds = [-np.inf, *edges.tolist(), np.inf]
        labels = [
            f"[{lo:g}, {hi:g})" for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
    return Column(name, codes, tuple(labels), ordered=True)


class Table:
    """An ordered collection of equal-length :class:`Column` objects."""

    def __init__(self, columns: Iterable[Column]):
        cols = list(columns)
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names: {names}")
        check_same_length(*cols)
        self._columns: dict[str, Column] = {c.name: c for c in cols}

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Sequence[Any]],
        domains: Mapping[str, Sequence[Any]] | None = None,
        unordered: Iterable[str] = (),
    ) -> "Table":
        """Build a table from ``{name: values}`` with optional domains."""
        domains = domains or {}
        unordered = set(unordered)
        cols = [
            Column.from_values(
                name, values, domains.get(name), ordered=name not in unordered
            )
            for name, values in data.items()
        ]
        return cls(cols)

    @classmethod
    def from_codes(
        cls,
        codes: Mapping[str, np.ndarray],
        domains: Mapping[str, Sequence[Any]],
        unordered: Iterable[str] = (),
    ) -> "Table":
        """Build a table directly from code arrays and explicit domains."""
        unordered = set(unordered)
        cols = [
            Column.from_codes(name, arr, domains[name], ordered=name not in unordered)
            for name, arr in codes.items()
        ]
        return cls(cols)

    # -- accessors ----------------------------------------------------------

    def __len__(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns.values())

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    @property
    def names(self) -> list[str]:
        """Column names in insertion order."""
        return list(self._columns)

    @property
    def n_rows(self) -> int:
        """Number of rows."""
        return len(self)

    @property
    def n_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    def column(self, name: str) -> Column:
        """Return the column called ``name``."""
        try:
            return self._columns[name]
        except KeyError as exc:
            raise KeyError(
                f"no column {name!r}; available: {self.names}"
            ) from exc

    def codes(self, name: str) -> np.ndarray:
        """Return the integer codes of column ``name``."""
        return self.column(name).codes

    def domain(self, name: str) -> tuple:
        """Return the ordered category tuple of column ``name``."""
        return self.column(name).categories

    def row(self, index: int) -> dict:
        """Return row ``index`` decoded as ``{column: label}``."""
        return {
            name: col.categories[col.codes[index]]
            for name, col in self._columns.items()
        }

    def row_codes(self, index: int) -> dict:
        """Return row ``index`` as ``{column: code}``."""
        return {name: int(col.codes[index]) for name, col in self._columns.items()}

    # -- matrix views --------------------------------------------------------

    def codes_matrix(self, names: Sequence[str] | None = None) -> np.ndarray:
        """Stack the code vectors of ``names`` into an ``(n, d)`` matrix."""
        names = list(names) if names is not None else self.names
        if not names:
            return np.empty((len(self), 0), dtype=np.int64)
        return np.column_stack([self.codes(n) for n in names])

    # -- filtering / reshaping ------------------------------------------------

    def take(self, indices: np.ndarray) -> "Table":
        """Return a new table with rows at ``indices``."""
        indices = np.asarray(indices)
        return Table(col.take(indices) for col in self)

    def mask(self, **conditions: Any) -> np.ndarray:
        """Return a boolean row mask for ``column=label`` equality conditions."""
        out = np.ones(len(self), dtype=bool)
        for name, value in conditions.items():
            col = self.column(name)
            out &= col.codes == col.code_of(value)
        return out

    def filter(self, **conditions: Any) -> "Table":
        """Return the sub-table of rows matching all equality conditions."""
        return self.take(np.nonzero(self.mask(**conditions))[0])

    def select(self, names: Sequence[str]) -> "Table":
        """Return a table restricted to ``names`` (in the given order)."""
        return Table(self.column(n) for n in names)

    def drop(self, names: Iterable[str]) -> "Table":
        """Return a table without the columns in ``names``."""
        dropped = set(names)
        return Table(col for col in self if col.name not in dropped)

    def with_column(self, column: Column) -> "Table":
        """Return a table with ``column`` appended or replaced by name."""
        if self._columns:
            check_same_length(self, column)
        cols = dict(self._columns)
        cols[column.name] = column
        return Table(cols.values())

    # -- delta hooks (incremental serving) -----------------------------------

    def encode_rows(
        self, rows: Sequence[Mapping[str, Any]]
    ) -> dict[str, np.ndarray]:
        """Translate label-level ``rows`` into full-schema code arrays.

        Every row must assign every column; values outside a column's
        domain raise :class:`DomainError`. This is the validation step in
        front of :meth:`append_rows` and the engine's ``apply_delta``.
        """
        rows = list(rows)
        out: dict[str, np.ndarray] = {}
        for name, col in self._columns.items():
            codes = np.empty(len(rows), dtype=np.int64)
            for i, row in enumerate(rows):
                if name not in row:
                    raise DomainError(
                        f"row {i} is missing column {name!r}; "
                        f"rows must cover the full schema {self.names}"
                    )
                codes[i] = col.code_of(row[name])
            out[name] = codes
        return out

    def append_rows(self, rows: Sequence[Mapping[str, Any]]) -> "Table":
        """Return a table with decoded ``rows`` appended (same domains)."""
        encoded = self.encode_rows(rows)
        return Table(
            col.replaced(np.concatenate([col.codes, encoded[name]]))
            for name, col in self._columns.items()
        )

    def delete_rows(self, indices: Sequence[int] | np.ndarray) -> "Table":
        """Return a table without the rows at ``indices``."""
        indices = np.unique(np.asarray(indices, dtype=np.intp))
        if indices.size and (indices[0] < 0 or indices[-1] >= len(self)):
            raise IndexError(f"row indices outside [0, {len(self)}): {indices}")
        keep = np.ones(len(self), dtype=bool)
        keep[indices] = False
        return self.take(np.nonzero(keep)[0])

    def schema_fingerprint(self) -> str:
        """Stable hex digest of the schema (names, domains, orderedness).

        Row *contents* are deliberately excluded — the serving layer pairs
        this with the engine's data-version token, so (fingerprint,
        version) identifies a table state without hashing the data.
        """
        import hashlib

        h = hashlib.sha1()
        for col in self:
            h.update(
                repr((col.name, col.categories, col.ordered)).encode("utf-8")
            )
        return h.hexdigest()

    def concat_rows(self, other: "Table") -> "Table":
        """Stack another table with identical schema below this one."""
        if self.names != other.names:
            raise ValueError("schemas differ; cannot concatenate rows")
        merged = []
        for name in self.names:
            a, b = self.column(name), other.column(name)
            if a.categories != b.categories:
                raise DomainError(f"column {name!r}: domains differ")
            merged.append(a.replaced(np.concatenate([a.codes, b.codes])))
        return Table(merged)

    def sample(self, n: int, rng: np.random.Generator, replace: bool = False) -> "Table":
        """Return ``n`` uniformly sampled rows."""
        indices = rng.choice(len(self), size=n, replace=replace)
        return self.take(indices)

    def map_column(self, name: str, func: Callable[[Any], Any]) -> "Table":
        """Return a table with ``func`` applied to each label of ``name``.

        The resulting column's domain is the image of the original domain
        in first-seen order.
        """
        col = self.column(name)
        mapped_domain = [func(c) for c in col.categories]
        new_categories = list(dict.fromkeys(mapped_domain))
        remap = np.array(
            [new_categories.index(m) for m in mapped_domain], dtype=np.int64
        )
        return self.with_column(
            Column(name, remap[col.codes], tuple(new_categories), col.ordered)
        )

    # -- aggregation ----------------------------------------------------------

    def group_sizes(self, names: Sequence[str]) -> dict[tuple, int]:
        """Return ``{(labels...): row count}`` over the given columns."""
        matrix = self.codes_matrix(names)
        cols = [self.column(n) for n in names]
        sizes: dict[tuple, int] = {}
        uniques, counts = np.unique(matrix, axis=0, return_counts=True)
        for combo, count in zip(uniques, counts):
            key = tuple(col.categories[c] for col, c in zip(cols, combo))
            sizes[key] = int(count)
        return sizes

    def to_rows(self) -> list[dict]:
        """Materialise the table as a list of decoded row dicts."""
        return [self.row(i) for i in range(len(self))]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        schema = ", ".join(
            f"{c.name}[{c.cardinality}]" for c in self
        )
        return f"Table({len(self)} rows: {schema})"
