"""Datasets and the lightweight tabular container used across the library.

The paper evaluates on four UCI/ProPublica benchmark datasets plus one
synthetic dataset.  Network access (and pandas) are unavailable in this
environment, so this subpackage provides:

* :class:`~repro.data.table.Table` / :class:`~repro.data.table.Column` — a
  small column-typed, discrete-domain tabular store,
* generators that synthesize statistically faithful replicas of German /
  Adult / COMPAS / Drug from hand-written structural causal models, and
* the German-syn generator used for ground-truth validation.
"""

from repro.data.table import Column, Table
from repro.data.encoding import OneHotEncoder, ordinal_matrix
from repro.data.splits import train_test_split
from repro.data.bundle import DatasetBundle


def __getattr__(name: str):
    # The registry pulls in the dataset generators, which depend on
    # repro.causal, which depends on repro.data.table — importing it
    # lazily keeps the package import graph acyclic.
    if name in ("available_datasets", "load_dataset"):
        from repro.data import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Column",
    "Table",
    "OneHotEncoder",
    "ordinal_matrix",
    "train_test_split",
    "DatasetBundle",
    "available_datasets",
    "load_dataset",
]
