"""German-syn and other fully synthetic validation datasets.

``German-syn`` (Table 2 / Figure 11 / Section 5.5) follows the German
causal graph in miniature: ``age`` and ``sex`` are roots that influence
the outcome only *indirectly* through ``saving`` and ``status`` (plus
``housing``), and the outcome is a continuous credit score in [0, 1]
produced by a smooth non-linear mechanism.  Because the generating SCM is
known, every estimated score can be compared against Pearl-three-step
ground truth.

The module also provides the wide chain SCM used by the recourse
scalability experiment (100 variables, Section 5.5).
"""

from __future__ import annotations

import numpy as np

from repro.causal.equations import (
    linear_threshold,
    logistic_binary,
    root_categorical,
)
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.data.bundle import DatasetBundle

DOMAINS = {
    "age": ("<25 yr", "25-40 yr", "40-60 yr", ">60 yr"),
    "sex": ("Female", "Male"),
    "saving": ("none", "low", "medium", "high"),
    "status": ("<0 DM", "0-200 DM", ">200 DM"),
    "housing": ("rent", "own"),
}

FEATURES = ["age", "sex", "saving", "status", "housing"]

LABEL = "credit_score"
#: score discretisation: 41 bins over [0, 1], labelled by bin centres
SCORE_BINS = 41
LABEL_DOMAIN = tuple(round(c, 4) for c in np.linspace(0.0, 1.0, SCORE_BINS))


def _score_mechanism(violation: float = 0.0):
    """Continuous credit score from (saving, status, housing, age).

    ``violation`` adds a direct, non-monotone age term (Section 5.5's
    robustness experiment); at 0 the score is monotone in every ordinal
    parent and ``age`` acts only through its descendants.
    """
    # Non-monotone shape over the four age codes: up then down.
    nonmono = np.array([0.0, 1.0, -1.0, 0.0])

    def score(parents, u) -> np.ndarray:
        saving = parents["saving"].astype(float)
        status = parents["status"].astype(float)
        housing = parents["housing"].astype(float)
        latent = (
            0.9 * status
            + 0.7 * saving
            + 0.5 * housing
            + 0.15 * status * saving
            - 2.1
        )
        if violation:
            latent = latent + violation * nonmono[parents["age"]]
        value = 1.0 / (1.0 + np.exp(-latent))
        codes = np.rint(value * (SCORE_BINS - 1)).astype(np.int64)
        return codes.clip(0, SCORE_BINS - 1)

    return score


def build_german_syn_scm(violation: float = 0.0) -> StructuralCausalModel:
    """German-syn SCM; pass ``violation > 0`` for the non-monotone variant."""
    eqs = [
        StructuralEquation(
            "age", (), DOMAINS["age"], root_categorical([0.2, 0.35, 0.3, 0.15])
        ),
        StructuralEquation("sex", (), DOMAINS["sex"], root_categorical([0.45, 0.55])),
        StructuralEquation(
            "saving",
            ("age", "sex"),
            DOMAINS["saving"],
            linear_threshold(
                {"age": 0.6, "sex": 0.3}, cuts=[0.6, 1.5, 2.4], noise_scale=0.9
            ),
        ),
        StructuralEquation(
            "status",
            ("age", "saving"),
            DOMAINS["status"],
            linear_threshold(
                {"age": 0.3, "saving": 0.6}, cuts=[0.9, 2.1], noise_scale=0.8
            ),
        ),
        StructuralEquation(
            "housing",
            ("saving",),
            DOMAINS["housing"],
            logistic_binary({"saving": 0.8}, bias=-1.4),
        ),
        StructuralEquation(
            LABEL,
            ("saving", "status", "housing", "age"),
            LABEL_DOMAIN,
            _score_mechanism(violation),
        ),
    ]
    return StructuralCausalModel(eqs)


def generate_german_syn(
    n_rows: int = 10_000,
    seed: int | None = 0,
    violation: float = 0.0,
) -> DatasetBundle:
    """Generate German-syn as a :class:`DatasetBundle`.

    The label column's categories are floats (bin centres of the credit
    score), so regression models can train on it directly.
    """
    scm = build_german_syn_scm(violation)
    table = scm.sample(n_rows, seed=seed)
    return DatasetBundle(
        name="german_syn",
        table=table,
        feature_names=list(FEATURES),
        label=LABEL,
        positive_label=None,  # regression outcome; threshold at 0.5
        graph=scm.diagram.subgraph(FEATURES),
        scm=scm,
        actionable=["saving", "status", "housing"],
        contexts={
            "young": {"age": "<25 yr"},
            "old": {"age": ">60 yr"},
        },
    )


# ---------------------------------------------------------------------------
# wide synthetic SCM for the recourse scalability experiment


def build_wide_scm(
    n_variables: int = 100,
    n_levels: int = 3,
    seed: int | None = 0,
) -> StructuralCausalModel:
    """A 100-variable SCM: independent ordinal features -> binary outcome.

    Matches the Section 5.5 scalability setting: the number of IP
    constraints grows linearly in the number of actionable variables.
    """
    rng = np.random.default_rng(seed)
    domain = tuple(f"v{i}" for i in range(n_levels))
    eqs = []
    weights: dict[str, float] = {}
    probs = np.full(n_levels, 1.0 / n_levels)
    for i in range(n_variables):
        name = f"X{i:03d}"
        eqs.append(StructuralEquation(name, (), domain, root_categorical(probs)))
        weights[name] = float(rng.uniform(0.2, 0.8))
    bias = -0.5 * sum(weights.values()) * (n_levels - 1)
    eqs.append(
        StructuralEquation(
            "outcome", tuple(weights), ("bad", "good"), logistic_binary(weights, bias)
        )
    )
    return StructuralCausalModel(eqs)


def generate_wide(
    n_variables: int = 100,
    n_rows: int = 5_000,
    seed: int | None = 0,
) -> DatasetBundle:
    """Generate the wide scalability dataset as a :class:`DatasetBundle`."""
    scm = build_wide_scm(n_variables, seed=seed)
    table = scm.sample(n_rows, seed=seed)
    features = [n for n in scm.nodes if n != "outcome"]
    return DatasetBundle(
        name="wide",
        table=table,
        feature_names=features,
        label="outcome",
        positive_label="good",
        graph=scm.diagram.subgraph(features),
        scm=scm,
        actionable=list(features),
    )
