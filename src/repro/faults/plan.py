"""Deterministic fault injection: seeded plans over named injection points.

The serving stack declares *injection points* — ``wal.append.fsync``,
``store.atomic_write``, ``recourse.chunk``, ``monitor.refresh``, and the
replication tier's ``repl.ship.{drop,dup,reorder}`` / ``repl.apply.crash``
/ ``repl.promote`` — at the exact lines where the real world fails (a
full disk, a crashed pool worker, a buggy monitor, a lossy network
between replicas, a node dying mid-promotion).  A :class:`FaultPlan` decides, deterministically
from a seed, which evaluations of which points misbehave.  Chaos tests
and the CI fault matrix install plans and then assert the *containment*
contracts: typed errors, labeled degradation, bit-identical recovery.

Design rules:

* **Zero overhead when disabled.**  Every hook starts with a module-
  global ``_PLAN is None`` check — one load and one jump on the hot
  path, nothing else.  The obs overhead gate (<3%) covers this.
* **Deterministic.**  Each point gets its own ``random.Random`` seeded
  from ``seed`` and a stable digest of the point name, so plans replay
  identically across runs and processes (``hash()`` randomization never
  leaks in).  Triggers: ``p=<float>`` (per-evaluation probability),
  ``every=<N>`` (every Nth evaluation), ``once`` (first evaluation
  only), plus ``after=<N>`` (skip the first N) and ``times=<N>``
  (stop after N fires).
* **Observable.**  Fires increment
  ``repro_faults_injected_total{point=...}`` in the metrics registry
  and the plan's own :meth:`FaultPlan.counts`.

Activation: set ``REPRO_FAULTS`` before import (e.g.
``"seed=7;wal.append.fsync:p=0.2;recourse.chunk:once,action=exit"``)
or use the :func:`repro.faults.plan` context manager in tests.
"""

from __future__ import annotations

import os
import random
import threading
import time
import zlib
from dataclasses import dataclass

from repro.obs import metrics as _obs

_obs.get_registry().declare(
    "repro_faults_injected_total",
    "counter",
    "Faults fired by the active fault plan.",
)


def _fired_counter(point: str):
    return _obs.get_registry().counter(
        "repro_faults_injected_total", labels={"point": point}
    )

_ACTIONS = ("raise", "exit", "sleep")


class InjectedFault(RuntimeError):
    """Default exception raised by a fired ``raise`` rule.

    Call sites that model a specific failure (an ``OSError`` from a
    full disk, say) pass their own exception factory to
    :func:`repro.faults.inject`; this type only surfaces where the
    generic failure is the realistic one.
    """


@dataclass
class FaultRule:
    """One point's trigger + action. See module docstring for semantics."""

    point: str
    probability: float = 0.0
    every: int = 0
    once: bool = False
    after: int = 0
    times: int = 0
    action: str = "raise"
    sleep_s: float = 0.05
    exit_code: int = 13

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; pick from {_ACTIONS}")
        if self.once:
            self.times = 1
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.probability == 0.0 and self.every == 0:
            # No trigger given: fire on every evaluation past `after`
            # (for `once` rules, `times` then caps that at one fire).
            self.every = 1


def _point_seed(seed: int, point: str) -> int:
    # crc32 is stable across processes and python versions, unlike hash()
    return (int(seed) ^ zlib.crc32(point.encode("utf-8"))) & 0xFFFFFFFF


class FaultPlan:
    """A seeded, deterministic schedule of faults over named points."""

    def __init__(self, rules: dict[str, FaultRule | dict], seed: int = 0):
        self.seed = int(seed)
        self._rules: dict[str, FaultRule] = {}
        for point, rule in rules.items():
            if isinstance(rule, dict):
                rule = FaultRule(point=point, **rule)
            self._rules[point] = rule
        self._lock = threading.Lock()
        self._evals: dict[str, int] = {point: 0 for point in self._rules}
        self._fired: dict[str, int] = {point: 0 for point in self._rules}
        self._rngs = {
            point: random.Random(_point_seed(self.seed, point)) for point in self._rules
        }

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``REPRO_FAULTS`` spec string.

        Grammar: semicolon-separated clauses.  ``seed=N`` sets the plan
        seed; every other clause is ``point:opt,opt,...`` where each opt
        is ``once`` | ``p=F`` | ``every=N`` | ``after=N`` | ``times=N``
        | ``action=raise|exit|sleep`` | ``sleep=F`` | ``exit_code=N``.
        """
        seed = 0
        rules: dict[str, FaultRule] = {}
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            if clause.startswith("seed="):
                seed = int(clause[5:])
                continue
            point, _, opts = clause.partition(":")
            point = point.strip()
            if not point:
                raise ValueError(f"fault clause without a point: {clause!r}")
            kwargs: dict = {}
            for opt in filter(None, (o.strip() for o in opts.split(","))):
                key, eq, value = opt.partition("=")
                key = {"p": "probability", "sleep": "sleep_s"}.get(key, key)
                if not eq:
                    if key != "once":
                        raise ValueError(f"unknown fault option {opt!r} for {point!r}")
                    kwargs["once"] = True
                elif key == "probability" or key == "sleep_s":
                    kwargs[key] = float(value)
                elif key in ("every", "after", "times", "exit_code"):
                    kwargs[key] = int(value)
                elif key == "action":
                    kwargs[key] = value
                else:
                    raise ValueError(f"unknown fault option {opt!r} for {point!r}")
            rules[point] = FaultRule(point=point, **kwargs)
        return cls(rules, seed=seed)

    # -- decisions ---------------------------------------------------------

    def decide(self, point: str) -> FaultRule | None:
        """Evaluate ``point`` once; the rule if this evaluation fires."""
        rule = self._rules.get(point)
        if rule is None:
            return None
        with self._lock:
            self._evals[point] += 1
            n = self._evals[point] - rule.after
            if n <= 0:
                return None
            if rule.times and self._fired[point] >= rule.times:
                return None
            if rule.every:
                fire = n % rule.every == 0
            else:
                fire = self._rngs[point].random() < rule.probability
            if not fire:
                return None
            self._fired[point] += 1
        if _obs.enabled():
            _fired_counter(point).inc()
        return rule

    # -- views -------------------------------------------------------------

    def counts(self) -> dict[str, dict[str, int]]:
        """Per-point ``{"evaluations": n, "fired": m}`` so far."""
        with self._lock:
            return {
                point: {"evaluations": self._evals[point], "fired": self._fired[point]}
                for point in self._rules
            }

    def points(self) -> tuple[str, ...]:
        return tuple(self._rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed}, points={list(self._rules)})"


def perform(rule: FaultRule, point: str, exc_factory=None) -> None:
    """Carry out a fired rule's action. ``sleep`` returns; others don't."""
    if rule.action == "exit":
        # simulate a crashed process (pool worker): no cleanup, no excepthook
        os._exit(rule.exit_code)
    if rule.action == "sleep":
        time.sleep(rule.sleep_s)
        return
    if exc_factory is not None:
        raise exc_factory()
    raise InjectedFault(f"injected fault at {point!r}")
