"""Fault-injection hooks for the serving stack.

Subsystems call :func:`inject` (raise/exit/sleep at this line if the
active plan says so) or :func:`fires` (just the decision — the call
site stages its own damage, e.g. a torn half-written record) at named
points.  Both are no-ops costing one global load when no plan is
installed, so production paths pay nothing.

Activate a plan with the ``REPRO_FAULTS`` environment variable (parsed
at import), :func:`install`, or the :func:`plan` context manager:

>>> import repro.faults as faults
>>> with faults.plan({"wal.append.fsync": {"once": True}}):
...     ...  # the next fsync in DeltaLog.append raises OSError

Pool workers started with the ``fork`` method inherit the installed
plan (state and all); ``spawn`` workers re-parse ``REPRO_FAULTS`` on
import, giving each worker a fresh deterministic copy.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.faults.plan import FaultPlan, FaultRule, InjectedFault, perform

__all__ = [
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "active_plan",
    "fires",
    "inject",
    "install",
    "plan",
]

_PLAN: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The installed plan, or ``None`` when fault injection is off."""
    return _PLAN


def install(new_plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``new_plan`` process-wide; returns the previous plan."""
    global _PLAN
    previous = _PLAN
    _PLAN = new_plan
    return previous


@contextmanager
def plan(
    rules: FaultPlan | dict | str, seed: int = 0
) -> Iterator[FaultPlan]:
    """Install a plan for the duration of a ``with`` block (tests)."""
    if isinstance(rules, FaultPlan):
        built = rules
    elif isinstance(rules, str):
        built = FaultPlan.parse(rules)
    else:
        built = FaultPlan(rules, seed=seed)
    previous = install(built)
    try:
        yield built
    finally:
        install(previous)


def inject(point: str, exc_factory: Callable[[], BaseException] | None = None) -> None:
    """Fire the active plan's rule for ``point``, if any.

    ``raise`` rules raise ``exc_factory()`` (or :class:`InjectedFault`),
    ``exit`` rules kill the process like a crashed worker, ``sleep``
    rules stall and return. No-op when no plan is installed or the
    rule doesn't fire on this evaluation.
    """
    if _PLAN is None:
        return
    rule = _PLAN.decide(point)
    if rule is not None:
        perform(rule, point, exc_factory)


def fires(point: str) -> bool:
    """Decision-only hook: did ``point`` fire on this evaluation?

    For faults whose damage the call site must stage itself — e.g. a
    torn write that leaves half a record on disk before failing. The
    rule's action is ignored; the fire is still counted and exported.
    """
    if _PLAN is None:
        return False
    return _PLAN.decide(point) is not None


_spec = os.environ.get("REPRO_FAULTS", "").strip()
if _spec:
    install(FaultPlan.parse(_spec))
del _spec
