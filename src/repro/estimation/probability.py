"""Smoothed empirical conditional probabilities over a :class:`Table`.

All LEWIS quantities reduce to conditional frequencies of the form
``Pr(event | condition)`` over the black box's input-output table.  The
estimator here works on *code-level* conditions (``{column: code}``)
because the score layer manipulates codes; a label-level convenience
wrapper is provided for user-facing call sites.

Since the vectorized refactor, :class:`FrequencyEstimator` is a thin
scalar facade over :class:`~repro.estimation.engine.ContingencyEngine`:
every query is answered from cached grouped count tensors instead of
per-query boolean-mask scans, and batch-oriented callers can reach the
engine directly through :attr:`FrequencyEstimator.engine` to answer N
queries per vectorized pass.

Laplace smoothing is available to keep estimates defined on sparse
conditioning events; the default ``alpha=0`` reproduces raw frequencies
(what the paper's estimators use) and callers fall back explicitly when a
condition has no support.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Mapping

import numpy as np

from repro.data.table import Table
from repro.estimation.engine import ContingencyEngine


class FrequencyEstimator:
    """Conditional frequency estimation with optional Laplace smoothing."""

    #: maximum number of boolean masks kept by :meth:`_mask` (LRU-evicted).
    MASK_CACHE_SIZE = 4096

    def __init__(self, table: Table, alpha: float = 0.0):
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self._table = table
        self._alpha = float(alpha)
        self._n = len(table)
        self._engine = ContingencyEngine(table, alpha=alpha)
        self._mask_cache: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._trivial_mask: np.ndarray | None = None

    @property
    def table(self) -> Table:
        """The underlying data table."""
        return self._table

    @property
    def n_rows(self) -> int:
        """Number of rows backing the estimates."""
        return self._n

    @property
    def engine(self) -> ContingencyEngine:
        """The vectorized contingency engine answering all queries.

        Batch-oriented callers (``ScoreEstimator.scores_batch``, the
        batched adjustment sums) use this directly to evaluate many
        related queries per pass.
        """
        return self._engine

    # -- incremental maintenance ------------------------------------------

    def apply_delta(self, inserted_rows=None, deleted_rows=None) -> int:
        """Fold a row delta into the engine and refresh derived state.

        Delegates to :meth:`ContingencyEngine.apply_delta` (in-place
        tensor maintenance + version bump), rebinds this estimator to the
        post-delta table, and drops the boolean-mask caches, which are
        row-aligned and therefore invalidated by any row change.
        Returns the engine's new data version.
        """
        version = self._engine.apply_delta(inserted_rows, deleted_rows)
        self._table = self._engine.table
        self._n = self._engine.n_rows
        self._mask_cache.clear()
        self._trivial_mask = None
        return version

    # -- masks -----------------------------------------------------------

    def _mask(self, conditions: Mapping[str, int]) -> np.ndarray:
        """Boolean mask of rows matching code-level equality conditions.

        Retained for callers that need explicit row masks; probability
        queries themselves are served from the engine's count tensors.
        The unconditioned (trivial) mask is built once and reused, and
        the cache evicts least-recently-used entries beyond
        :attr:`MASK_CACHE_SIZE` so long-running batch workloads don't pin
        stale masks.
        """
        if not conditions:
            if self._trivial_mask is None:
                self._trivial_mask = np.ones(self._n, dtype=bool)
            return self._trivial_mask
        key = tuple(sorted(conditions.items()))
        cached = self._mask_cache.get(key)
        if cached is not None:
            self._mask_cache.move_to_end(key)
            return cached
        mask = np.ones(self._n, dtype=bool)
        for name, code in conditions.items():
            mask &= self._table.codes(name) == int(code)
        self._mask_cache[key] = mask
        if len(self._mask_cache) > self.MASK_CACHE_SIZE:
            self._mask_cache.popitem(last=False)
        return mask

    def count(self, conditions: Mapping[str, int]) -> int:
        """Number of rows matching the conditions."""
        return self._engine.count(conditions)

    # -- probabilities ------------------------------------------------------

    def probability(
        self,
        event: Mapping[str, int],
        given: Mapping[str, int] | None = None,
    ) -> float:
        """Estimate ``Pr(event | given)`` with Laplace smoothing.

        Raises :class:`EstimationError` when the conditioning event has no
        support and no smoothing is enabled.
        """
        return self._engine.probability(event, given)

    def probability_or_default(
        self,
        event: Mapping[str, int],
        given: Mapping[str, int] | None = None,
        default: float = 0.0,
    ) -> float:
        """Like :meth:`probability` but returns ``default`` on no support."""
        return float(
            self._engine.probabilities([event], [given or {}], default=default)[0]
        )

    # -- label-level convenience ------------------------------------------------

    def encode(self, labels: Mapping[str, Any]) -> dict[str, int]:
        """Translate ``{column: label}`` to ``{column: code}``."""
        return {
            name: self._table.column(name).code_of(value)
            for name, value in labels.items()
        }

    def probability_labels(
        self,
        event: Mapping[str, Any],
        given: Mapping[str, Any] | None = None,
    ) -> float:
        """Label-level wrapper around :meth:`probability`."""
        return self.probability(self.encode(event), self.encode(given or {}))

    # -- grouped views ------------------------------------------------------

    def group_probabilities(
        self,
        names: list[str],
        given: Mapping[str, int] | None = None,
    ) -> dict[tuple[int, ...], float]:
        """Joint distribution of code combinations of ``names`` given a condition.

        Returns ``{(codes...): probability}`` over the *observed* support.
        """
        combos, weights = self._engine.group_weights(names, given)
        return {
            tuple(int(c) for c in combo): float(weight)
            for combo, weight in zip(combos, weights)
        }
