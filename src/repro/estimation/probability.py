"""Smoothed empirical conditional probabilities over a :class:`Table`.

All LEWIS quantities reduce to conditional frequencies of the form
``Pr(event | condition)`` over the black box's input-output table.  The
estimator here works on *code-level* conditions (``{column: code}``)
because the score layer manipulates codes; a label-level convenience
wrapper is provided for user-facing call sites.

Laplace smoothing is available to keep estimates defined on sparse
conditioning events; the default ``alpha=0`` reproduces raw frequencies
(what the paper's estimators use) and callers fall back explicitly when a
condition has no support.
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.data.table import Table
from repro.utils.exceptions import EstimationError


class FrequencyEstimator:
    """Conditional frequency estimation with optional Laplace smoothing."""

    def __init__(self, table: Table, alpha: float = 0.0):
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self._table = table
        self._alpha = float(alpha)
        self._n = len(table)
        self._mask_cache: dict[tuple, np.ndarray] = {}

    @property
    def table(self) -> Table:
        """The underlying data table."""
        return self._table

    @property
    def n_rows(self) -> int:
        """Number of rows backing the estimates."""
        return self._n

    # -- masks -----------------------------------------------------------

    def _mask(self, conditions: Mapping[str, int]) -> np.ndarray:
        """Boolean mask of rows matching code-level equality conditions."""
        key = tuple(sorted(conditions.items()))
        cached = self._mask_cache.get(key)
        if cached is not None:
            return cached
        mask = np.ones(self._n, dtype=bool)
        for name, code in conditions.items():
            mask &= self._table.codes(name) == int(code)
        if len(self._mask_cache) < 4096:
            self._mask_cache[key] = mask
        return mask

    def count(self, conditions: Mapping[str, int]) -> int:
        """Number of rows matching the conditions."""
        return int(self._mask(conditions).sum())

    # -- probabilities ------------------------------------------------------

    def probability(
        self,
        event: Mapping[str, int],
        given: Mapping[str, int] | None = None,
    ) -> float:
        """Estimate ``Pr(event | given)`` with Laplace smoothing.

        Raises :class:`EstimationError` when the conditioning event has no
        support and no smoothing is enabled.
        """
        given = given or {}
        overlap = set(event) & set(given)
        for name in overlap:
            if event[name] != given[name]:
                return 0.0
        event = {k: v for k, v in event.items() if k not in given}
        if not event:
            return 1.0
        denom_mask = self._mask(given) if given else np.ones(self._n, dtype=bool)
        denom = int(denom_mask.sum())
        joint = {**given, **event}
        numer = int((self._mask(joint)).sum())
        # Smoothing spreads `alpha` pseudo-counts over the joint domain of
        # the event columns.
        if self._alpha > 0:
            cells = 1
            for name in event:
                cells *= len(self._table.domain(name))
            return (numer + self._alpha) / (denom + self._alpha * cells)
        if denom == 0:
            raise EstimationError(
                f"no rows satisfy conditioning event {given!r}"
            )
        return numer / denom

    def probability_or_default(
        self,
        event: Mapping[str, int],
        given: Mapping[str, int] | None = None,
        default: float = 0.0,
    ) -> float:
        """Like :meth:`probability` but returns ``default`` on no support."""
        try:
            return self.probability(event, given)
        except EstimationError:
            return default

    # -- label-level convenience ------------------------------------------------

    def encode(self, labels: Mapping[str, Any]) -> dict[str, int]:
        """Translate ``{column: label}`` to ``{column: code}``."""
        return {
            name: self._table.column(name).code_of(value)
            for name, value in labels.items()
        }

    def probability_labels(
        self,
        event: Mapping[str, Any],
        given: Mapping[str, Any] | None = None,
    ) -> float:
        """Label-level wrapper around :meth:`probability`."""
        return self.probability(self.encode(event), self.encode(given or {}))

    # -- grouped views ------------------------------------------------------

    def group_probabilities(
        self,
        names: list[str],
        given: Mapping[str, int] | None = None,
    ) -> dict[tuple[int, ...], float]:
        """Joint distribution of code combinations of ``names`` given a condition.

        Returns ``{(codes...): probability}`` over the *observed* support.
        """
        mask = self._mask(given) if given else np.ones(self._n, dtype=bool)
        total = int(mask.sum())
        if total == 0:
            raise EstimationError(f"no rows satisfy conditioning event {given!r}")
        matrix = self._table.codes_matrix(names)[mask]
        uniques, counts = np.unique(matrix, axis=0, return_counts=True)
        return {
            tuple(int(c) for c in combo): int(count) / total
            for combo, count in zip(uniques, counts)
        }
