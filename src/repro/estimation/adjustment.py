"""Backdoor-adjustment sums over empirical frequencies.

Implements the estimation backbone of Proposition 4.2: terms of the form

    sum_c Pr(o | c, x, k) Pr(c | x', k)

where ``c`` ranges over the observed configurations of an adjustment set
``C``.  Configurations without support for the inner conditional fall back
to the unadjusted conditional (equivalent to assuming no effect
modification on unobserved cells), which keeps the estimator total.

Two entry points are provided: :func:`adjusted_probability` answers one
query, and :func:`adjusted_probabilities` answers a whole batch of
queries — all sharing the event, adjustment set, and context, with
per-query treatment and weight conditions — in one vectorized pass over
the engine's cached count tensors.  The scalar form delegates to the
batched one, so both produce bit-identical results.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.estimation.engine import ContingencyEngine
from repro.estimation.probability import FrequencyEstimator


def _engine_of(
    estimator: FrequencyEstimator | ContingencyEngine,
) -> ContingencyEngine:
    """Accept either a scalar estimator facade or the engine itself."""
    return getattr(estimator, "engine", estimator)


def adjusted_probability(
    estimator: FrequencyEstimator | ContingencyEngine,
    event: Mapping[str, int],
    treatment: Mapping[str, int],
    adjustment: Sequence[str],
    weight_condition: Mapping[str, int] | None = None,
    context: Mapping[str, int] | None = None,
) -> float:
    """Estimate ``sum_c Pr(event | c, treatment, context) Pr(c | weight_condition, context)``.

    Parameters
    ----------
    estimator:
        A :class:`FrequencyEstimator` (or its engine) over the table.
    event:
        Outcome event codes, e.g. ``{"O": 1}``.
    treatment:
        Codes the inner conditional conditions on, e.g. ``{"X": 2}``.
    adjustment:
        Names of the adjustment set ``C``. Empty means no adjustment: the
        result is simply ``Pr(event | treatment, context)``.
    weight_condition:
        Codes the mixing weights ``Pr(c | ...)`` condition on. Defaults to
        ``context`` alone — the plain backdoor formula of Eq. (4). The
        counterfactual estimators of Prop. 4.2 pass the *other* treatment
        value here (e.g. weights ``Pr(c | x, k)`` with inner ``Pr(o' | c,
        x', k)``).
    context:
        The sub-population codes ``k`` added to every conditioning event.
    """
    return float(
        adjusted_probabilities(
            estimator,
            event,
            [dict(treatment)],
            adjustment,
            [dict(weight_condition or {})],
            context,
        )[0]
    )


def adjusted_probabilities(
    estimator: FrequencyEstimator | ContingencyEngine,
    event: Mapping[str, int],
    treatments: Sequence[Mapping[str, int]],
    adjustment: Sequence[str],
    weight_conditions: Sequence[Mapping[str, int]] | None = None,
    context: Mapping[str, int] | None = None,
) -> np.ndarray:
    """Batched sibling of :func:`adjusted_probability`.

    Evaluates ``len(treatments)`` adjustment sums in one vectorized pass:
    the adjustment cells become tensor axes, so every (query, cell) inner
    conditional comes from two fancy-index lookups instead of a mask scan,
    and the mixture is a single broadcast multiply-sum.  Entry ``i`` uses
    ``treatments[i]`` and ``weight_conditions[i]`` (``{}`` — i.e. the
    context alone — when ``weight_conditions`` is omitted); ``event``,
    ``adjustment`` and ``context`` are shared across the batch.
    """
    return _engine_of(estimator).adjusted_probabilities(
        event, treatments, adjustment, weight_conditions, context
    )
