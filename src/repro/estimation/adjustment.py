"""Backdoor-adjustment sums over empirical frequencies.

Implements the estimation backbone of Proposition 4.2: terms of the form

    sum_c Pr(o | c, x, k) Pr(c | x', k)

where ``c`` ranges over the observed configurations of an adjustment set
``C``.  Configurations without support for the inner conditional fall back
to the unadjusted conditional (equivalent to assuming no effect
modification on unobserved cells), which keeps the estimator total.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.estimation.probability import FrequencyEstimator


def adjusted_probability(
    estimator: FrequencyEstimator,
    event: Mapping[str, int],
    treatment: Mapping[str, int],
    adjustment: Sequence[str],
    weight_condition: Mapping[str, int] | None = None,
    context: Mapping[str, int] | None = None,
) -> float:
    """Estimate ``sum_c Pr(event | c, treatment, context) Pr(c | weight_condition, context)``.

    Parameters
    ----------
    event:
        Outcome event codes, e.g. ``{"O": 1}``.
    treatment:
        Codes the inner conditional conditions on, e.g. ``{"X": 2}``.
    adjustment:
        Names of the adjustment set ``C``. Empty means no adjustment: the
        result is simply ``Pr(event | treatment, context)``.
    weight_condition:
        Codes the mixing weights ``Pr(c | ...)`` condition on. Defaults to
        ``context`` alone — the plain backdoor formula of Eq. (4). The
        counterfactual estimators of Prop. 4.2 pass the *other* treatment
        value here (e.g. weights ``Pr(c | x, k)`` with inner ``Pr(o' | c,
        x', k)``).
    context:
        The sub-population codes ``k`` added to every conditioning event.
    """
    context = dict(context or {})
    weight_condition = dict(weight_condition or {})
    adjustment = [a for a in adjustment if a not in context]
    if not adjustment:
        return estimator.probability(event, {**treatment, **context})

    weights = estimator.group_probabilities(
        list(adjustment), {**weight_condition, **context}
    )
    total = 0.0
    fallback = None
    for combo, weight in weights.items():
        cond = dict(zip(adjustment, combo))
        cond.update(treatment)
        cond.update(context)
        inner = None
        try:
            inner = estimator.probability(event, cond)
        except Exception:
            # No rows with this (c, x, k) cell: fall back to the
            # unadjusted conditional so the mixture stays a probability.
            if fallback is None:
                fallback = estimator.probability_or_default(
                    event, {**treatment, **context}, default=0.0
                )
            inner = fallback
        total += weight * inner
    return total
