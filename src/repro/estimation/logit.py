"""Logit model of ``Pr(o | a, k)`` used to linearise the recourse IP.

Section 4.2 of the paper rewrites the sufficiency constraint as

    Pr(o | a_hat, k) >= Pr(o | a, k) + alpha * Pr(o' | a, k)

and estimates the logit of the left-hand side with a linear model over
the actionable attributes.  :class:`LogitModel` fits a logistic
regression of the black box's positive decision on one-hot indicators of
the actionable attributes plus the (fixed) context attributes; the
per-category coefficients become the weights of the IP's linear
constraint.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.encoding import OneHotEncoder
from repro.data.table import Table
from repro.models.linear import LogisticRegression
from repro.utils.validation import check_fitted


def logit(p: float, eps: float = 1e-6) -> float:
    """Numerically clipped log-odds."""
    p = min(max(p, eps), 1 - eps)
    return float(np.log(p / (1 - p)))


class LogitModel:
    """Linear log-odds model of the positive decision.

    Parameters
    ----------
    actionable:
        Attribute names whose coefficients the recourse IP optimises over.
    context:
        Attribute names held fixed (non-descendants of the actionable set);
        they enter the regression so the model conditions on ``k``.
    """

    def __init__(
        self,
        actionable: Sequence[str],
        context: Sequence[str] = (),
        l2: float = 1.0,
    ):
        # The default L2 is deliberately strong: sparse one-hot cells are
        # quasi-separated, and an under-regularised fit extrapolates to
        # saturated probabilities that make the recourse IP accept
        # ineffective actions.
        self.actionable = list(actionable)
        self.context = list(context)
        self.l2 = float(l2)
        self._encoder: OneHotEncoder | None = None
        self._model: LogisticRegression | None = None

    def fit(self, table: Table, positive: np.ndarray) -> "LogitModel":
        """Fit on ``table`` with boolean vector ``positive`` (O = o)."""
        positive = np.asarray(positive, dtype=bool)
        if len(positive) != len(table):
            raise ValueError("positive vector length must match the table")
        features = self.actionable + self.context
        self._encoder = OneHotEncoder(drop_first=True).fit(table.select(features))
        X = self._encoder.transform(table.select(features))
        self._model = LogisticRegression(l2=self.l2)
        self._model.fit(X, positive.astype(int))
        return self

    # -- coefficient views used by the IP builder -----------------------------

    def coefficient(self, attribute: str, code: int) -> float:
        """Log-odds contribution of ``attribute`` taking ``code``.

        The dropped first category contributes 0 by construction.
        """
        check_fitted(self, "_model")
        if code == 0:
            return 0.0
        block = self._encoder.feature_slice(attribute)
        return float(self._model.coef_[0][block.start + code - 1])

    def coefficient_vector(self, attribute: str) -> np.ndarray:
        """Per-category log-odds contributions of ``attribute``, code order.

        Entry 0 (the dropped first category) is 0 by construction; the
        batch IP builder indexes this once per attribute instead of
        calling :meth:`coefficient` per (attribute, code) per program.
        """
        check_fitted(self, "_model")
        block = self._encoder.feature_slice(attribute)
        out = np.zeros(block.stop - block.start + 1)
        out[1:] = self._model.coef_[0][block]
        return out

    def score_codes(self, codes: Mapping[str, int]) -> float:
        """Log-odds of the positive decision for a full code assignment."""
        check_fitted(self, "_model")
        row = self._encoder.transform_codes(
            {name: codes[name] for name in self.actionable + self.context}
        )
        return float(self._model.decision_function(row.reshape(1, -1))[0])

    def score_codes_batch(
        self, matrix: np.ndarray | Sequence[Mapping[str, int]]
    ) -> np.ndarray:
        """Log-odds for N code assignments in one matrix pass.

        ``matrix`` is ``(n, len(actionable) + len(context))`` with
        columns in ``actionable + context`` order (or a sequence of code
        mappings).  Matches N :meth:`score_codes` calls to machine
        precision.
        """
        check_fitted(self, "_model")
        names = self.actionable + self.context
        if not isinstance(matrix, np.ndarray):
            matrix = np.array(
                [[int(codes[name]) for name in names] for codes in matrix],
                dtype=np.int64,
            ).reshape(-1, len(names))
        if matrix.shape[0] == 0:
            return np.zeros(0)
        X = self._encoder.transform_codes_matrix(matrix)
        return np.asarray(self._model.decision_function(X), dtype=np.float64)

    def probability_codes(self, codes: Mapping[str, int]) -> float:
        """``Pr(o | codes)`` under the fitted model."""
        z = self.score_codes(codes)
        return float(1.0 / (1.0 + np.exp(-z)))

    def probability_codes_batch(
        self, matrix: np.ndarray | Sequence[Mapping[str, int]]
    ) -> np.ndarray:
        """``Pr(o | codes)`` for N assignments in one matrix pass."""
        z = self.score_codes_batch(matrix)
        return 1.0 / (1.0 + np.exp(-z))
