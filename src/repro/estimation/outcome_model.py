"""Smoothed conditional-outcome model for sparse (local) contexts.

Local explanations condition on an individual's full non-descendant
context (Section 3.2, ``K = V``), where raw empirical frequencies have
little or no support.  Following the paper's setup ("estimated
conditional probabilities in (19)-(21) by regressing over test data
predictions"), :class:`OutcomeProbabilityModel` fits a logistic
regression of the black box's positive decision on one-hot indicators of
a chosen feature subset and answers ``Pr(o | features = codes)`` for any
code assignment — observed or not.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.encoding import OneHotEncoder
from repro.data.table import Table
from repro.models.linear import LogisticRegression
from repro.utils.validation import check_fitted


class OutcomeProbabilityModel:
    """``Pr(o | subset of attributes)`` via one-hot logistic regression."""

    def __init__(self, features: Sequence[str], l2: float = 1e-3):
        self.features = list(features)
        self.l2 = l2
        self._encoder: OneHotEncoder | None = None
        self._model: LogisticRegression | None = None
        self._constant: float | None = None

    def fit(self, table: Table, positive: np.ndarray) -> "OutcomeProbabilityModel":
        """Fit on ``table`` against the boolean positive-decision vector."""
        positive = np.asarray(positive, dtype=bool)
        if len(positive) != len(table):
            raise ValueError("positive vector length must match the table")
        subset = table.select(self.features)
        self._encoder = OneHotEncoder(drop_first=True).fit(subset)
        X = self._encoder.transform(subset)
        if positive.all() or not positive.any():
            # Degenerate outcome: the regression is a constant.
            self._constant = float(positive.mean())
            self._model = None
            return self
        self._constant = None
        self._model = LogisticRegression(l2=self.l2)
        self._model.fit(X, positive.astype(int))
        return self

    def probability(self, codes: Mapping[str, int]) -> float:
        """``Pr(o | features = codes)`` for one assignment."""
        check_fitted(self, "_encoder")
        if self._constant is not None:
            return self._constant
        row = self._encoder.transform_codes(
            {name: int(codes[name]) for name in self.features}
        )
        z = float(self._model.decision_function(row.reshape(1, -1))[0])
        return float(1.0 / (1.0 + np.exp(-z)))

    def probability_codes_batch(
        self, matrix: np.ndarray | Sequence[Mapping[str, int]]
    ) -> np.ndarray:
        """``Pr(o | features = codes)`` for N assignments in one matrix pass.

        ``matrix`` is an ``(n, len(features))`` integer code matrix whose
        columns align with :attr:`features` (or a sequence of code
        mappings, converted on entry).  Answers match N scalar
        :meth:`probability` calls to machine precision: the batch shares
        the single-row path's logit formula, it just evaluates one
        ``decision_function`` over the stacked indicator matrix.
        """
        check_fitted(self, "_encoder")
        if not isinstance(matrix, np.ndarray):
            matrix = np.array(
                [[int(codes[name]) for name in self.features] for codes in matrix],
                dtype=np.int64,
            ).reshape(-1, len(self.features))
        if self._constant is not None:
            return np.full(matrix.shape[0], self._constant)
        if matrix.shape[0] == 0:
            return np.zeros(0)
        X = self._encoder.transform_codes_matrix(matrix)
        z = np.asarray(self._model.decision_function(X), dtype=np.float64)
        return 1.0 / (1.0 + np.exp(-z))

    def probability_table(self, table: Table) -> np.ndarray:
        """Vectorised ``Pr(o | row)`` for every row of ``table``."""
        check_fitted(self, "_encoder")
        if self._constant is not None:
            return np.full(len(table), self._constant)
        X = self._encoder.transform(table.select(self.features))
        return self._model.predict_proba(X)[:, 1]
