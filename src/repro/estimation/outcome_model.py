"""Smoothed conditional-outcome model for sparse (local) contexts.

Local explanations condition on an individual's full non-descendant
context (Section 3.2, ``K = V``), where raw empirical frequencies have
little or no support.  Following the paper's setup ("estimated
conditional probabilities in (19)-(21) by regressing over test data
predictions"), :class:`OutcomeProbabilityModel` fits a logistic
regression of the black box's positive decision on one-hot indicators of
a chosen feature subset and answers ``Pr(o | features = codes)`` for any
code assignment — observed or not.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.encoding import OneHotEncoder
from repro.data.table import Table
from repro.models.linear import LogisticRegression
from repro.utils.validation import check_fitted


class OutcomeProbabilityModel:
    """``Pr(o | subset of attributes)`` via one-hot logistic regression."""

    def __init__(self, features: Sequence[str], l2: float = 1e-3):
        self.features = list(features)
        self.l2 = l2
        self._encoder: OneHotEncoder | None = None
        self._model: LogisticRegression | None = None
        self._constant: float | None = None

    def fit(self, table: Table, positive: np.ndarray) -> "OutcomeProbabilityModel":
        """Fit on ``table`` against the boolean positive-decision vector."""
        positive = np.asarray(positive, dtype=bool)
        if len(positive) != len(table):
            raise ValueError("positive vector length must match the table")
        subset = table.select(self.features)
        self._encoder = OneHotEncoder(drop_first=True).fit(subset)
        X = self._encoder.transform(subset)
        if positive.all() or not positive.any():
            # Degenerate outcome: the regression is a constant.
            self._constant = float(positive.mean())
            self._model = None
            return self
        self._constant = None
        self._model = LogisticRegression(l2=self.l2)
        self._model.fit(X, positive.astype(int))
        return self

    def probability(self, codes: Mapping[str, int]) -> float:
        """``Pr(o | features = codes)`` for one assignment.

        Routes through :meth:`probability_codes_batch` on a one-row
        matrix so scalar and batched answers are *bit-identical* — both
        paths accumulate the same coefficients in the same order.
        """
        row = np.array(
            [[int(codes[name]) for name in self.features]], dtype=np.int64
        )
        return float(self.probability_codes_batch(row)[0])

    def _decision_codes(self, matrix: np.ndarray) -> np.ndarray:
        """Logits for an integer code matrix with a fixed accumulation order.

        A one-hot row has exactly one active coefficient per column, so
        the logit is the intercept plus one gathered coefficient per
        feature, added in fit order.  Gathering keeps the floating-point
        accumulation order independent of the batch size — a BLAS
        matmul over the stacked indicator matrix does not (gemm vs dot
        kernels reorder sums by ~1e-16, which score formulas dividing
        by small probabilities amplify past the 1e-12 parity contract).
        """
        coef = self._model.coef_[0]
        z = np.full(matrix.shape[0], float(self._model.intercept_[0]), dtype=np.float64)
        offset = 1 if self._encoder.drop_first else 0
        for j, name in enumerate(self._encoder.columns_):
            codes = matrix[:, j].astype(np.int64) - offset
            block = coef[self._encoder.feature_slice(name)]
            valid = codes >= 0
            z[valid] += block[codes[valid]]
        return z

    def probability_codes_batch(
        self, matrix: np.ndarray | Sequence[Mapping[str, int]]
    ) -> np.ndarray:
        """``Pr(o | features = codes)`` for N assignments in one matrix pass.

        ``matrix`` is an ``(n, len(features))`` integer code matrix whose
        columns align with :attr:`features` (or a sequence of code
        mappings, converted on entry).  Answers are *bit-identical* to N
        scalar :meth:`probability` calls: both evaluate the same
        gathered-coefficient logit (:meth:`_decision_codes`), whose
        accumulation order does not depend on the batch size.
        """
        check_fitted(self, "_encoder")
        if not isinstance(matrix, np.ndarray):
            matrix = np.array(
                [[int(codes[name]) for name in self.features] for codes in matrix],
                dtype=np.int64,
            ).reshape(-1, len(self.features))
        if self._constant is not None:
            return np.full(matrix.shape[0], self._constant)
        if matrix.shape[0] == 0:
            return np.zeros(0)
        z = self._decision_codes(matrix)
        return 1.0 / (1.0 + np.exp(-z))

    def probability_table(self, table: Table) -> np.ndarray:
        """Vectorised ``Pr(o | row)`` for every row of ``table``."""
        check_fitted(self, "_encoder")
        if self._constant is not None:
            return np.full(len(table), self._constant)
        X = self._encoder.transform(table.select(self.features))
        return self._model.predict_proba(X)[:, 1]
