"""Empirical probability estimation from historical data.

LEWIS treats the decision algorithm as a black box and estimates every
probability in Propositions 4.1–4.2 from its input-output table.  This
subpackage provides smoothed conditional-frequency estimation
(:mod:`repro.estimation.probability`), backdoor-style adjustment sums
(:mod:`repro.estimation.adjustment`), and the logit regression model used
to linearise the recourse sufficiency constraint
(:mod:`repro.estimation.logit`).
"""

from repro.estimation.probability import FrequencyEstimator
from repro.estimation.adjustment import adjusted_probability
from repro.estimation.logit import LogitModel

__all__ = ["FrequencyEstimator", "adjusted_probability", "LogitModel"]
