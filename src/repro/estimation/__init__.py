"""Empirical probability estimation from historical data.

LEWIS treats the decision algorithm as a black box and estimates every
probability in Propositions 4.1–4.2 from its input-output table.  This
subpackage provides the vectorized contingency-table query engine
(:mod:`repro.estimation.engine`), smoothed conditional-frequency
estimation on top of it (:mod:`repro.estimation.probability`), scalar
and batched backdoor-style adjustment sums
(:mod:`repro.estimation.adjustment`), and the logit regression model used
to linearise the recourse sufficiency constraint
(:mod:`repro.estimation.logit`).
"""

from repro.estimation.engine import ContingencyEngine
from repro.estimation.probability import FrequencyEstimator
from repro.estimation.adjustment import adjusted_probabilities, adjusted_probability
from repro.estimation.logit import LogitModel

__all__ = [
    "ContingencyEngine",
    "FrequencyEstimator",
    "adjusted_probabilities",
    "adjusted_probability",
    "LogitModel",
]
