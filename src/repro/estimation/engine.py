"""Vectorized contingency-table query engine for batched frequency queries.

Every LEWIS quantity (Propositions 4.1–4.2) reduces to conditional
frequencies over the black box's input-output table.  The scalar
:class:`~repro.estimation.probability.FrequencyEstimator` answers one
query per full-table boolean-mask scan; this module replaces those scans
with *cached grouped count tensors*: for a set of columns the engine
packs the per-row codes into a single integer key, runs one
``np.bincount``, and reshapes the result into a dense contingency tensor
with one axis per column.  Any conditional probability over those
columns then becomes O(1) tensor indexing, and a batch of N related
queries (same column signature, different codes) is answered with one
vectorized fancy-indexing pass instead of N mask scans.

Batched query API
-----------------

``probabilities(events, givens)``
    N conditional probabilities ``Pr(event_i | given_i)`` per vectorized
    pass, grouped internally by column signature.  Mirrors
    ``FrequencyEstimator.probability`` semantics exactly (overlap
    handling, Laplace smoothing, :class:`EstimationError` on unsupported
    conditions — or a ``default`` fill value).

``group_weights(names, given)``
    The joint distribution of the ``names`` columns restricted to the
    rows matching ``given`` — the mixing weights of a backdoor
    adjustment sum — as a ``(combos, weights)`` array pair over the
    observed support.

``adjusted_probabilities(event, treatments, adjustment, ...)``
    N backdoor-adjustment sums ``sum_c Pr(event | c, t_i, k) Pr(c | w_i,
    k)`` evaluated in one pass: the inner conditionals for *all* (query,
    adjustment-cell) pairs come from two tensor lookups and the mixture
    is a single broadcast multiply-sum.

Tensors are LRU-cached per column set under a byte budget.  Column sets
whose dense joint domain would exceed ``max_cells`` fall back to sparse
mask-based evaluation, so the engine stays total on pathological schemas
while serving the common case at vector speed.

Incremental maintenance
-----------------------

``apply_delta(inserted_rows, deleted_rows)`` folds a batch of row
insertions/deletions into every cached count tensor *in place* — one
packed-code scatter-add per tensor, O(|delta|) per column set instead of
an O(n) rebuild — rebinds the engine to the post-delta table, and bumps
:attr:`version`.  The version token is what the serving layer's result
cache keys on, so an update invalidates exactly the entries that depend
on the superseded data.

Persistence
-----------

``save_state(file)`` / ``load_state(file)`` round-trip the cached count
tensors and the version counter through one ``.npz`` archive, so a
restored engine serves its first query from warm tensors instead of
re-counting the table (the expensive standing state of the serving
layer's snapshots — see :mod:`repro.store`).  ``load_state`` validates
every tensor against the live table (row total and per-axis domain
shape), rejecting archives that do not describe the bound data.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Any, BinaryIO, Mapping, Sequence

import numpy as np

from repro.data.table import Table
from repro.obs import metrics as _obs
from repro.utils.exceptions import EstimationError
from repro.utils.lru import ByteBudgetLRU

_TENSOR_BUILDS = _obs.get_registry().counter(
    "repro_engine_tensor_builds_total",
    "Count tensors materialised on tensor-cache misses.",
)
_TENSOR_BUILD_SECONDS = _obs.get_registry().histogram(
    "repro_engine_tensor_build_seconds",
    "Wall time of one bincount count-tensor build.",
)
_DELTAS_APPLIED = _obs.get_registry().counter(
    "repro_engine_deltas_applied_total",
    "Non-empty row deltas folded into the cached tensors.",
)


class _CapacityError(Exception):
    """Internal: a dense tensor would exceed the cell budget."""


def _prod(values) -> int:
    out = 1
    for v in values:
        out *= int(v)
    return out


class ContingencyEngine:
    """Cached grouped-count tensors with batched probability queries.

    Parameters
    ----------
    table:
        The data table queried against.
    alpha:
        Laplace smoothing mass, matching
        :class:`~repro.estimation.probability.FrequencyEstimator`.
    max_cells:
        Densest joint domain (product of cardinalities) materialised as
        one tensor; larger column sets use sparse mask fallbacks.
    cache_size:
        Number of count tensors kept in the LRU cache.
    max_bytes:
        Approximate byte budget for the tensor cache; least-recently-used
        tensors are evicted beyond it. ``None`` disables the byte bound.
    """

    def __init__(
        self,
        table: Table,
        alpha: float = 0.0,
        max_cells: int = 1 << 22,
        cache_size: int = 256,
        max_bytes: int | None = 128 << 20,
    ):
        if alpha < 0:
            raise ValueError(f"alpha must be non-negative, got {alpha}")
        self._table = table
        self._alpha = float(alpha)
        self._n = len(table)
        self._max_cells = int(max_cells)
        self._version = 0
        self._cards: dict[str, int] = {}
        self._tensors: ByteBudgetLRU = ByteBudgetLRU(
            max_bytes=max_bytes, max_entries=int(cache_size)
        )

    # -- basic accessors ---------------------------------------------------

    @property
    def table(self) -> Table:
        """The underlying data table."""
        return self._table

    @property
    def n_rows(self) -> int:
        """Number of rows backing the counts."""
        return self._n

    @property
    def alpha(self) -> float:
        """Laplace smoothing mass."""
        return self._alpha

    @property
    def version(self) -> int:
        """Monotone data-version token, bumped by every non-empty delta."""
        return self._version

    def stats(self) -> dict:
        """Introspection dict: tensor-cache counters plus engine state.

        The cache counters (``entries`` / ``bytes`` / ``hits`` /
        ``misses`` / ``evictions``) share their shape with every other
        cache in the serving stack (see :mod:`repro.utils.lru`).
        """
        out = self.cache_stats().legacy_dict()
        out.update(n_rows=self._n, version=self._version, max_cells=self._max_cells)
        return out

    def cache_stats(self) -> "_obs.CacheStats":
        """Tensor-cache counters as the unified :class:`CacheStats` schema."""
        return self._tensors.stats_struct("tensor")

    def state_digest(self) -> str:
        """Canonical content digest of the engine's counted state.

        Hashes the row total, the data-version counter, the smoothing
        mass, and every column's *marginal count tensor* bytes — a
        deterministic function of the bound table's content, independent
        of which joint tensors happen to sit in the LRU cache (replicas
        serve different request mixes, so cache *contents* are not
        comparable; the counts they derive from are).  Two replicas that
        replayed the same history agree on this digest bit for bit; the
        replication consistency checker uses it as the convergence
        fingerprint.
        """
        h = hashlib.sha256()
        h.update(f"{self._n}:{self._version}:{self._alpha}".encode("utf-8"))
        for name in sorted(self._table.names):
            marginal = self.tensor((name,))
            h.update(name.encode("utf-8"))
            h.update(np.ascontiguousarray(marginal).tobytes())
        return h.hexdigest()[:32]

    def _card(self, name: str) -> int:
        card = self._cards.get(name)
        if card is None:
            card = self._table.column(name).cardinality
            self._cards[name] = card
        return card

    # -- count tensors -----------------------------------------------------

    def tensor(self, names: Sequence[str]) -> np.ndarray:
        """Dense count tensor over ``names`` (must be sorted and unique).

        Axis ``i`` indexes the codes of ``names[i]``; the entry at
        ``(c_0, ..., c_k)`` is the number of rows with that joint code
        assignment.  Built once per column set via one packed-key
        ``np.bincount`` pass and LRU-cached.  Raises an internal
        capacity error when the joint domain exceeds ``max_cells``.
        """
        key = tuple(names)
        cached = self._tensors.get(key)
        if cached is not None:
            return cached
        shape = tuple(self._card(n) for n in key)
        cells = _prod(shape) if key else 1
        if cells > self._max_cells:
            raise _CapacityError(f"joint domain of {key!r} has {cells} cells")
        build_started = time.perf_counter()
        if not key:
            tensor = np.full((), self._n, dtype=np.int64)
        else:
            tensor = np.bincount(
                self._pack({n: self._table.codes(n) for n in key}, key, self._n),
                minlength=cells,
            ).reshape(shape)
        _TENSOR_BUILDS.inc()
        _TENSOR_BUILD_SECONDS.observe(time.perf_counter() - build_started)
        self._tensors.put(key, tensor, size=tensor.nbytes)
        return tensor

    def _pack(
        self,
        codes: Mapping[str, np.ndarray],
        names: Sequence[str],
        length: int,
    ) -> np.ndarray:
        """Mixed-radix packing of per-column codes into one key vector."""
        packed = np.zeros(length, dtype=np.int64)
        for name in names:
            packed *= self._card(name)
            packed += np.asarray(codes[name], dtype=np.int64)
        return packed

    # -- incremental maintenance -------------------------------------------

    def _normalize_inserted(
        self, inserted_rows: Any
    ) -> tuple[dict[str, np.ndarray], int]:
        """Validate/convert an insert batch to full-schema code arrays."""
        names = self._table.names
        if inserted_rows is None:
            return {}, 0
        if isinstance(inserted_rows, Table):
            for name in inserted_rows.names:
                if name in self._table and (
                    inserted_rows.domain(name) != self._table.domain(name)
                ):
                    raise ValueError(
                        f"inserted column {name!r} has a different domain; "
                        "deltas cannot change category sets"
                    )
            inserted = {n: inserted_rows.codes(n) for n in inserted_rows.names}
        elif isinstance(inserted_rows, Mapping):
            inserted = {n: np.asarray(a, dtype=np.int64) for n, a in inserted_rows.items()}
        else:
            rows = list(inserted_rows)
            inserted = {
                n: np.array([int(r[n]) for r in rows], dtype=np.int64) for n in names
            } if rows else {}
        if not inserted:
            return {}, 0
        if set(inserted) != set(names):
            raise ValueError(
                f"inserted rows must cover the full schema {names}; "
                f"got {sorted(inserted)}"
            )
        lengths = {n: len(np.atleast_1d(inserted[n])) for n in names}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"inserted columns differ in length: {lengths}")
        n_ins = next(iter(lengths.values()))
        for name in names:
            arr = np.atleast_1d(np.asarray(inserted[name], dtype=np.int64))
            if arr.size and (arr.min() < 0 or arr.max() >= self._card(name)):
                raise ValueError(
                    f"inserted codes for {name!r} outside [0, {self._card(name)})"
                )
            inserted[name] = arr
        return inserted, n_ins

    def apply_delta(
        self,
        inserted_rows: Any = None,
        deleted_rows: Sequence[int] | np.ndarray | None = None,
    ) -> int:
        """Fold row insertions/deletions into the cached tensors in place.

        ``inserted_rows`` may be a :class:`Table` slice, a mapping of
        full-schema code arrays, or a sequence of ``{column: code}``
        mappings; domains must match the current table (a delta can never
        extend a column's category set).  ``deleted_rows`` are row
        *indices* into the current table; deletions are applied first,
        then insertions are appended.

        Every cached count tensor is updated with one packed-code
        scatter-add/subtract — O(|delta|) work per column set instead of
        an O(n) rebuild — the engine rebinds to the post-delta table, and
        :attr:`version` is bumped.  Updated tensors are bit-identical to
        a fresh rebuild (integer counts, no rounding).  An empty delta is
        a no-op and leaves the version unchanged.  Returns the version.
        """
        inserted, n_ins = self._normalize_inserted(inserted_rows)
        if deleted_rows is None:
            deleted = np.empty(0, dtype=np.intp)
        else:
            deleted = np.unique(np.asarray(deleted_rows, dtype=np.intp))
        if deleted.size and (deleted[0] < 0 or deleted[-1] >= self._n):
            raise IndexError(
                f"deleted row indices outside [0, {self._n}): {deleted}"
            )
        if not n_ins and not deleted.size:
            return self._version
        removed = {
            name: self._table.codes(name)[deleted] for name in self._table.names
        } if deleted.size else {}

        for key in list(self._tensors):
            tensor = self._tensors.peek(key)
            if not key:
                tensor[...] = self._n - deleted.size + n_ins
                continue
            cells = tensor.size
            if n_ins:
                tensor += np.bincount(
                    self._pack(inserted, key, n_ins), minlength=cells
                ).reshape(tensor.shape)
            if deleted.size:
                tensor -= np.bincount(
                    self._pack(removed, key, deleted.size), minlength=cells
                ).reshape(tensor.shape)

        base = self._table.delete_rows(deleted) if deleted.size else self._table
        if n_ins:
            base = Table(
                col.replaced(np.concatenate([col.codes, inserted[col.name]]))
                for col in base
            )
        self._table = base
        self._n = len(self._table)
        self._version += 1
        _DELTAS_APPLIED.inc()
        return self._version

    # -- persistence -------------------------------------------------------

    STATE_FORMAT = 1

    def save_state(self, file: str | BinaryIO) -> dict:
        """Write the cached count tensors + version to ``file`` as ``.npz``.

        ``file`` may be a path or a binary file object.  Tensors are
        saved in least-recently-used-first order so a restore preserves
        the cache's recency ranking.  Returns the metadata dict that was
        embedded in the archive (format tag, version, row count, alpha,
        and the column-name key of every tensor).

        Safe against concurrent *read* traffic: the key snapshot is
        retried if the LRU's order mutates mid-iteration, and a tensor
        evicted between snapshot and capture is skipped (the archive is
        just slightly less warm).  Concurrent *writes* (``apply_delta``
        mutates tensors in place) must be excluded by the caller — the
        serving layer holds the session's update lock across snapshots.
        """
        keys: list = []
        for _attempt in range(8):
            try:
                keys = list(self._tensors)
                break
            except RuntimeError:  # cache order mutated mid-iteration
                continue
        entries = []
        for key in keys:
            tensor = self._tensors.peek(key)
            if tensor is not None:  # evicted since the key snapshot
                entries.append((key, tensor))
        meta = {
            "format": self.STATE_FORMAT,
            "version": self._version,
            "n_rows": self._n,
            "alpha": self._alpha,
            "keys": [list(key) for key, _tensor in entries],
        }
        arrays = {
            f"tensor_{i}": tensor for i, (_key, tensor) in enumerate(entries)
        }
        np.savez_compressed(file, __meta__=np.array(json.dumps(meta)), **arrays)
        return meta

    def load_state(self, file: str | BinaryIO) -> dict:
        """Restore tensors saved by :meth:`save_state` into this engine.

        The engine must already be bound to the table the state was
        captured from: the archive's row count and smoothing mass must
        match, and every tensor is checked against the live schema (axis
        shapes equal the joint domain, entries sum to the row count)
        before it is admitted — a snapshot/table mismatch fails loudly
        instead of silently serving wrong counts.  Restores
        :attr:`version` and returns the archive metadata.
        """
        with np.load(file, allow_pickle=False) as archive:
            meta = json.loads(str(archive["__meta__"][()]))
            if meta.get("format") != self.STATE_FORMAT:
                raise ValueError(
                    f"unsupported engine state format {meta.get('format')!r}"
                )
            if int(meta["n_rows"]) != self._n:
                raise ValueError(
                    f"engine state has {meta['n_rows']} rows; table has {self._n}"
                )
            if float(meta["alpha"]) != self._alpha:
                raise ValueError(
                    f"engine state alpha {meta['alpha']} != engine alpha {self._alpha}"
                )
            for i, names in enumerate(meta["keys"]):
                key = tuple(names)
                tensor = archive[f"tensor_{i}"]
                shape = tuple(self._card(name) for name in key)
                if tensor.shape != (shape if key else ()):
                    raise ValueError(
                        f"tensor for {key!r} has shape {tensor.shape}; "
                        f"table domains give {shape}"
                    )
                # every full contingency tensor sums to the row count
                if int(tensor.sum()) != self._n:
                    raise ValueError(
                        f"tensor for {key!r} sums to {int(tensor.sum())}, "
                        f"expected {self._n}"
                    )
                self._tensors.put(key, tensor, size=tensor.nbytes)
            self._version = int(meta["version"])
        return meta

    def _counts_nd(
        self,
        fixed: Mapping[str, int],
        vary_names: Sequence[str] = (),
        vary_codes: np.ndarray | None = None,
        free_names: Sequence[str] = (),
    ) -> np.ndarray:
        """Counts with scalar, per-query, and marginal axes in one lookup.

        ``fixed`` pins columns to one code for all queries; ``vary_names``
        columns take per-query codes from row ``i`` of ``vary_codes``;
        ``free_names`` columns stay as trailing marginal axes (in sorted
        name order).  Returns shape ``([m,] *free_shape)`` — the leading
        query axis is present iff ``vary_names`` is non-empty.
        """
        fixed = dict(fixed)
        vary_names = list(vary_names)
        free_names = sorted(free_names)
        names = sorted(set(fixed) | set(vary_names) | set(free_names))
        tensor = self.tensor(names)

        free_set = set(free_names)
        lead = [i for i, n in enumerate(names) if n not in free_set]
        trail = [i for i, n in enumerate(names) if n in free_set]
        view = tensor.transpose(lead + trail)
        free_shape = tuple(self._card(n) for n in free_names)

        out_shape = ((len(vary_codes),) if vary_names else ()) + free_shape
        # Out-of-domain fixed codes match no rows at all.
        for name, code in fixed.items():
            if not 0 <= int(code) < self._card(name):
                return np.zeros(out_shape, dtype=np.int64)

        index = []
        invalid = None
        for i in lead:
            name = names[i]
            if name in fixed:
                index.append(int(fixed[name]))
            else:
                codes = np.asarray(
                    vary_codes[:, vary_names.index(name)], dtype=np.intp
                )
                bad = (codes < 0) | (codes >= self._card(name))
                if bad.any():
                    invalid = bad if invalid is None else (invalid | bad)
                    codes = np.clip(codes, 0, self._card(name) - 1)
                index.append(codes)
        result = view[tuple(index)]
        if vary_names and result.ndim == len(free_shape):
            # All vary columns were absorbed into ``fixed``-style scalars.
            result = np.broadcast_to(result, out_shape)
        if invalid is not None:
            result = result.copy()
            result[invalid] = 0
        return np.asarray(result)

    def _slow_count(self, conditions: Mapping[str, int]) -> int:
        mask = np.ones(self._n, dtype=bool)
        for name, code in conditions.items():
            mask &= self._table.codes(name) == int(code)
        return int(mask.sum())

    def count(self, conditions: Mapping[str, int]) -> int:
        """Number of rows matching code-level equality ``conditions``."""
        conditions = dict(conditions)
        try:
            return int(self._counts_nd(conditions))
        except _CapacityError:
            return self._slow_count(conditions)

    # -- scalar probability ------------------------------------------------

    def probability(
        self,
        event: Mapping[str, int],
        given: Mapping[str, int] | None = None,
    ) -> float:
        """``Pr(event | given)`` with the estimator's exact semantics.

        Conflicting event/condition codes yield 0, events implied by the
        condition yield 1, Laplace smoothing spreads ``alpha`` over the
        event's joint domain, and an unsupported condition raises
        :class:`EstimationError` when no smoothing is enabled.
        """
        given = dict(given or {})
        event = dict(event)
        for name in set(event) & set(given):
            if event[name] != given[name]:
                return 0.0
        event = {k: v for k, v in event.items() if k not in given}
        if not event:
            return 1.0
        denom = self.count(given)
        numer = self.count({**given, **event})
        if self._alpha > 0:
            cells = _prod(self._card(name) for name in event)
            return (numer + self._alpha) / (denom + self._alpha * cells)
        if denom == 0:
            raise EstimationError(
                f"no rows satisfy conditioning event {given!r}"
            )
        return numer / denom

    # -- batched probabilities ---------------------------------------------

    def probabilities(
        self,
        events: Sequence[Mapping[str, int]],
        givens: Sequence[Mapping[str, int]] | None = None,
        default: float | None = None,
    ) -> np.ndarray:
        """Batched ``Pr(event_i | given_i)`` — one vectorized pass per signature.

        Queries are grouped by their (event-columns, given-columns)
        signature; each group is answered with two tensor lookups.  When
        ``default`` is ``None`` an unsupported condition raises
        :class:`EstimationError` (matching the scalar path); otherwise
        the offending entries are filled with ``default``.
        """
        events = [dict(e) for e in events]
        if givens is None:
            givens = [{} for _ in events]
        else:
            givens = [dict(g) for g in givens]
        if len(events) != len(givens):
            raise ValueError("events and givens must have equal length")
        out = np.empty(len(events), dtype=float)
        buckets: dict[tuple, list[int]] = {}
        for i, (event, given) in enumerate(zip(events, givens)):
            conflict = any(
                event[k] != given[k] for k in set(event) & set(given)
            )
            if conflict:
                out[i] = 0.0
                continue
            event = {k: v for k, v in event.items() if k not in given}
            events[i] = event
            if not event:
                out[i] = 1.0
                continue
            sig = (tuple(sorted(event)), tuple(sorted(given)))
            buckets.setdefault(sig, []).append(i)
        for (ecols, gcols), idxs in buckets.items():
            try:
                out[idxs] = self._probabilities_group(
                    ecols, gcols, [events[i] for i in idxs],
                    [givens[i] for i in idxs], default,
                )
            except _CapacityError:
                for i in idxs:
                    try:
                        out[i] = self.probability(events[i], givens[i])
                    except EstimationError:
                        if default is None:
                            raise
                        out[i] = default
        return out

    def _probabilities_group(
        self,
        ecols: tuple[str, ...],
        gcols: tuple[str, ...],
        events: list[dict],
        givens: list[dict],
        default: float | None,
    ) -> np.ndarray:
        m = len(events)
        gm = np.array(
            [[g[c] for c in gcols] for g in givens], dtype=np.int64
        ).reshape(m, len(gcols))
        em = np.array(
            [[e[c] for c in ecols] for e in events], dtype=np.int64
        ).reshape(m, len(ecols))
        if gcols:
            denom = self._counts_nd({}, list(gcols), gm)
        else:
            denom = np.full(m, self._n, dtype=np.int64)
        joint_cols = list(gcols) + list(ecols)
        numer = self._counts_nd({}, joint_cols, np.concatenate([gm, em], axis=1))
        if self._alpha > 0:
            cells = _prod(self._card(c) for c in ecols)
            return (numer + self._alpha) / (denom + self._alpha * cells)
        supported = denom > 0
        if default is None and not supported.all():
            bad = int(np.argmin(supported))
            raise EstimationError(
                f"no rows satisfy conditioning event {givens[bad]!r}"
            )
        values = np.full(m, 0.0 if default is None else float(default))
        np.divide(numer, denom, out=values, where=supported)
        return values

    # -- grouped weights ---------------------------------------------------

    def group_weights(
        self,
        names: Sequence[str],
        given: Mapping[str, int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Observed joint distribution of ``names`` among rows matching ``given``.

        Returns ``(combos, weights)``: ``combos`` is a ``(g, len(names))``
        code matrix in lexicographic order and ``weights`` the matching
        relative frequencies (summing to 1 over the observed support).
        Raises :class:`EstimationError` when no row matches ``given``.
        """
        names = list(names)
        given = dict(given or {})
        free = [n for n in names if n not in given]
        try:
            joint = self._counts_nd(given, free_names=free)
        except _CapacityError:
            return self._group_weights_slow(names, given)
        total = int(joint.sum())
        if total == 0:
            raise EstimationError(f"no rows satisfy conditioning event {given!r}")
        if not free:
            combos = np.array(
                [[int(given[n]) for n in names]], dtype=np.int64
            ).reshape(1, len(names))
            return combos, np.array([1.0])
        # ``joint`` axes follow sorted(free); realign to the order the
        # free columns appear in ``names`` so combos match the caller's
        # column order.
        sorted_free = sorted(free)
        joint = joint.transpose([sorted_free.index(n) for n in free])
        support = np.argwhere(joint > 0)
        weights = joint[tuple(support.T)] / total
        if len(free) == len(names):
            return support.astype(np.int64), weights
        combos = np.empty((len(support), len(names)), dtype=np.int64)
        free_pos = 0
        for j, name in enumerate(names):
            if name in given:
                combos[:, j] = int(given[name])
            else:
                combos[:, j] = support[:, free_pos]
                free_pos += 1
        return combos, weights

    def _group_weights_slow(
        self, names: list[str], given: dict
    ) -> tuple[np.ndarray, np.ndarray]:
        mask = np.ones(self._n, dtype=bool)
        for name, code in given.items():
            mask &= self._table.codes(name) == int(code)
        total = int(mask.sum())
        if total == 0:
            raise EstimationError(f"no rows satisfy conditioning event {given!r}")
        matrix = self._table.codes_matrix(names)[mask]
        uniques, counts = np.unique(matrix, axis=0, return_counts=True)
        return uniques.astype(np.int64), counts / total

    # -- batched adjustment sums -------------------------------------------

    def adjusted_probabilities(
        self,
        event: Mapping[str, int],
        treatments: Sequence[Mapping[str, int]],
        adjustment: Sequence[str],
        weight_conditions: Sequence[Mapping[str, int]] | None = None,
        context: Mapping[str, int] | None = None,
    ) -> np.ndarray:
        """Batched backdoor sums ``sum_c Pr(event | c, t_i, k) Pr(c | w_i, k)``.

        One vectorized pass answers all ``len(treatments)`` queries: the
        adjustment cells become trailing tensor axes, so the inner
        conditionals of every (query, cell) pair come from two fancy-index
        lookups and the mixture is a broadcast multiply-sum.  Semantics
        match :func:`repro.estimation.adjustment.adjusted_probability`
        per query, including the fall-back to the unadjusted conditional
        on unsupported cells.
        """
        event = dict(event)
        treatments = [dict(t) for t in treatments]
        m = len(treatments)
        if weight_conditions is None:
            weight_conditions = [{} for _ in range(m)]
        else:
            weight_conditions = [dict(w) for w in weight_conditions]
        if len(weight_conditions) != m:
            raise ValueError("weight_conditions must match treatments in length")
        if m == 0:
            return np.zeros(0)
        context = dict(context or {})
        adjustment = [a for a in adjustment if a not in context]
        if not adjustment:
            return self.probabilities(
                [event] * m, [{**t, **context} for t in treatments]
            )
        tcols = tuple(sorted(treatments[0]))
        wcols = tuple(sorted(weight_conditions[0]))
        homogeneous = all(
            tuple(sorted(t)) == tcols for t in treatments
        ) and all(tuple(sorted(w)) == wcols for w in weight_conditions)
        # Columns shared between the adjustment set and the treatment /
        # weight conditions pin cells the tensor path would marginalise
        # over; those (rare) queries take the sparse scalar loop instead.
        overlap = (set(adjustment) & (set(tcols) | set(wcols) | set(event))) or (
            set(event) & (set(tcols) | set(wcols) | set(context))
        )
        if homogeneous and not overlap:
            try:
                return self._adjusted_vectorized(
                    event, treatments, tcols, weight_conditions, wcols,
                    adjustment, context,
                )
            except _CapacityError:
                pass
        return np.array(
            [
                self._adjusted_scalar(event, t, adjustment, w, context)
                for t, w in zip(treatments, weight_conditions)
            ]
        )

    def _adjusted_vectorized(
        self,
        event: dict,
        treatments: list[dict],
        tcols: tuple[str, ...],
        weight_conditions: list[dict],
        wcols: tuple[str, ...],
        adjustment: list[str],
        context: dict,
    ) -> np.ndarray:
        free = sorted(set(adjustment))
        k_free = len(free)
        m = len(treatments)
        # Context codes win over treatment/weight codes on shared columns,
        # matching the scalar merge order ``{**treatment, **context}``.
        tvary = [c for c in tcols if c not in context]
        wvary = [c for c in wcols if c not in context]

        def lift(array: np.ndarray) -> np.ndarray:
            """Ensure a leading query axis (length 1 when shared)."""
            return array if array.ndim == k_free + 1 else array[None]

        if wvary:
            wm = np.array(
                [[w[c] for c in wvary] for w in weight_conditions],
                dtype=np.int64,
            )
            wjoint = lift(self._counts_nd(context, wvary, wm, free))
        else:
            wjoint = lift(self._counts_nd(context, free_names=free))
        wtot = wjoint.reshape(wjoint.shape[0], -1).sum(axis=1)
        if np.any(wtot == 0):
            bad = int(np.argmax(wtot == 0)) if wvary else 0
            merged = {**weight_conditions[bad], **context}
            raise EstimationError(
                f"no rows satisfy conditioning event {merged!r}"
            )
        weights = wjoint / wtot.reshape((-1,) + (1,) * k_free)

        if tvary:
            tm = np.array(
                [[t[c] for c in tvary] for t in treatments], dtype=np.int64
            )
            denom = lift(self._counts_nd(context, tvary, tm, free))
            numer = lift(
                self._counts_nd({**context, **event}, tvary, tm, free)
            )
        else:
            denom = lift(self._counts_nd(context, free_names=free))
            numer = lift(self._counts_nd({**context, **event}, free_names=free))

        if self._alpha > 0:
            cells = _prod(self._card(name) for name in event)
            inner = (numer + self._alpha) / (denom + self._alpha * cells)
        else:
            supported = denom > 0
            if supported.all():
                inner = np.zeros(denom.shape)
            else:
                # Unsupported (c, t, k) cells fall back to the unadjusted
                # conditional so the mixture stays a probability.
                fallback = self.probabilities(
                    [event] * m,
                    [{**t, **context} for t in treatments],
                    default=0.0,
                )
                if denom.shape[0] == 1:
                    fallback = fallback[:1]
                inner = np.broadcast_to(
                    fallback.reshape((-1,) + (1,) * k_free), denom.shape
                ).copy()
            np.divide(numer, denom, out=inner, where=supported)

        mixed = weights * inner
        totals = mixed.reshape(mixed.shape[0], -1).sum(axis=1)
        if totals.shape[0] == 1 and m > 1:
            totals = np.broadcast_to(totals, (m,))
        return np.array(totals, dtype=float)

    def _adjusted_scalar(
        self,
        event: dict,
        treatment: dict,
        adjustment: list[str],
        weight_condition: dict,
        context: dict,
    ) -> float:
        """Sparse per-query fall-back mirroring the historical scalar loop."""
        combos, weights = self.group_weights(
            list(adjustment), {**weight_condition, **context}
        )
        total = 0.0
        fallback = None
        for combo, weight in zip(combos, weights):
            cond = {a: int(c) for a, c in zip(adjustment, combo)}
            cond.update(treatment)
            cond.update(context)
            try:
                inner = self.probability(event, cond)
            except EstimationError:
                if fallback is None:
                    try:
                        fallback = self.probability(
                            event, {**treatment, **context}
                        )
                    except EstimationError:
                        fallback = 0.0
                inner = fallback
            total += float(weight) * inner
        return total
