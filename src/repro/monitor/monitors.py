"""Standing monitors over one explainer session.

A :class:`MonitorSet` owns every monitor registered against one
session: for each it keeps the frozen spec, the baseline summary, the
latest summary, a WAL-seq cursor, and its drift detectors. All state
mutation runs on the session's micro-batcher dispatch lane (the set
registers itself as the ``"monitor"`` request kind), so monitor
evaluation serializes with explanation and update traffic exactly the
way every other engine access does — no second locking discipline.

The refresh path is the point of the subsystem: after a delta batch the
engine's count tensors are already current (``apply_delta`` is
O(|delta|)), so refreshing a monitor is a handful of tensor reads — it
never replays the log or rescans rows. The cursor only *measures* how
many WAL batches the refresh covered; when it predates the log's first
live record (a checkpoint compacted its range away) the monitor counts
a ``truncated_cursor`` and re-anchors, mirroring what a remote tailing
client must do when :meth:`DeltaLog.cursor_valid` fails: resnapshot.

Alerts go three places, in order: the durable journal (crash
recovery), the in-memory ring buffer (the ``watch`` long-poll reads
it), and the condition variable that wakes blocked watchers. Watchers
poll with an *alert-seq* cursor — ``watch(cursor)`` returns every
buffered alert newer than it plus the new cursor, or times out empty —
so a client that reconnects never misses an alert that is still in the
buffer, and can detect a gap when its cursor has fallen off the ring.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Mapping

import repro.faults as _faults
from repro.monitor.detectors import Alert, build_detectors
from repro.monitor.journal import MonitorJournal
from repro.monitor.summaries import compute_summary, encode_spec
from repro.obs import metrics as _obs
from repro.obs import tracing as _tracing
from repro.service.session import ExplainerSession, jsonable

_MONITOR_REFRESHES = _obs.get_registry().counter(
    "repro_monitor_refreshes_total", "Monitor summary refreshes computed."
)
_MONITOR_REFRESH_ERRORS = _obs.get_registry().counter(
    "repro_monitor_refresh_errors_total", "Monitor refresh dispatches that failed."
)
_MONITOR_REFRESH_FAILURES = _obs.get_registry().counter(
    "repro_monitor_refresh_failures_total",
    "Individual monitors whose refresh raised (isolated, not fatal).",
)
_MONITOR_ALERTS = _obs.get_registry().counter(
    "repro_monitor_alerts_total", "Drift alerts emitted by monitors."
)

#: how many alerts the in-memory ring keeps for ``watch`` long-polls;
#: older alerts remain in the journal but are no longer served live.
ALERT_BUFFER = 1024

WATCH_DEFAULT_TIMEOUT = 25.0
WATCH_MAX_TIMEOUT = 60.0


class MonitorSet:
    """Every standing monitor attached to one explainer session."""

    def __init__(
        self, session: ExplainerSession, journal: MonitorJournal | None = None
    ):
        self._session = session
        self._journal = journal
        self._monitors: dict[str, dict] = {}
        self._next_id = 1
        self._cond = threading.Condition()
        self._alerts: deque[tuple[int, Alert]] = deque(maxlen=ALERT_BUFFER)
        self._alert_seq = 0
        self._refreshes = 0
        self._refresh_errors = 0
        self._refresh_failures = 0
        if journal is not None:
            self._recover(journal)
        # All mutation funnels through the session's dispatch lane.
        session._batcher.register("monitor", self.handle)

    # -- lane-routed public API --------------------------------------------

    def add(self, payload: Mapping[str, Any]) -> dict:
        """Register a monitor; returns its description (with ``id``)."""
        return self._session._batcher.run("monitor", ("add", dict(payload)))

    def list(self) -> dict:
        """Describe every registered monitor."""
        return self._session._batcher.run("monitor", ("list", None))

    def get(self, monitor_id: str) -> dict:
        """Describe one monitor; raises ``KeyError`` when unknown."""
        return self._session._batcher.run("monitor", ("get", str(monitor_id)))

    def remove(self, monitor_id: str) -> dict:
        """Deregister a monitor (recorded in the journal)."""
        return self._session._batcher.run("monitor", ("remove", str(monitor_id)))

    def refresh(self) -> dict:
        """Synchronously refresh every monitor; returns refresh counters."""
        return self._session._batcher.run("monitor", ("refresh", None))

    def poke(self) -> None:
        """Queue an asynchronous refresh on the dispatch lane.

        The post-update notification path: it must not block the update
        response on monitor evaluation (a recourse probe re-solve can
        take a while), so it submits and returns. Errors are counted,
        not raised — nobody is waiting on the future.
        """
        if not self._monitors:
            return
        future = self._session._batcher.submit("monitor", ("refresh", None))
        future.add_done_callback(self._note_refresh_result)
        if self._session._batcher._thread is None:
            # synchronous-mode session: nothing else will flush the lane
            self._session._batcher.flush()

    def _note_refresh_result(self, future) -> None:
        if not future.cancelled() and future.exception() is not None:
            self._refresh_errors += 1
            _MONITOR_REFRESH_ERRORS.inc()

    # -- the dispatch-lane handler -----------------------------------------

    def handle(self, commands: list) -> list:
        """Micro-batcher handler: one result per ``(op, arg)`` command.

        Multiple ``refresh`` commands coalesced into one batch evaluate
        once and share the result — the lane cannot have applied new
        deltas between them.
        """
        results = []
        refreshed: dict | None = None
        for op, arg in commands:
            if op == "add":
                refreshed = None  # a new monitor invalidates the shared result
                results.append(self._add(arg))
            elif op == "list":
                results.append(self._list())
            elif op == "get":
                results.append(self._describe(self._monitors[arg]))
            elif op == "remove":
                results.append(self._remove(arg))
            elif op == "refresh":
                if refreshed is None:
                    refreshed = self._refresh()
                results.append(refreshed)
            else:
                raise ValueError(f"unknown monitor command {op!r}")
        return results

    # -- command implementations (dispatch lane only) ----------------------

    def _position(self) -> int:
        """The session's current stream position.

        WAL sequence number for durable sessions; the engine's table
        version for plain in-memory sessions (both advance by exactly
        one per applied delta batch, so cursor arithmetic is identical).
        """
        log = getattr(self._session, "log", None)
        if log is not None:
            return int(log.last_seq)
        return int(self._session.table_version)

    def _add(self, payload: Mapping[str, Any]) -> dict:
        lewis = self._session.lewis
        spec = encode_spec(lewis, payload)
        monitor_id = f"m{self._next_id}"
        baseline = compute_summary(lewis, spec)
        position = self._position()
        state = {
            "id": monitor_id,
            "spec": spec,
            "baseline": baseline,
            "summary": dict(baseline),
            "cursor": position,
            "registered_at": position,
            "batches_seen": 0,
            "refreshes": 0,
            "alerts": 0,
            "truncated_cursors": 0,
            "detectors": build_detectors(spec),
        }
        if self._journal is not None:
            # journal before exposing: a registration the client saw
            # acknowledged must survive a crash.
            data = {
                "id": monitor_id,
                "spec": spec,
                "baseline": baseline,
                "cursor": position,
            }
            request_id = _tracing.current_trace_id()
            if request_id is not None:
                data["request_id"] = request_id
            self._journal.append("register", data)
        self._next_id += 1
        self._monitors[monitor_id] = state
        return self._describe(state)

    def _remove(self, monitor_id: str) -> dict:
        removed = self._monitors.pop(monitor_id, None) is not None
        if removed and self._journal is not None:
            self._journal.append("remove", {"id": monitor_id})
        return {"id": monitor_id, "removed": removed}

    def _list(self) -> dict:
        return {
            "monitors": [self._describe(s) for s in self._monitors.values()],
            "position": self._position(),
            "alerts_total": self._alert_seq,
        }

    def _describe(self, state: Mapping) -> dict:
        spec = state["spec"]
        return jsonable(
            {
                "id": state["id"],
                "kind": spec["kind"],
                "metric": spec["metric"],
                "threshold": spec["threshold"],
                "cusum": spec["cusum"],
                "params": spec["params"],
                "baseline": state["baseline"],
                "summary": state["summary"],
                "cursor": state["cursor"],
                "registered_at": state["registered_at"],
                "batches_seen": state["batches_seen"],
                "refreshes": state["refreshes"],
                "alerts": state["alerts"],
                "truncated_cursors": state["truncated_cursors"],
                "detectors": {
                    d.name: d.export_state() for d in state["detectors"]
                },
            }
        )

    def _refresh(self) -> dict:
        lewis = self._session.lewis
        log = getattr(self._session, "log", None)
        position = self._position()
        out = {
            "position": position,
            "monitors": len(self._monitors),
            "refreshed": 0,
            "failed": 0,
            "alerts": 0,
        }
        for state in self._monitors.values():
            if position <= state["cursor"]:
                continue  # nothing new past this monitor's cursor
            # One monitor's failure must never starve the others: the
            # whole per-monitor step is isolated, and the cursor only
            # commits after a successful compute — a failed monitor
            # retries the same range on the next refresh.
            try:
                _faults.inject("monitor.refresh")
                summary = compute_summary(lewis, state["spec"])
            except Exception as exc:  # noqa: BLE001 - isolate per monitor
                self._refresh_failures += 1
                _MONITOR_REFRESH_FAILURES.inc()
                out["failed"] += 1
                self._emit_refresh_failure(state, exc)
                continue
            if log is not None and not log.cursor_valid(state["cursor"]):
                # A checkpoint compacted the cursor's range away. The
                # live tensors still hold the truth, so re-anchor — but
                # count it: a *remote* tailer in this position has lost
                # deltas and must resnapshot.
                state["truncated_cursors"] += 1
            # seqs are contiguous even across compaction, so the gap is
            # exactly the number of delta batches this refresh covers
            state["batches_seen"] += position - state["cursor"]
            state["cursor"] = position
            state["summary"] = summary
            state["refreshes"] += 1
            self._refreshes += 1
            _MONITOR_REFRESHES.inc()
            out["refreshed"] += 1
            metric = state["spec"]["metric"]
            value = float(summary[metric])
            baseline = float(state["baseline"][metric])
            try:
                for detector in state["detectors"]:
                    fired = detector.update(value, baseline)
                    if fired is not None:
                        self._emit(state, detector, metric, value, baseline, fired)
                        out["alerts"] += 1
            except Exception as exc:  # noqa: BLE001 - isolate per monitor
                self._refresh_failures += 1
                _MONITOR_REFRESH_FAILURES.inc()
                out["failed"] += 1
                self._emit_refresh_failure(state, exc)
        return out

    def _emit_refresh_failure(self, state: dict, exc: Exception) -> None:
        """Surface a contained per-monitor refresh failure as an alert.

        Typed like any drift alert so ``watch`` clients and the journal
        see it, with ``detector="refresh_failure"`` / ``direction=
        "error"`` marking it as operational rather than statistical.
        """
        metric = state["spec"]["metric"]
        alert = Alert(
            monitor_id=state["id"],
            detector="refresh_failure",
            metric=metric,
            value=0.0,
            baseline=float(state["baseline"].get(metric, 0.0)),
            magnitude=0.0,
            direction="error",
            wal_seq=state["cursor"],
            table_version=int(self._session.table_version),
        )
        state["alerts"] += 1
        _MONITOR_ALERTS.inc()
        if self._journal is not None:
            data = {
                "alert": alert.to_json(),
                "error": f"{type(exc).__name__}: {exc}",
            }
            request_id = _tracing.current_trace_id()
            if request_id is not None:
                data["request_id"] = request_id
            self._journal.append("alert", data)
        with self._cond:
            self._alert_seq += 1
            self._alerts.append((self._alert_seq, alert))
            self._cond.notify_all()

    def _emit(
        self,
        state: dict,
        detector,
        metric: str,
        value: float,
        baseline: float,
        fired: tuple[float, str],
    ) -> None:
        magnitude, direction = fired
        alert = Alert(
            monitor_id=state["id"],
            detector=detector.name,
            metric=metric,
            value=value,
            baseline=baseline,
            magnitude=magnitude,
            direction=direction,
            wal_seq=state["cursor"],
            table_version=int(self._session.table_version),
        )
        state["alerts"] += 1
        _MONITOR_ALERTS.inc()
        if self._journal is not None:
            data = {
                "alert": alert.to_json(),
                "states": {
                    d.name: d.export_state() for d in state["detectors"]
                },
            }
            # The update that triggered the alert, when the refresh ran
            # inside a traced request (dispatch-lane notify path).
            request_id = _tracing.current_trace_id()
            if request_id is not None:
                data["request_id"] = request_id
            self._journal.append("alert", data)
        with self._cond:
            self._alert_seq += 1
            self._alerts.append((self._alert_seq, alert))
            self._cond.notify_all()

    # -- watch (any thread) ------------------------------------------------

    def watch(
        self, cursor: int = 0, timeout: float = WATCH_DEFAULT_TIMEOUT
    ) -> dict:
        """Long-poll for alerts with alert-seq greater than ``cursor``.

        Returns immediately when newer alerts are already buffered;
        otherwise blocks up to ``timeout`` seconds for the next one.
        The response's ``cursor`` is what the client passes next time;
        ``cursor_truncated`` warns that alerts between the request
        cursor and the oldest buffered one have fallen off the ring
        (they are still in the journal).
        """
        cursor = int(cursor)
        timeout = max(0.0, min(float(timeout), WATCH_MAX_TIMEOUT))
        deadline = time.monotonic() + timeout

        def _reply(fresh: list[tuple[int, Alert]], timed_out: bool) -> dict:
            oldest = self._alerts[0][0] if self._alerts else self._alert_seq + 1
            return {
                "alerts": [
                    dict(alert.to_json(), seq=seq) for seq, alert in fresh
                ],
                "cursor": fresh[-1][0] if fresh else cursor,
                "timed_out": timed_out,
                "alerts_total": self._alert_seq,
                "cursor_truncated": cursor + 1 < oldest,
            }

        with self._cond:
            while True:
                fresh = [(s, a) for s, a in self._alerts if s > cursor]
                if fresh:
                    return _reply(fresh, timed_out=False)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return _reply([], timed_out=True)
                self._cond.wait(remaining)

    # -- recovery / lifecycle ----------------------------------------------

    def _recover(self, journal: MonitorJournal) -> None:
        """Rebuild registrations, alert history and detector state."""
        max_id = 0
        for record in journal.replay():
            kind, data = record["kind"], record["data"]
            if kind == "register":
                spec = data["spec"]
                baseline = dict(data["baseline"])
                self._monitors[str(data["id"])] = {
                    "id": str(data["id"]),
                    "spec": spec,
                    "baseline": baseline,
                    "summary": dict(baseline),
                    "cursor": int(data["cursor"]),
                    "registered_at": int(data["cursor"]),
                    "batches_seen": 0,
                    "refreshes": 0,
                    "alerts": 0,
                    "truncated_cursors": 0,
                    "detectors": build_detectors(spec),
                }
                try:
                    max_id = max(max_id, int(str(data["id"]).lstrip("m")))
                except ValueError:
                    pass
            elif kind == "remove":
                self._monitors.pop(str(data["id"]), None)
            elif kind == "alert":
                doc = data["alert"]
                self._alert_seq += 1
                self._alerts.append((self._alert_seq, Alert.from_json(doc)))
                state = self._monitors.get(str(doc["monitor_id"]))
                if state is not None:
                    state["alerts"] += 1
                    # the journal checkpoints detector state at each
                    # alert — the last one wins, so accumulators resume
                    # from their last externally visible value
                    for detector in state["detectors"]:
                        checkpoint = (data.get("states") or {}).get(
                            detector.name
                        )
                        if checkpoint is not None:
                            detector.load_state(checkpoint)
        self._next_id = max_id + 1

    def close(self) -> None:
        """Release the journal handle (the monitor state stays replayable)."""
        if self._journal is not None:
            self._journal.close()

    def stats(self) -> dict:
        """Counters for the service's stats endpoint."""
        return {
            "monitors": len(self._monitors),
            "alerts_total": self._alert_seq,
            "buffered_alerts": len(self._alerts),
            "refreshes": self._refreshes,
            "refresh_errors": self._refresh_errors,
            "refresh_failures": self._refresh_failures,
            "journal": self._journal.stats() if self._journal else None,
        }


__all__ = [
    "ALERT_BUFFER",
    "WATCH_DEFAULT_TIMEOUT",
    "WATCH_MAX_TIMEOUT",
    "MonitorSet",
]
