"""Incremental monitor summaries and their rebuild-parity oracle.

A monitor's summary is a small dict of floats computed from the engine's
*incrementally maintained* state — count tensors kept current by
``ContingencyEngine.apply_delta`` in O(|delta|) per batch — never from a
row scan. Four kinds:

``score``
    NEC / SUF / NESUF of one pinned ``attribute: value`` vs ``baseline``
    contrast (optionally inside a context), via the batched
    :meth:`ScoreEstimator.score_arrays` tensor path.
``fairness``
    Max NEC / SUF over all ordered value pairs of a protected attribute
    plus the observational demographic disparity from the
    ``(attribute, outcome)`` count tensor.
``monotonicity``
    Worst step-down and violating-step count of the conditional positive
    rate along the attribute's value order, from the same count tensor.
``recourse``
    Feasibility rate (and cost stats) of a fixed probe cohort through
    the recourse solver — the "can the affected still act?" monitor.

The parity contract: :func:`compute_summary` over a live, delta-updated
session must be **bit-identical** to :func:`rebuild_summary`, which
recomputes the identical quantities on a *fresh* estimator built from
the current table. Count tensors after ``apply_delta`` equal a fresh
recount exactly (integer counts — property-tested since PR 2), and every
summary here is a deterministic function of those counts, so the
contract holds with ``==``, not tolerances. This is the
answering-queries-under-updates discipline (arXiv 1702.08764):
explanations as standing queries whose refresh is constant-delay in the
update, with the from-scratch evaluation as the correctness oracle.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.fairness import (
    demographic_disparity_from_counts,
    group_outcome_counts,
)
from repro.core.monotonicity import monotonicity_from_counts
from repro.core.recourse import RecourseSolver
from repro.core.scores import SCORE_KINDS, ScoreEstimator
from repro.utils.exceptions import DomainError

MONITOR_KINDS = ("score", "fairness", "monotonicity", "recourse")

#: the summary keys each kind produces; the first is the default metric
#: a drift detector tracks.
METRICS = {
    "score": ("necessity", "sufficiency", "necessity_sufficiency"),
    "fairness": ("max_necessity", "max_sufficiency", "demographic_disparity"),
    "monotonicity": ("worst_step_down", "violations"),
    "recourse": (
        "feasibility_rate",
        "feasible",
        "infeasible",
        "already_satisfied",
        "mean_cost",
    ),
}

#: default probe-cohort size for recourse monitors (capped — the probe
#: is re-solved on every refresh).
DEFAULT_PROBE_SIZE = 32
MAX_PROBE_SIZE = 256


def _code_of(column, value) -> int:
    """Label -> code, tolerating JSON/CLI string round trips of labels."""
    try:
        return int(column.code_of(value))
    except DomainError:
        for code, category in enumerate(column.categories):
            if str(category) == str(value):
                return code
        raise


def encode_spec(lewis, payload: Mapping) -> dict:
    """Validate a registration payload and freeze it into code space.

    Labels are encoded against the current domains *once*, at
    registration, so every later refresh is pure code-space arithmetic
    (and a relabeled request cannot drift the monitored quantity).
    Returns the JSON-safe spec dict the journal records. Raises
    ``ValueError`` / ``KeyError`` / ``DomainError`` on bad payloads —
    the service maps all three to 400s.
    """
    kind = payload.get("kind")
    if kind not in MONITOR_KINDS:
        raise ValueError(
            f"monitor kind must be one of {MONITOR_KINDS}, got {kind!r}"
        )
    params = dict(payload.get("params") or {})
    metric = payload.get("metric") or METRICS[kind][0]
    if metric not in METRICS[kind]:
        raise ValueError(
            f"metric {metric!r} not produced by kind {kind!r}; "
            f"options: {METRICS[kind]}"
        )
    spec: dict = {
        "kind": kind,
        "metric": str(metric),
        "threshold": (
            float(payload["threshold"])
            if payload.get("threshold") is not None
            else None
        ),
        "cusum": dict(payload["cusum"]) if payload.get("cusum") else None,
        "params": params,
    }
    data = lewis.data
    if kind == "score":
        attribute = params.get("attribute")
        if not attribute or attribute not in data:
            raise ValueError(f"score monitor needs a known attribute, got {attribute!r}")
        if "value" not in params or "baseline" not in params:
            raise ValueError("score monitor needs 'value' and 'baseline' params")
        col = data.column(attribute)
        treatment = _code_of(col, params["value"])
        baseline = _code_of(col, params["baseline"])
        if treatment == baseline:
            raise ValueError("value and baseline encode to the same code")
        spec["coded"] = {
            "attribute": str(attribute),
            "treatment": treatment,
            "baseline": baseline,
            "context": {
                str(n): _code_of(data.column(n), v)
                for n, v in (params.get("context") or {}).items()
            },
        }
    elif kind in ("fairness", "monotonicity"):
        attribute = params.get("attribute")
        if not attribute or attribute not in data:
            raise ValueError(
                f"{kind} monitor needs a known attribute, got {attribute!r}"
            )
        spec["coded"] = {
            "attribute": str(attribute),
            "context": {
                str(n): _code_of(data.column(n), v)
                for n, v in (params.get("context") or {}).items()
            },
        }
    else:  # recourse
        actionable = list(params.get("actionable") or [])
        if not actionable:
            raise ValueError("recourse monitor needs a non-empty actionable list")
        missing = [a for a in actionable if a not in data]
        if missing:
            raise KeyError(f"actionable attributes not in the data: {missing}")
        alpha = float(params.get("alpha", 0.8))
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if params.get("indices") is not None:
            indices = [int(i) for i in params["indices"]]
        else:
            size = min(
                int(params.get("probe_size", DEFAULT_PROBE_SIZE)), MAX_PROBE_SIZE
            )
            if size < 1:
                raise ValueError(f"probe_size must be positive, got {size}")
            indices = [int(i) for i in lewis.negative_indices()[:size]]
        if not indices:
            raise ValueError(
                "recourse monitor probe cohort is empty (no negative rows?)"
            )
        n = len(data)
        bad = [i for i in indices if not 0 <= i < n]
        if bad:
            raise IndexError(f"probe indices outside [0, {n}): {bad}")
        # Freeze the probe as full code rows: the cohort the monitor
        # tracks stays fixed even as deltas insert/delete table rows.
        probe = [
            {str(k): int(v) for k, v in data.row_codes(i).items()}
            for i in indices
        ]
        spec["coded"] = {
            "actionable": [str(a) for a in actionable],
            "alpha": alpha,
            "probe": probe,
        }
    return spec


def _conditional_outcome_counts(
    engine, attribute: str, context: Mapping[str, int], outcome: str
) -> tuple[np.ndarray, np.ndarray]:
    """``(positives, totals)`` per code of ``attribute`` inside ``context``."""
    if not context:
        return group_outcome_counts(engine, attribute, outcome)
    names = tuple(sorted({attribute, outcome, *context}))
    tensor = np.asarray(engine.tensor(names))
    index = tuple(
        int(context[n]) if n in context else slice(None) for n in names
    )
    sub = tensor[index]
    remaining = [n for n in names if n not in context]
    sub = np.moveaxis(
        sub, (remaining.index(attribute), remaining.index(outcome)), (0, 1)
    )
    return sub[:, 1], sub.sum(axis=1)


def _summarize(
    estimator: ScoreEstimator,
    spec: Mapping,
    solver_for: Callable[[Sequence[str]], RecourseSolver],
) -> dict[str, float]:
    """One summary pass against an arbitrary estimator/solver pair."""
    kind = spec["kind"]
    coded = spec["coded"]
    if kind == "score":
        attribute = coded["attribute"]
        arrays = estimator.score_arrays(
            [({attribute: coded["treatment"]}, {attribute: coded["baseline"]})],
            coded.get("context") or {},
        )
        return {k: float(arrays[k][0]) for k in SCORE_KINDS}
    if kind == "fairness":
        attribute = coded["attribute"]
        card = estimator._features.column(attribute).cardinality
        pairs = [
            ({attribute: hi}, {attribute: lo})
            for hi in range(card)
            for lo in range(hi)
        ]
        out = {"max_necessity": 0.0, "max_sufficiency": 0.0}
        if pairs:
            arrays = estimator.score_arrays(
                pairs, kinds=("necessity", "sufficiency")
            )
            out["max_necessity"] = float(arrays["necessity"].max())
            out["max_sufficiency"] = float(arrays["sufficiency"].max())
        positives, totals = group_outcome_counts(
            estimator.engine, attribute, estimator._outcome
        )
        out["demographic_disparity"] = demographic_disparity_from_counts(
            positives, totals
        )
        return out
    if kind == "monotonicity":
        positives, totals = _conditional_outcome_counts(
            estimator.engine,
            coded["attribute"],
            coded.get("context") or {},
            estimator._outcome,
        )
        worst, violations = monotonicity_from_counts(positives, totals)
        return {"worst_step_down": worst, "violations": float(violations)}
    # recourse
    solver = solver_for(coded["actionable"])
    results = solver.solve_batch(
        coded["probe"], alpha=float(coded["alpha"]), on_infeasible="none"
    )
    n = len(results)
    feasible = [r for r in results if r is not None]
    costs = [r.total_cost for r in feasible if not r.is_empty]
    return {
        "feasibility_rate": len(feasible) / n if n else 1.0,
        "feasible": float(len(feasible)),
        "infeasible": float(n - len(feasible)),
        "already_satisfied": float(sum(r.is_empty for r in feasible)),
        "mean_cost": float(np.mean(costs)) if costs else 0.0,
    }


def compute_summary(lewis, spec: Mapping) -> dict[str, float]:
    """The monitor's summary from the live session's incremental state."""
    return _summarize(
        lewis.estimator, spec, lambda actionable: lewis._recourse_solver(actionable, None)
    )


def rebuild_summary(lewis, spec: Mapping) -> dict[str, float]:
    """The same summary from a from-scratch rebuild — the parity oracle.

    Re-predicts the positive-decision vector over the session's
    *current* table (the O(n) model-inference pass the incremental path
    replaces with O(|delta|) predictions on inserted rows) and builds a
    fresh :class:`ScoreEstimator` (fresh contingency engine, fresh
    counts) on top, then recomputes the identical quantities.
    ``compute_summary(lewis, spec) == rebuild_summary(lewis, spec)`` bit
    for bit is the subsystem's correctness contract — it covers the
    maintained predictions as well as the maintained counts; it is also
    the recompute-per-batch straw man the benchmark races the
    incremental path against.
    """
    est = lewis.estimator
    positive = np.asarray(lewis.predict_positive(est._features), dtype=bool)
    fresh = ScoreEstimator(est._features, positive, diagram=est.diagram)
    return _summarize(
        fresh, spec, lambda actionable: RecourseSolver(fresh, list(actionable))
    )


__all__ = [
    "DEFAULT_PROBE_SIZE",
    "METRICS",
    "MONITOR_KINDS",
    "compute_summary",
    "encode_spec",
    "rebuild_summary",
]
