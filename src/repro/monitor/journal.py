"""Durable append-only journal for monitor registrations and alerts.

The monitor subsystem's external contract is its *history*: which
monitors were registered, against which baselines, and which alerts
fired at which WAL sequence numbers. Following the black-box
history-checking idea (arXiv 2301.07313 — validate a client-visible
history, not the implementation), that history is written to an
append-only JSONL journal with the same durability discipline as the
:class:`~repro.store.wal.DeltaLog`: every record carries a monotone
sequence number and a content digest, appends are flushed + fsync'd
before acknowledgement, recovery truncates exactly one torn tail and
refuses mid-log corruption.

Record kinds (the ``kind`` field):

``register``
    A monitor was created — carries the full spec and its baseline
    summary, so recovery can resume detection without recomputing the
    reference point.
``remove``
    A monitor was deleted.
``alert``
    A drift detector fired — carries the typed alert payload plus the
    detector state *after* the alert, so CUSUM accumulators resume
    from their last externally visible value.

Replaying the journal therefore reconstructs the full monitor set (and
its alert history) after a crash or an eviction/restore cycle.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Mapping

from repro.utils.exceptions import StoreError

KINDS = ("register", "remove", "alert")


def _digest(core: Mapping[str, Any]) -> str:
    payload = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


class MonitorJournal:
    """Append-only, fsync'd JSONL journal of monitor lifecycle records."""

    def __init__(self, path: str | Path, fsync: bool = True):
        self.path = Path(path)
        self._fsync = bool(fsync)
        self._lock = threading.Lock()
        self._fh = None
        self._appended = 0
        records, valid_bytes, total_bytes = self._scan()
        self._last_seq = records[-1]["seq"] if records else 0
        self._records = len(records)
        if valid_bytes < total_bytes:
            # torn tail from a crash mid-append: never acknowledged,
            # truncating it is the correct recovery.
            with open(self.path, "ab") as fh:
                fh.truncate(valid_bytes)

    # -- reading -----------------------------------------------------------

    def _scan(self) -> tuple[list[dict], int, int]:
        """Parse the journal; returns (records, valid bytes, total bytes)."""
        if not self.path.exists():
            return [], 0, 0
        raw = self.path.read_bytes()
        records: list[dict] = []
        offset = 0
        last_seq = 0
        # Only newline-terminated lines are records (see DeltaLog._scan
        # for why an unterminated-but-parseable tail must be dropped).
        *terminated, tail = raw.split(b"\n")
        for line in terminated:
            chunk = len(line) + 1
            stripped = line.strip()
            if not stripped:
                offset += chunk
                continue
            try:
                record = json.loads(stripped)
                core = {
                    "seq": record["seq"],
                    "kind": record["kind"],
                    "data": record["data"],
                }
                ok = record.get("crc") == _digest(core)
                ok = ok and record["kind"] in KINDS
                seq = int(record["seq"])
            except (ValueError, KeyError, TypeError):
                ok = False
                seq = -1
            if not ok or seq <= last_seq:
                raise StoreError(
                    f"corrupt monitor journal record at byte {offset} of "
                    f"{self.path}; refusing to replay an unreliable history"
                )
            records.append(core)
            last_seq = seq
            offset += chunk
        assert offset + len(tail) == len(raw)
        return records, offset, len(raw)

    def replay(self, after: int = 0) -> list[dict]:
        """Records with sequence number greater than ``after``, in order."""
        with self._lock:
            records, _valid, _total = self._scan()
        return [r for r in records if r["seq"] > after]

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent acknowledged record."""
        return self._last_seq

    # -- writing -----------------------------------------------------------

    def append(self, kind: str, data: Mapping[str, Any]) -> int:
        """Durably append one record; returns its sequence number."""
        if kind not in KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        with self._lock:
            seq = self._last_seq + 1
            core = {"seq": seq, "kind": kind, "data": dict(data)}
            try:
                crc = _digest(core)
            except (TypeError, ValueError) as exc:
                raise StoreError(
                    f"journal record contains values JSON cannot represent: {exc}"
                ) from exc
            record = dict(core)
            record["crc"] = crc
            line = json.dumps(
                record, sort_keys=True, separators=(",", ":")
            ).encode("utf-8") + b"\n"
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                created = not self.path.exists()
                self._fh = open(self.path, "ab")
                if created:
                    from repro.store.artifacts import _fsync_dir

                    _fsync_dir(self.path.parent)
            self._fh.write(line)
            self._fh.flush()
            if self._fsync:
                os.fsync(self._fh.fileno())
            self._last_seq = seq
            self._records += 1
            self._appended += 1
            return seq

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the append handle (reads still work; appends reopen)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "MonitorJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Journal counters: size on disk, record count, last sequence."""
        return {
            "path": str(self.path),
            "last_seq": self._last_seq,
            "records": self._records,
            "appended": self._appended,
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
            "fsync": self._fsync,
        }


__all__ = ["KINDS", "MonitorJournal"]
