"""Drift detectors and the typed alert record they emit.

A monitor tracks one scalar metric of its summary (e.g. the NEC score
of ``income=high`` vs ``low``). At registration the current value is
frozen as the *baseline*; after every refresh the detectors compare the
new value against it:

:class:`ThresholdDetector`
    Fires whenever ``|value - baseline|`` exceeds a fixed threshold —
    the memoryless detector, right for hard compliance bounds.

:class:`CusumDetector`
    Two-sided CUSUM: accumulates deviations beyond a ``slack`` band and
    fires when either accumulator crosses ``limit`` — the sequential
    detector, right for slow drifts that never trip a per-refresh
    threshold. After firing, the tripped accumulator resets so one
    sustained shift yields one alert per crossing, not one per refresh.

Both are pure state machines over floats: no engine access, trivially
unit-testable, and their state is JSON-serializable so the journal can
checkpoint it inside alert records (recovery resumes accumulators from
the last externally visible value).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Mapping


@dataclass(frozen=True)
class Alert:
    """One typed drift alert, as appended to the monitor journal."""

    monitor_id: str
    detector: str  # "threshold" | "cusum" | "refresh_failure"
    metric: str
    value: float
    baseline: float
    magnitude: float  # |value - baseline| (threshold) or accumulator (cusum)
    direction: str  # "up" | "down" | "error" (refresh_failure)
    wal_seq: int
    table_version: int

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: Mapping) -> "Alert":
        return cls(
            monitor_id=str(data["monitor_id"]),
            detector=str(data["detector"]),
            metric=str(data["metric"]),
            value=float(data["value"]),
            baseline=float(data["baseline"]),
            magnitude=float(data["magnitude"]),
            direction=str(data["direction"]),
            wal_seq=int(data["wal_seq"]),
            table_version=int(data["table_version"]),
        )


class ThresholdDetector:
    """Fires when the metric moves more than ``threshold`` off baseline."""

    name = "threshold"

    def __init__(self, threshold: float):
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.threshold = float(threshold)
        self._firing = False

    def update(self, value: float, baseline: float) -> tuple[float, str] | None:
        """Returns ``(magnitude, direction)`` when firing, else None.

        Edge-triggered: a metric that stays beyond the threshold alerts
        once on crossing, then re-arms only after returning inside the
        band — a stuck metric should not alert on every delta batch.
        """
        deviation = float(value) - float(baseline)
        beyond = abs(deviation) > self.threshold
        fired = beyond and not self._firing
        self._firing = beyond
        if fired:
            return abs(deviation), "up" if deviation > 0 else "down"
        return None

    def export_state(self) -> dict:
        return {"firing": self._firing}

    def load_state(self, state: Mapping) -> None:
        self._firing = bool(state.get("firing", False))


class CusumDetector:
    """Two-sided CUSUM over metric deviations from baseline.

    ``s_pos`` accumulates ``max(0, s + (value - baseline - slack))``,
    ``s_neg`` the mirror image; crossing ``limit`` fires and resets the
    tripped side.
    """

    name = "cusum"

    def __init__(self, limit: float, slack: float = 0.0):
        if limit <= 0:
            raise ValueError(f"cusum limit must be positive, got {limit}")
        if slack < 0:
            raise ValueError(f"cusum slack must be >= 0, got {slack}")
        self.limit = float(limit)
        self.slack = float(slack)
        self._s_pos = 0.0
        self._s_neg = 0.0

    def update(self, value: float, baseline: float) -> tuple[float, str] | None:
        deviation = float(value) - float(baseline)
        self._s_pos = max(0.0, self._s_pos + deviation - self.slack)
        self._s_neg = max(0.0, self._s_neg - deviation - self.slack)
        if self._s_pos > self.limit:
            magnitude = self._s_pos
            self._s_pos = 0.0
            return magnitude, "up"
        if self._s_neg > self.limit:
            magnitude = self._s_neg
            self._s_neg = 0.0
            return magnitude, "down"
        return None

    def export_state(self) -> dict:
        return {"s_pos": self._s_pos, "s_neg": self._s_neg}

    def load_state(self, state: Mapping) -> None:
        self._s_pos = float(state.get("s_pos", 0.0))
        self._s_neg = float(state.get("s_neg", 0.0))


def build_detectors(spec: Mapping) -> list:
    """Instantiate the detectors a monitor spec asks for.

    ``spec["threshold"]`` (float) and/or ``spec["cusum"]``
    (``{"limit": float, "slack": float}``); a monitor with neither just
    tracks its summary without alerting.
    """
    detectors = []
    threshold = spec.get("threshold")
    if threshold is not None:
        detectors.append(ThresholdDetector(float(threshold)))
    cusum = spec.get("cusum")
    if cusum is not None:
        detectors.append(
            CusumDetector(
                float(cusum["limit"]), slack=float(cusum.get("slack", 0.0))
            )
        )
    return detectors


__all__ = [
    "Alert",
    "CusumDetector",
    "ThresholdDetector",
    "build_detectors",
]
