"""Per-tenant monitor lifecycle: attach, notify, watch, detach.

The HTTP server owns exactly one :class:`MonitorScheduler`. It maps
sessions to their :class:`~repro.monitor.monitors.MonitorSet`, creating
one lazily on first use — with a durable journal under the store for
registry tenants, in-memory for the default session — and re-attaches
after an eviction/restore cycle: the registry hands out a *new* session
object for the same tenant, and the scheduler detects the identity
change, closes the stale set, and rebuilds from the tenant's journal
(registrations, alert history and detector state all replay).

``notify`` is the update hook: after a successful ``/v1/update`` the
server pokes the session's monitor set, which queues one asynchronous
refresh on the session's own dispatch lane. Tenants without monitors
cost nothing — ``notify`` only acts on sessions that already have a
set attached.
"""

from __future__ import annotations

import threading
import weakref

from repro.monitor.journal import MonitorJournal
from repro.monitor.monitors import WATCH_DEFAULT_TIMEOUT, MonitorSet
from repro.obs import metrics as _obs
from repro.service.session import ExplainerSession


class MonitorScheduler:
    """Routes monitor traffic to the right session's :class:`MonitorSet`."""

    def __init__(self, store=None):
        self._store = store
        self._lock = threading.Lock()
        #: tenant name ("" for the default session) -> (session, set)
        self._entries: dict[str, tuple[ExplainerSession, MonitorSet]] = {}
        # Weakly-referenced registry collector: attached-set gauges are
        # sampled at scrape time, and the collector unregisters itself
        # (LookupError) once the scheduler is garbage-collected.
        self._collector_key = f"monitor_scheduler:{id(self)}"
        ref = weakref.ref(self)

        def collect():
            scheduler = ref()
            if scheduler is None:
                raise LookupError("monitor scheduler gone")
            samples: dict[str, float] = {}
            with scheduler._lock:
                entries = dict(scheduler._entries)
            samples[_obs.full_name("repro_monitor_sets")] = float(len(entries))
            monitors = alerts = 0.0
            for _name, (_session, mset) in entries.items():
                stats = mset.stats()
                monitors += stats["monitors"]
                alerts += stats["alerts_total"]
            samples[_obs.full_name("repro_monitor_monitors")] = monitors
            samples[_obs.full_name("repro_monitor_alert_seq")] = alerts
            return samples

        _obs.get_registry().register_collector(self._collector_key, collect)

    def ensure(self, session: ExplainerSession) -> MonitorSet:
        """The session's monitor set, creating or re-attaching as needed."""
        key = session.tenant or ""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry[0] is session:
                return entry[1]
            if entry is not None:
                # same tenant, new session object: it was evicted and
                # restored — release the stale journal handle first
                entry[1].close()
            journal = None
            if self._store is not None and session.tenant:
                journal = MonitorJournal(
                    self._store.monitor_journal_path(session.tenant)
                )
            monitors = MonitorSet(session, journal=journal)
            self._entries[key] = (session, monitors)
        if entry is not None and monitors.stats()["monitors"]:
            # recovered monitors carry pre-eviction cursors; one refresh
            # catches them up with everything the WAL replay applied
            monitors.poke()
        return monitors

    def peek(self, session: ExplainerSession) -> MonitorSet | None:
        """The session's monitor set if one is attached, else None."""
        with self._lock:
            entry = self._entries.get(session.tenant or "")
            if entry is not None and entry[0] is session:
                return entry[1]
            return None

    def notify(self, session: ExplainerSession) -> None:
        """Post-update hook: queue a refresh for the session's monitors."""
        monitors = self.peek(session)
        if monitors is not None:
            monitors.poke()

    def watch(
        self,
        session: ExplainerSession,
        cursor: int = 0,
        timeout: float = WATCH_DEFAULT_TIMEOUT,
    ) -> dict:
        """Long-poll the session's alert stream (attaching if needed)."""
        return self.ensure(session).watch(cursor=cursor, timeout=timeout)

    def drop(self, tenant: str) -> None:
        """Forget a tenant's set (its removal path closes the journal)."""
        with self._lock:
            entry = self._entries.pop(tenant or "", None)
        if entry is not None:
            entry[1].close()

    def close(self) -> None:
        """Release every journal handle."""
        _obs.get_registry().unregister_collector(self._collector_key)
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for _session, monitors in entries:
            monitors.close()

    def stats(self) -> dict:
        """Per-tenant monitor counters."""
        with self._lock:
            entries = dict(self._entries)
        return {
            "tenants": {
                name or "<default>": monitors.stats()
                for name, (_session, monitors) in entries.items()
            },
        }


__all__ = ["MonitorScheduler"]
