"""Streaming audit & drift subsystem: standing monitors over the WAL.

Registered monitors — NEC/SUF score summaries for pinned contrasts,
fairness-gap and monotonicity-violation counters, recourse-feasibility
rates over probe cohorts — refresh incrementally from the engine's
delta-updated count tensors after every WAL batch, compare against
frozen baselines through threshold / CUSUM drift detectors, and append
typed alerts to a durable journal that long-poll ``watch`` clients
consume with a seq cursor.
"""

from repro.monitor.detectors import (
    Alert,
    CusumDetector,
    ThresholdDetector,
    build_detectors,
)
from repro.monitor.journal import MonitorJournal
from repro.monitor.monitors import MonitorSet
from repro.monitor.scheduler import MonitorScheduler
from repro.monitor.summaries import (
    METRICS,
    MONITOR_KINDS,
    compute_summary,
    encode_spec,
    rebuild_summary,
)

__all__ = [
    "METRICS",
    "MONITOR_KINDS",
    "Alert",
    "CusumDetector",
    "MonitorJournal",
    "MonitorScheduler",
    "MonitorSet",
    "ThresholdDetector",
    "build_detectors",
    "compute_summary",
    "encode_spec",
    "rebuild_summary",
]
