"""The explanation serving layer: sessions, caching, batching, updates.

This subpackage turns the LEWIS library into a servable system.  A
:class:`ExplainerSession` owns one model + :class:`~repro.core.lewis
.Lewis` + contingency engine and answers typed request objects; a
byte-bounded :class:`ResultCache` memoises whole responses keyed by
(model fingerprint, table version, canonical query); a
:class:`MicroBatcher` coalesces concurrent requests into batched engine
passes; :class:`TableDelta` updates flow through
``ContingencyEngine.apply_delta`` so standing state is maintained
incrementally instead of rebuilt; and :mod:`repro.service.server` puts a
stdlib JSON-over-HTTP front end on top (``python -m repro.cli serve``).
"""

from repro.service.cache import ResultCache, canonical, payload_bytes
from repro.service.scheduler import MicroBatcher
from repro.service.session import (
    AuditRequest,
    ContextExplainRequest,
    ExplainerSession,
    GlobalExplainRequest,
    LocalExplainBatchRequest,
    LocalExplainRequest,
    RecourseBatchRequest,
    RecourseRequest,
    ScoresRequest,
    UpdateRequest,
    model_fingerprint,
)
from repro.service.updates import TableDelta, apply_delta
from repro.service.server import create_server, serve

__all__ = [
    "AuditRequest",
    "ContextExplainRequest",
    "ExplainerSession",
    "GlobalExplainRequest",
    "LocalExplainBatchRequest",
    "LocalExplainRequest",
    "MicroBatcher",
    "RecourseBatchRequest",
    "RecourseRequest",
    "ResultCache",
    "ScoresRequest",
    "TableDelta",
    "UpdateRequest",
    "apply_delta",
    "canonical",
    "create_server",
    "model_fingerprint",
    "payload_bytes",
    "serve",
]
