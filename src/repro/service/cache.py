"""Byte-bounded result cache for the explanation service.

Explanation responses are pure functions of *(model, data, query)*:
the same black box over the same table state answers the same request
identically, so the serving layer can memoise whole responses.  The
cache key is ``(tenant, model fingerprint, table state, canonical
query)`` — the tenant scopes entries to one registry principal, the
fingerprint pins the model, the session's state token pins the table
state, and :func:`canonical` makes structurally equal queries (dict
ordering, list vs tuple, numpy scalars) collide.

Storage is a :class:`~repro.utils.lru.ByteBudgetLRU` sized by each
response's JSON-encoded byte length, so operators reason about the
budget in response-payload terms (``--cache-mb`` on the CLI).  A data
update does not clear the cache: :meth:`ResultCache.purge_stale` drops
only the entries keyed to superseded versions of the updated model/table
pair and leaves everything else hot.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Hashable, Mapping

from repro.utils.lru import ByteBudgetLRU


def canonical(value: Any) -> Hashable:
    """Recursively convert a query payload to a hashable canonical form.

    Mappings become sorted ``(key, value)`` tuples, sequences become
    tuples, sets become sorted tuples, and numpy scalars collapse to
    their Python equivalents via ``item()``.
    """
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), canonical(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(canonical(v) for v in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(canonical(v) for v in value))
    item = getattr(value, "item", None)
    if item is not None and getattr(value, "ndim", 1) == 0:
        return item()
    return value


def payload_bytes(payload: Any) -> int:
    """Approximate response size: its JSON encoding length."""
    return len(json.dumps(payload, default=str, separators=(",", ":")))


class ResultCache:
    """LRU explanation cache keyed by (fingerprint, version, query).

    Parameters
    ----------
    max_bytes:
        Approximate budget on summed JSON-encoded response sizes.
    max_entries:
        Optional additional entry-count bound.
    """

    def __init__(self, max_bytes: int | None = 32 << 20, max_entries: int | None = None):
        self._lru = ByteBudgetLRU(max_bytes=max_bytes, max_entries=max_entries)
        self._invalidations = 0
        # The cache may be shared by several sessions serving concurrent
        # traffic; the underlying LRU is not thread-safe, so every access
        # is guarded here rather than by any one session's lock.
        self._lock = threading.Lock()

    @staticmethod
    def key(
        fingerprint: str,
        state: Any,
        kind: str,
        params: Mapping[str, Any],
        tenant: str = "",
    ) -> tuple:
        """Build the canonical cache key for one request.

        ``state`` is the session's table-state token — a content-seeded
        hash chain advanced by every delta, not a bare counter, so two
        sessions whose update histories diverge can never collide even
        when they share a model, a schema, and a version number.

        ``tenant`` is the registry name the session serves under. It is
        part of the key because fingerprint + state pin only *content*:
        two tenants serving the same model over the same table state are
        still distinct principals, and a shared cache must never hand one
        tenant a response computed for the other.
        """
        return (str(tenant), str(fingerprint), str(state), str(kind), canonical(params))

    def get(self, key: tuple) -> Any:
        """Cached response for ``key`` or ``None`` (counts hit/miss)."""
        with self._lock:
            return self._lru.get(key)

    def put(self, key: tuple, payload: Any) -> None:
        """Store a response, sized by its JSON byte length."""
        size = payload_bytes(payload)
        with self._lock:
            self._lru.put(key, payload, size=size)

    def purge_stale(
        self, fingerprint: str, current_state: Any, tenant: str = ""
    ) -> int:
        """Drop the tenant's ``fingerprint`` entries not keyed to ``current_state``.

        Entries for other tenants or fingerprints (other sessions sharing
        the cache) are untouched.  Returns the number of entries dropped.
        """
        scope = (str(tenant), str(fingerprint))
        current = str(current_state)
        with self._lock:
            dropped = self._lru.discard_where(
                lambda k: k[:2] == scope and k[2] != current
            )
            self._invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop every entry (statistics are retained)."""
        with self._lock:
            self._lru.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def stats_struct(self) -> "CacheStats":
        """Unified :class:`~repro.obs.metrics.CacheStats` view."""
        with self._lock:
            return self._lru.stats_struct("result").with_extra(
                {"invalidations": self._invalidations}
            )

    def stats(self) -> dict:
        """Deprecated dict view of :meth:`stats_struct` (back-compat shim)."""
        return self.stats_struct().legacy_dict()
