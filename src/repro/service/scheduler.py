"""Micro-batching request dispatcher for the explanation service.

Under concurrent traffic, many in-flight requests reduce to the same
vectorized engine primitives: N score requests sharing a context are one
``ScoreEstimator.scores_batch`` call, N bounds requests one
``bounds_batch`` call, and a burst of local explanations shares the
lazily fitted per-attribute regression models.  :class:`MicroBatcher`
exploits this: callers submit ``(kind, payload)`` work items and block
on a future; a single dispatch thread drains the queue in short windows
and hands each kind's batch to its registered handler in one call, so K
concurrent requests cost one batched engine pass instead of K scalar
passes.

The batcher is deliberately generic — handlers are plain
``handler(payloads: list) -> list`` callables registered by the session
— so it is testable without a model and reusable for new request kinds.
``flush()`` drains synchronously for deterministic single-threaded use
(the batcher never *requires* its background thread).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable, Mapping

from repro.obs import metrics as _obs
from repro.obs import tracing as _tracing
from repro.utils import deadline as _deadline
from repro.utils.exceptions import DeadlineExceededError, OverloadedError

#: queue item: (kind, payload, future, enqueued_perf, trace context,
#: absolute monotonic deadline or None).
_Item = tuple[str, Any, Future, float, "dict | None", "float | None"]

#: default bound on queued-but-undispatched requests when the caller
#: doesn't pass ``max_queue``; 0 or negative disables the bound.
DEFAULT_MAX_QUEUE = 1024

# Per-kind instruments are created lazily at first dispatch; declare the
# families up front so /metrics advertises them from the first scrape.
_obs.get_registry().declare(
    "repro_batcher_queue_wait_seconds",
    "histogram",
    "Time a request spent queued before its batch dispatched.",
)
_obs.get_registry().declare(
    "repro_batcher_compute_seconds",
    "histogram",
    "Handler wall time for one dispatched batch.",
)
_obs.get_registry().declare(
    "repro_batcher_requests_total",
    "counter",
    "Requests served through the micro-batcher.",
)
_BATCHES_TOTAL = _obs.get_registry().counter(
    "repro_batcher_batches_total",
    "Dispatch rounds executed by the micro-batcher.",
)
_SHED_TOTAL = _obs.get_registry().counter(
    "repro_batcher_shed_total",
    "Requests rejected at submit because the bounded queue was full.",
)
_EXPIRED_TOTAL = _obs.get_registry().counter(
    "repro_batcher_expired_total",
    "Queued requests failed fast because their deadline passed in queue.",
)

#: per-kind instrument cache: label formatting + registry lookup happen
#: once per kind, not once per request (GIL-atomic dict ops; a racing
#: double-create resolves to the same registry instrument anyway).
_KIND_INSTRUMENTS: dict[str, tuple] = {}


def _kind_instruments(kind: str) -> tuple:
    cached = _KIND_INSTRUMENTS.get(kind)
    if cached is None:
        registry = _obs.get_registry()
        labels = {"kind": kind}
        cached = (
            registry.histogram(
                "repro_batcher_queue_wait_seconds", labels=labels
            ),
            registry.histogram(
                "repro_batcher_compute_seconds", labels=labels
            ),
            registry.counter("repro_batcher_requests_total", labels=labels),
        )
        _KIND_INSTRUMENTS[kind] = cached
    return cached


class MicroBatcher:
    """Coalesces concurrent requests into batched handler calls.

    Parameters
    ----------
    handlers:
        ``{kind: handler}`` where ``handler(payloads) -> results`` maps a
        batch of payloads to results aligned with the input order.
    window:
        Seconds the dispatch thread waits, after the first item of a
        batch arrives, for more items to coalesce.
    max_batch:
        Largest number of requests drained into one dispatch round.
    start:
        Start the background dispatch thread immediately. With
        ``start=False`` the batcher runs in synchronous mode: callers
        must invoke :meth:`flush` (tests, single-threaded embedding).
    max_queue:
        Bound on queued-but-undispatched requests; a submit beyond it
        raises :class:`OverloadedError` (the server turns that into a
        429 + ``Retry-After``).  Shedding at the door keeps latency
        bounded under overload: an unbounded queue accepts work it can
        only serve long after every client gave up.  ``None`` reads
        ``REPRO_MAX_QUEUE`` (default 1024); 0 or negative disables the
        bound.
    """

    def __init__(
        self,
        handlers: Mapping[str, Callable[[list], list]],
        window: float = 0.002,
        max_batch: int = 64,
        start: bool = True,
        max_queue: int | None = None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_queue is None:
            max_queue = int(os.environ.get("REPRO_MAX_QUEUE", DEFAULT_MAX_QUEUE))
        self._handlers = dict(handlers)
        self._window = float(window)
        self._max_batch = int(max_batch)
        self._max_queue = int(max_queue)
        self._queue: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._flush_lock = threading.Lock()
        self._closed = False
        self._requests = 0
        self._batches = 0
        self._largest_batch = 0
        self._shed = 0
        self._expired = 0
        self._thread: threading.Thread | None = None
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the background dispatch thread (idempotent)."""
        with self._lock:
            if self._thread is not None or self._closed:
                return
            self._thread = threading.Thread(
                target=self._run, name="repro-microbatcher", daemon=True
            )
            self._thread.start()

    def close(self) -> None:
        """Stop the dispatch thread and flush remaining work."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        if self._thread is not None:
            self._queue.put(None)  # wake the dispatcher
            self._thread.join(timeout=5.0)
            self._thread = None
        self.flush()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- registration ------------------------------------------------------

    def register(self, kind: str, handler: Callable[[list], list]) -> None:
        """Register (or replace) a handler after construction.

        Lets optional subsystems — e.g. the monitor scheduler — route
        their work onto the session's single dispatch lane without the
        session having to know about them at construction time.
        """
        with self._lock:
            self._handlers[kind] = handler

    # -- submission --------------------------------------------------------

    def submit(self, kind: str, payload: Any) -> Future:
        """Enqueue one request; the future resolves after its batch runs.

        Raises :class:`OverloadedError` (without enqueueing) when the
        bounded queue is already full — load shedding happens here, at
        the cheapest possible point, before the request costs anything.
        """
        if kind not in self._handlers:
            raise KeyError(
                f"no handler for request kind {kind!r}; "
                f"registered: {sorted(self._handlers)}"
            )
        if self._max_queue > 0 and self._queue.qsize() >= self._max_queue:
            self._shed += 1
            if _obs.enabled():
                _SHED_TOTAL.inc()
            raise OverloadedError(
                f"request queue full ({self._max_queue} pending); retry later"
            )
        future: Future = Future()
        # The caller's trace context and deadline ride along in the queue
        # item so the dispatch thread can attribute queue wait to the
        # trace and fail queued-but-expired requests without computing.
        self._queue.put(
            (
                kind,
                payload,
                future,
                time.perf_counter(),
                _tracing.current_context(),
                _deadline.current(),
            )
        )
        return future

    def run(self, kind: str, payload: Any) -> Any:
        """Submit and wait — the synchronous convenience path.

        In background mode the wait is where coalescing happens: while
        this caller blocks, other threads' requests join the same batch.
        In synchronous mode (no thread) the queue is flushed inline.
        """
        future = self.submit(kind, payload)
        if self._thread is None:
            self.flush()
        return future.result()

    # -- dispatch ----------------------------------------------------------

    def flush(self) -> int:
        """Drain the queue synchronously; returns the number served.

        Serialized by its own lock: after ``close()`` (e.g. a registry
        eviction) concurrent callers of :meth:`run` all fall back to
        inline flushing, and without the lock two of them would execute
        handler work — and touch the engine — simultaneously.  A waiter
        whose item was drained by the other flusher simply finds the
        queue empty and returns.
        """
        served = 0
        with self._flush_lock:
            while True:
                batch = self._drain(block=False)
                if not batch:
                    return served
                self._dispatch(batch)
                served += len(batch)

    def _drain(self, block: bool) -> list[_Item]:
        """Collect up to ``max_batch`` items, waiting ``window`` once."""
        items: list[_Item] = []
        try:
            first = self._queue.get(block=block)
        except queue.Empty:
            return items
        if first is None:
            return items
        items.append(first)
        # One coalescing window per batch: once the first item arrives,
        # wait up to ``window`` total for stragglers, then serve.
        deadline = time.monotonic() + self._window
        while len(items) < self._max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    item = self._queue.get(timeout=remaining)
                else:
                    item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is None:
                break
            items.append(item)
        return items

    def _dispatch(self, items: list[_Item]) -> None:
        observing = _obs.enabled()
        drained = time.perf_counter()
        now = time.monotonic()
        groups: dict[str, list[tuple[Any, Future, dict | None, float | None]]] = {}
        for kind, payload, future, enqueued, ctx, item_deadline in items:
            if item_deadline is not None and now >= item_deadline:
                # the deadline passed while the item sat in queue: fail
                # fast rather than compute an answer nobody is awaiting
                self._expired += 1
                if observing:
                    _EXPIRED_TOTAL.inc()
                future.set_exception(
                    DeadlineExceededError(
                        f"deadline expired while queued (kind {kind!r})"
                    )
                )
                continue
            groups.setdefault(kind, []).append((payload, future, ctx, item_deadline))
            if observing:
                wait = drained - enqueued
                _kind_instruments(kind)[0].observe(wait)
                _tracing.record_span(
                    ctx, "queue_wait", wait * 1e3, tags={"kind": kind}
                )
        for kind, entries in groups.items():
            payloads = [p for p, _f, _c, _d in entries]
            # Re-enter the first caller's trace so spans opened inside the
            # handler (solver chunks, WAL fsync) land in a real trace; the
            # other callers of the batch get a replayed ``compute`` span.
            lead_ctx = next((c for _p, _f, c, _d in entries if c is not None), None)
            # The handler computes for the whole group, so it runs under
            # the group's most generous deadline: aborting at the tightest
            # would fail co-batched requests that still have budget, and
            # any item without a deadline means the group has none.
            deadlines = [d for _p, _f, _c, d in entries]
            group_deadline = (
                max(deadlines) if all(d is not None for d in deadlines) else None
            )
            compute_started = time.perf_counter()
            token = _deadline.attach(group_deadline)
            try:
                with _tracing.attach(lead_ctx):
                    results = self._handlers[kind](payloads)
                if len(results) != len(payloads):
                    raise RuntimeError(
                        f"handler {kind!r} returned {len(results)} results "
                        f"for {len(payloads)} payloads"
                    )
            except BaseException as exc:  # propagate to every waiter
                for _payload, future, _ctx, _d in entries:
                    future.set_exception(exc)
                continue
            finally:
                _deadline.restore(token)
                if observing:
                    compute = time.perf_counter() - compute_started
                    instruments = _kind_instruments(kind)
                    instruments[1].observe(compute)
                    instruments[2].inc(len(entries))
                    tags = {"kind": kind, "batch_size": len(payloads)}
                    for _payload, _future, ctx, _d in entries:
                        _tracing.record_span(ctx, "compute", compute * 1e3, tags=tags)
            for (_payload, future, _ctx, _d), result in zip(entries, results):
                future.set_result(result)
        if observing:
            _BATCHES_TOTAL.inc()
        self._requests += len(items)
        self._batches += 1
        self._largest_batch = max(self._largest_batch, len(items))

    def _run(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
            batch = self._drain(block=True)
            if batch:
                self._dispatch(batch)
            with self._lock:
                if self._closed:
                    return

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Dispatch counters: how well requests coalesced."""
        return {
            "requests": self._requests,
            "batches": self._batches,
            "largest_batch": self._largest_batch,
            "mean_batch": (self._requests / self._batches) if self._batches else 0.0,
            "window_s": self._window,
            "max_batch": self._max_batch,
            "max_queue": self._max_queue,
            "queue_depth": self._queue.qsize(),
            "shed": self._shed,
            "expired": self._expired,
            "background": self._thread is not None,
        }
