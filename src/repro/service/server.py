"""Stdlib JSON-over-HTTP front end for an :class:`ExplainerSession`.

No framework, no dependency: :class:`http.server.ThreadingHTTPServer`
plus a request handler that maps JSON bodies onto the session's typed
request objects.  Because every handler thread funnels engine work into
the session's micro-batcher, concurrent HTTP requests coalesce into
batched engine passes while cache hits return without touching the
engine at all.

Endpoints (all responses are JSON)::

    GET  /v1/health            liveness + session identity
    GET  /v1/stats             cache / engine / scheduler statistics
    POST /v1/explain/global    {"attributes"?, "max_pairs_per_attribute"?}
    POST /v1/explain/context   {"context": {attr: value}, ...}
    POST /v1/explain/local     {"index"? | "individual"?, "attributes"?}
    POST /v1/recourse          {"index", "actionable"?, "alpha"?}
    POST /v1/audit             {"protected"?, "tolerance"?}
    POST /v1/scores            {"contrasts": [[values, baselines], ...], "context"?}
    POST /v1/update            {"insert": [row, ...], "delete": [index, ...]}

Client errors (unknown attribute/label, malformed body) return 400 with
``{"error": ...}``; unsupported conditioning events return 422;
infeasible recourse returns 409.  Start a server with ``python -m
repro.cli serve`` or programmatically via :func:`create_server`.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.service.session import (
    AuditRequest,
    ContextExplainRequest,
    ExplainerSession,
    GlobalExplainRequest,
    LocalExplainRequest,
    RecourseRequest,
    ScoresRequest,
)
from repro.service.updates import TableDelta
from repro.utils.exceptions import (
    DomainError,
    EstimationError,
    RecourseInfeasibleError,
)

MAX_BODY_BYTES = 8 << 20


class BadRequest(ValueError):
    """Malformed request body (HTTP 400)."""


def _opt_tuple(payload: Mapping[str, Any], key: str) -> tuple | None:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise BadRequest(f"{key!r} must be a list")
    return tuple(value)


def _as_int(value: Any, key: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{key!r} must be an integer")
    return int(value)


def _as_number(value: Any, key: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"{key!r} must be a number")
    return float(value)


def _build_request(path: str, payload: Mapping[str, Any]):
    """Translate (endpoint, JSON body) into a session request object."""
    if not isinstance(payload, Mapping):
        raise BadRequest("request body must be a JSON object")
    if path == "/v1/explain/global":
        return GlobalExplainRequest(
            attributes=_opt_tuple(payload, "attributes"),
            max_pairs_per_attribute=_as_int(
                payload.get("max_pairs_per_attribute", 8), "max_pairs_per_attribute"
            ),
        )
    if path == "/v1/explain/context":
        context = payload.get("context")
        if not isinstance(context, Mapping) or not context:
            raise BadRequest('"context" must be a non-empty object')
        return ContextExplainRequest(
            context=dict(context),
            attributes=_opt_tuple(payload, "attributes"),
            max_pairs_per_attribute=_as_int(
                payload.get("max_pairs_per_attribute", 8), "max_pairs_per_attribute"
            ),
        )
    if path == "/v1/explain/local":
        index = payload.get("index")
        individual = payload.get("individual")
        if (index is None) == (individual is None):
            raise BadRequest('pass exactly one of "index" / "individual"')
        if individual is not None and not isinstance(individual, Mapping):
            raise BadRequest('"individual" must be an object')
        return LocalExplainRequest(
            index=None if index is None else _as_int(index, "index"),
            individual=dict(individual) if individual is not None else None,
            attributes=_opt_tuple(payload, "attributes"),
        )
    if path == "/v1/recourse":
        if "index" not in payload:
            raise BadRequest('"index" is required')
        return RecourseRequest(
            index=_as_int(payload["index"], "index"),
            actionable=_opt_tuple(payload, "actionable"),
            alpha=_as_number(payload.get("alpha", 0.8), "alpha"),
        )
    if path == "/v1/audit":
        return AuditRequest(
            protected=_opt_tuple(payload, "protected"),
            tolerance=_as_number(payload.get("tolerance", 0.05), "tolerance"),
        )
    if path == "/v1/scores":
        contrasts = payload.get("contrasts")
        if not isinstance(contrasts, list) or not contrasts:
            raise BadRequest('"contrasts" must be a non-empty list')
        parsed = []
        for entry in contrasts:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not all(isinstance(side, Mapping) for side in entry)
            ):
                raise BadRequest(
                    "each contrast must be a [values, baselines] pair of objects"
                )
            parsed.append((dict(entry[0]), dict(entry[1])))
        context = payload.get("context", {})
        if not isinstance(context, Mapping):
            raise BadRequest('"context" must be an object')
        return ScoresRequest(contrasts=tuple(parsed), context=dict(context))
    raise KeyError(path)


class ExplainerRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the attached :class:`ExplainerSession`."""

    server_version = "repro-explainer/1.0"
    protocol_version = "HTTP/1.1"
    #: silence per-request stderr logging unless the server opts in.
    verbose = False

    @property
    def session(self) -> ExplainerSession:
        return self.server.session  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may leave an unread request body on the wire
            # (e.g. an oversized POST rejected before reading); under
            # HTTP/1.1 keep-alive those bytes would be parsed as the next
            # request line, so drop the connection instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        if not raw.strip():
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        session = self.session
        if self.path in ("/v1/health", "/health"):
            self._send_json(
                200,
                {
                    "status": "ok",
                    "fingerprint": session.fingerprint,
                    "table_version": session.table_version,
                    "n_rows": len(session.lewis.data),
                },
            )
        elif self.path in ("/v1/stats", "/stats"):
            self._send_json(200, session.stats())
        else:
            self._send_json(404, {"error": f"unknown endpoint {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        session = self.session
        started = time.perf_counter()
        try:
            payload = self._read_body()
            if self.path == "/v1/update":
                response = session.update(TableDelta.from_json(payload))
            else:
                try:
                    request = _build_request(self.path, payload)
                except KeyError:
                    self._send_json(
                        404, {"error": f"unknown endpoint {self.path!r}"}
                    )
                    return
                response = session.handle(request)
        except (BadRequest, DomainError, ValueError) as exc:
            # ValueError is the library's client-error convention
            # (malformed deltas, bad selectors, missing actionables).
            self._send_json(400, {"error": str(exc)})
            return
        except KeyError as exc:
            self._send_json(400, {"error": f"unknown attribute: {exc}"})
            return
        except IndexError as exc:
            self._send_json(400, {"error": f"row index out of range: {exc}"})
            return
        except RecourseInfeasibleError as exc:
            self._send_json(409, {"error": f"recourse infeasible: {exc}"})
            return
        except EstimationError as exc:
            self._send_json(422, {"error": f"unsupported conditioning event: {exc}"})
            return
        except Exception as exc:  # noqa: BLE001 - internal defects -> 500
            self._send_json(
                500, {"error": f"internal error: {type(exc).__name__}: {exc}"}
            )
            return
        response["table_version"] = session.table_version
        response["elapsed_ms"] = round((time.perf_counter() - started) * 1e3, 3)
        self._send_json(200, response)


def create_server(
    session: ExplainerSession,
    host: str = "127.0.0.1",
    port: int = 8321,
    verbose: bool = False,
) -> ThreadingHTTPServer:
    """Bind a threading HTTP server to ``session`` (``port=0`` auto-picks).

    The caller owns the lifecycle: ``serve_forever()`` to block,
    ``shutdown()`` + ``server_close()`` to stop (and close the session).
    """
    handler = type(
        "BoundHandler", (ExplainerRequestHandler,), {"verbose": verbose}
    )
    # Handler threads are only safe against a running dispatch lane —
    # without it each thread would execute engine work inline.
    session.start_background()
    server = ThreadingHTTPServer((host, port), handler)
    server.session = session  # type: ignore[attr-defined]
    return server


def serve(
    session: ExplainerSession,
    host: str = "127.0.0.1",
    port: int = 8321,
    verbose: bool = False,
) -> None:
    """Serve ``session`` until interrupted (the CLI entry point)."""
    server = create_server(session, host=host, port=port, verbose=verbose)
    bound = server.server_address
    print(f"explanation service listening on http://{bound[0]}:{bound[1]}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        session.close()
