"""Stdlib JSON-over-HTTP front end for explainer sessions.

No framework, no dependency: :class:`http.server.ThreadingHTTPServer`
plus a request handler that maps JSON bodies onto a session's typed
request objects.  Because every handler thread funnels engine work into
the session's micro-batcher, concurrent HTTP requests coalesce into
batched engine passes while cache hits return without touching the
engine at all.

The server runs in one of two modes (or both at once):

* **single-session** — one :class:`ExplainerSession` behind the classic
  endpoints,
* **multi-tenant** — a :class:`~repro.store.registry.Registry` of stored
  sessions; any path whose first segment names a tenant is served by
  that tenant's session (lazy-loaded from its snapshot + write-ahead
  log on first request), and ``/v1/registry/*`` manages the fleet.

Every POST opens a trace at the edge: the generated ``request_id`` (==
trace id) is echoed in success *and* error bodies, stamped into WAL
records written on its behalf, and the finished trace — queue-wait,
compute, chunk-solve and fsync spans included — is retrievable from
``GET /v1/traces`` the moment the response is sent.  ``GET /metrics``
exposes the process-wide metrics registry in Prometheus text format.

Endpoints (all responses are JSON unless noted)::

    GET  /metrics              Prometheus text exposition (0.0.4)
    GET  /v1/traces            finished traces, newest first
                               ?min_ms=F&limit=N&slow=1&id=<trace_id>
    GET  /healthz              process liveness; 200 even while draining
    GET  /readyz               per-subsystem readiness (store writable,
                               queue headroom, drain state); 503 when not
    GET  /v1/health            liveness + session identity
    GET  /v1/stats             cache / engine / scheduler statistics
                               + metrics registry snapshot + tracer stats
    POST /v1/explain/global    {"attributes"?, "max_pairs_per_attribute"?}
    POST /v1/explain/context   {"context": {attr: value}, ...}
    POST /v1/explain/local     {"index"? | "individual"?, "attributes"?}
    POST /v1/explain/local_batch {"indices": [i, ...], "attributes"?}
    POST /v1/recourse          {"index", "actionable"?, "alpha"?, "mode"?}
    POST /v1/recourse/batch    {"indices"?, "actionable"?, "alpha"?, "mode"?, "workers"?}
    POST /v1/audit             {"protected"?, "tolerance"?}
    POST /v1/scores            {"contrasts": [[values, baselines], ...], "context"?}
    POST /v1/update            {"insert": [row, ...], "delete": [index, ...]}

    POST   /v1/monitors        register a standing monitor
                               {"kind": "score"|"fairness"|"monotonicity"|"recourse",
                                "params": {...}, "metric"?, "threshold"?, "cusum"?}
    GET    /v1/monitors        list monitors (baselines, summaries, cursors)
    GET    /v1/monitors/<id>   one monitor's full state
    DELETE /v1/monitors/<id>   deregister a monitor
    GET    /v1/watch?cursor=N&timeout=S   long-poll for drift alerts newer
                               than alert-seq N (timeout seconds, max 60)

    GET    /v1/<tenant>/...            any endpoint above, tenant-scoped
    GET    /v1/registry                tenant listing + load state
    GET    /v1/registry/<tenant>       snapshots, manifest summary, stats
    POST   /v1/registry/<tenant>/snapshot   checkpoint now (snapshot + WAL compaction)
    POST   /v1/registry/<tenant>/evict      unload from memory (state stays on disk)
    DELETE /v1/registry/<tenant>       remove tenant (snapshots + log)

    GET    /v1/<tenant>/log?cursor=N&max=K  WAL shipping batch after seq N
                               (epoch-stamped; cursor_valid=false means
                               "resync from snapshot")
    GET    /v1/registry/<tenant>/manifest   latest manifest, verbatim
    GET    /v1/registry/<tenant>/object/<digest>  blob bytes (octet-stream)
    GET    /v1/replication     role, epoch, per-tenant lag, tailer state
    POST   /v1/replication/promote   {"catchup_store"?, "reason"?} become leader
    POST   /v1/replication/retarget  {"leader_url"} follow a new leader

Followers (``serve --follow URL``) answer every read; writes return 503
with the leader's URL.  Reads pinned with ``X-Repro-Min-State: <token>``
are refused with 503 until the replica has applied the state the client
last saw (read-your-writes across the fleet).

Client errors (unknown attribute/label, malformed body) return 400 with
``{"error": ...}``; unknown tenants/endpoints 404; unsupported
conditioning events 422; infeasible recourse 409.  Start a server with
``python -m repro.cli serve`` or programmatically via
:func:`create_server`; :func:`serve` installs SIGTERM/SIGINT handlers
that stop accepting, drain in-flight requests, and close the store.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from repro.obs import metrics as _obs
from repro.obs import tracing as _tracing
from repro.service.session import (
    AuditRequest,
    ContextExplainRequest,
    ExplainerSession,
    GlobalExplainRequest,
    LocalExplainBatchRequest,
    LocalExplainRequest,
    RecourseBatchRequest,
    RecourseRequest,
    ScoresRequest,
)
from repro.service.updates import TableDelta
from repro.utils import deadline as _deadline
from repro.utils.exceptions import (
    DeadlineExceededError,
    DegradedError,
    DomainError,
    EstimationError,
    OverloadedError,
    RecourseInfeasibleError,
    StoreError,
)

MAX_BODY_BYTES = 8 << 20

_obs.get_registry().declare(
    "repro_http_requests_total",
    "counter",
    "HTTP requests served, by method and status code.",
)
_obs.get_registry().declare(
    "repro_http_request_seconds",
    "histogram",
    "End-to-end HTTP request latency in seconds, by method.",
)

#: labelled-instrument cache: format the label suffix once per
#: (method, status) / method, not once per request.
_HTTP_COUNTERS: dict[tuple[str, int], Any] = {}
_HTTP_HISTOGRAMS: dict[str, Any] = {}


def _http_counter(method: str, status: int):
    counter = _HTTP_COUNTERS.get((method, status))
    if counter is None:
        counter = _obs.get_registry().counter(
            "repro_http_requests_total",
            labels={"method": method, "status": str(status)},
        )
        _HTTP_COUNTERS[(method, status)] = counter
    return counter


def _http_histogram(method: str):
    histogram = _HTTP_HISTOGRAMS.get(method)
    if histogram is None:
        histogram = _obs.get_registry().histogram(
            "repro_http_request_seconds", labels={"method": method}
        )
        _HTTP_HISTOGRAMS[method] = histogram
    return histogram

#: first path segments that can never be tenant names; tenant creation
#: rejects them (``repro.store.artifacts.RESERVED_TENANT_NAMES`` — keep
#: the two literals in sync; importing across the packages would cycle)
RESERVED_SEGMENTS = {
    "health",
    "healthz",
    "readyz",
    "stats",
    "explain",
    "recourse",
    "audit",
    "scores",
    "update",
    "registry",
    "monitors",
    "watch",
    "metrics",
    "traces",
    "obs",
    "log",
    "replication",
    "v1",
}


class BadRequest(ValueError):
    """Malformed request body (HTTP 400)."""


class NotFound(LookupError):
    """Unknown endpoint or tenant (HTTP 404)."""


def _opt_tuple(payload: Mapping[str, Any], key: str) -> tuple | None:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, (list, tuple)):
        raise BadRequest(f"{key!r} must be a list")
    return tuple(value)


def _as_int(value: Any, key: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{key!r} must be an integer")
    return int(value)


def _as_number(value: Any, key: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"{key!r} must be a number")
    return float(value)


def _as_index_tuple(value: Any, key: str) -> tuple[int, ...]:
    if not isinstance(value, (list, tuple)) or not value:
        raise BadRequest(f"{key!r} must be a non-empty list of row indices")
    return tuple(_as_int(v, key) for v in value)


def _as_mode(value: Any) -> str:
    if value not in ("exact", "anytime"):
        raise BadRequest('"mode" must be "exact" or "anytime"')
    return str(value)


def _build_request(path: str, payload: Mapping[str, Any]):
    """Translate (endpoint, JSON body) into a session request object."""
    if not isinstance(payload, Mapping):
        raise BadRequest("request body must be a JSON object")
    if path == "/v1/explain/global":
        return GlobalExplainRequest(
            attributes=_opt_tuple(payload, "attributes"),
            max_pairs_per_attribute=_as_int(
                payload.get("max_pairs_per_attribute", 8), "max_pairs_per_attribute"
            ),
        )
    if path == "/v1/explain/context":
        context = payload.get("context")
        if not isinstance(context, Mapping) or not context:
            raise BadRequest('"context" must be a non-empty object')
        return ContextExplainRequest(
            context=dict(context),
            attributes=_opt_tuple(payload, "attributes"),
            max_pairs_per_attribute=_as_int(
                payload.get("max_pairs_per_attribute", 8), "max_pairs_per_attribute"
            ),
        )
    if path == "/v1/explain/local":
        index = payload.get("index")
        individual = payload.get("individual")
        if (index is None) == (individual is None):
            raise BadRequest('pass exactly one of "index" / "individual"')
        if individual is not None and not isinstance(individual, Mapping):
            raise BadRequest('"individual" must be an object')
        return LocalExplainRequest(
            index=None if index is None else _as_int(index, "index"),
            individual=dict(individual) if individual is not None else None,
            attributes=_opt_tuple(payload, "attributes"),
        )
    if path == "/v1/explain/local_batch":
        if "indices" not in payload:
            raise BadRequest('"indices" is required')
        return LocalExplainBatchRequest(
            indices=_as_index_tuple(payload["indices"], "indices"),
            attributes=_opt_tuple(payload, "attributes"),
        )
    if path == "/v1/recourse":
        if "index" not in payload:
            raise BadRequest('"index" is required')
        return RecourseRequest(
            index=_as_int(payload["index"], "index"),
            actionable=_opt_tuple(payload, "actionable"),
            alpha=_as_number(payload.get("alpha", 0.8), "alpha"),
            mode=_as_mode(payload.get("mode", "exact")),
        )
    if path == "/v1/recourse/batch":
        indices = payload.get("indices")
        workers = payload.get("workers")
        if workers is not None:
            workers = _as_int(workers, "workers")
            if workers < 0:
                raise BadRequest('"workers" must be >= 0')
        return RecourseBatchRequest(
            indices=(
                _as_index_tuple(indices, "indices")
                if indices is not None
                else None
            ),
            actionable=_opt_tuple(payload, "actionable"),
            alpha=_as_number(payload.get("alpha", 0.8), "alpha"),
            mode=_as_mode(payload.get("mode", "exact")),
            workers=workers,
        )
    if path == "/v1/audit":
        return AuditRequest(
            protected=_opt_tuple(payload, "protected"),
            tolerance=_as_number(payload.get("tolerance", 0.05), "tolerance"),
        )
    if path == "/v1/scores":
        contrasts = payload.get("contrasts")
        if not isinstance(contrasts, list) or not contrasts:
            raise BadRequest('"contrasts" must be a non-empty list')
        parsed = []
        for entry in contrasts:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not all(isinstance(side, Mapping) for side in entry)
            ):
                raise BadRequest(
                    "each contrast must be a [values, baselines] pair of objects"
                )
            parsed.append((dict(entry[0]), dict(entry[1])))
        context = payload.get("context", {})
        if not isinstance(context, Mapping):
            raise BadRequest('"context" must be an object')
        return ScoresRequest(contrasts=tuple(parsed), context=dict(context))
    raise NotFound(path)


class ExplainerHTTPServer(ThreadingHTTPServer):
    """Threading server that *drains* on close.

    ``daemon_threads`` is off and ``block_on_close`` on, so
    ``server_close()`` joins every in-flight handler thread: a graceful
    shutdown answers accepted requests before the process exits.
    """

    daemon_threads = False
    block_on_close = True

    #: attached by :func:`create_server`
    session: ExplainerSession | None = None
    registry = None
    monitors = None
    #: :class:`~repro.replication.manager.ReplicationManager` when the
    #: server has a registry (leaders lend their epoch to shipped
    #: batches; followers tail, block writes, and can promote).
    replication = None
    #: set by :func:`serve` on SIGTERM/SIGINT: new work is refused with
    #: 503 + Retry-After while in-flight requests finish (liveness and
    #: metrics endpoints stay reachable for the supervisor).
    draining: bool = False


class ExplainerRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests to a session or a registry tenant."""

    server_version = "repro-explainer/2.0"
    protocol_version = "HTTP/1.1"
    #: socket timeout: bounds how long a drained shutdown can wait on an
    #: idle keep-alive connection.
    timeout = 30
    #: silence per-request stderr logging unless the server opts in.
    verbose = False

    @property
    def registry(self):
        return self.server.registry  # type: ignore[attr-defined]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.verbose:
            super().log_message(format, *args)

    # -- plumbing ----------------------------------------------------------

    def _observe_http(self, status: int) -> None:
        """Count the request and observe its latency (flag-gated)."""
        if not _obs.enabled():
            return
        method = str(getattr(self, "command", None) or "?")
        _http_counter(method, int(status)).inc()
        started = getattr(self, "_request_started", None)
        if started is not None:
            _http_histogram(method).observe(time.perf_counter() - started)

    def _send_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; charset=utf-8",
    ) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        self._observe_http(status)

    def _send_json(
        self,
        status: int,
        payload: dict,
        headers: Mapping[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if status >= 400:
            # Error paths may leave an unread request body on the wire
            # (e.g. an oversized POST rejected before reading); under
            # HTTP/1.1 keep-alive those bytes would be parsed as the next
            # request line, so drop the connection instead.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        self._observe_http(status)

    def _send_bytes(self, status: int, data: bytes) -> None:
        """Binary response (replication blob transfer)."""
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        self._observe_http(status)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length) if length else b"{}"
        if not raw.strip():
            return {}
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"invalid JSON body: {exc}") from exc

    # -- failure containment -----------------------------------------------

    def _shed_if_draining(
        self, parts: list[str], request_id: str | None = None
    ) -> bool:
        """Refuse new work with 503 + Retry-After while draining.

        Liveness (``/healthz``), readiness (``/readyz``) and ``/metrics``
        stay reachable so supervisors and scrapers can watch the drain
        complete.  Returns True when the request was answered here.
        """
        if not getattr(self.server, "draining", False):
            return False
        if parts and parts[0] in ("healthz", "readyz", "metrics"):
            return False
        body = {"error": "server is draining; retry against a healthy replica"}
        if request_id is not None:
            # shed responses carry the request id too, so a client
            # correlating retries across replicas never loses the trail
            body["request_id"] = request_id
        self._send_json(503, body, headers={"Retry-After": "1"})
        return True

    def _deadline_ms(self) -> float | None:
        """Per-request deadline budget in milliseconds, or ``None``.

        The ``X-Repro-Deadline-Ms`` header overrides the server-wide
        ``REPRO_DEADLINE_MS`` default; non-positive values disable the
        deadline for this request.
        """
        raw = self.headers.get("X-Repro-Deadline-Ms")
        if raw is None:
            raw = os.environ.get("REPRO_DEADLINE_MS")
            if raw is None:
                return None
            try:
                value = float(raw)
            except ValueError:
                return None  # a bad server-wide default must not 400 requests
        else:
            try:
                value = float(raw)
            except ValueError as exc:
                raise BadRequest(
                    f"X-Repro-Deadline-Ms must be a number, got {raw!r}"
                ) from exc
        return value if value > 0 else None

    def _health_report(self) -> tuple[bool, dict]:
        """Per-subsystem readiness checks behind ``/readyz``.

        Solver-pool failures are reported but never flip readiness: the
        inline fallback contains them.  Queue saturation and an
        unwritable store root do, because new work would bounce.
        """
        server = self.server
        draining = bool(getattr(server, "draining", False))
        checks: dict[str, dict[str, Any]] = {
            "accepting": {"ok": not draining, "draining": draining}
        }
        session = server.session  # type: ignore[attr-defined]
        if session is not None:
            scheduler = session.stats()["scheduler"]
            depth = int(scheduler.get("queue_depth", 0))
            cap = int(scheduler.get("max_queue", 0))
            checks["queue"] = {
                "ok": not (cap > 0 and depth >= cap),
                "depth": depth,
                "max_queue": cap,
                "shed": int(scheduler.get("shed", 0)),
                "expired": int(scheduler.get("expired", 0)),
            }
            solver = session.lewis.solver_stats()
            checks["solver_pool"] = {
                "ok": True,
                "pool_failures": int(solver.get("pool_failures", 0)),
                "pool_fallbacks": int(solver.get("pool_fallbacks", 0)),
            }
            log = getattr(session, "log", None)
            if log is not None:
                degraded = log.degraded
                checks["wal"] = {
                    "ok": degraded is None,
                    "degraded": degraded,
                    "last_seq": log.last_seq,
                }
        registry = self.registry
        if registry is not None:
            root = registry.store.root
            writable = os.access(root, os.W_OK) and os.access(
                root / "wal", os.W_OK
            )
            checks["store"] = {
                "ok": writable,
                "root": str(root),
                "writable": writable,
                "loaded": registry.loaded(),
            }
        ready = all(check["ok"] for check in checks.values())
        return ready, {
            "status": "ready" if ready else "unavailable",
            "checks": checks,
        }

    # -- routing -----------------------------------------------------------

    def _segments(self) -> list[str]:
        parts = [p for p in urlsplit(self.path).path.split("/") if p]
        if parts and parts[0] == "v1":
            parts = parts[1:]
        return parts

    def _query(self) -> dict[str, str]:
        """Last-wins flat view of the URL query string."""
        return {
            key: values[-1]
            for key, values in parse_qs(urlsplit(self.path).query).items()
        }

    def _resolve(self) -> tuple[ExplainerSession, str]:
        """Map the request path to (session, canonical ``/v1/...`` subpath).

        A first segment outside the reserved route names addresses a
        registry tenant; everything else goes to the server's default
        session (404 when the server is registry-only).
        """
        parts = self._segments()
        if not parts:
            raise NotFound(self.path)
        if parts[0] not in RESERVED_SEGMENTS:
            if self.registry is None:
                raise NotFound(f"unknown endpoint {self.path!r}")
            tenant, parts = parts[0], parts[1:]
            if not parts:
                raise NotFound(f"missing endpoint after tenant {tenant!r}")
            try:
                session = self.registry.get(tenant)
            except StoreError as exc:
                raise NotFound(str(exc)) from exc
            return session, "/v1/" + "/".join(parts)
        session = self.server.session  # type: ignore[attr-defined]
        if session is None:
            raise NotFound(
                f"no default session; address a tenant, e.g. /v1/<name>{self.path}"
            )
        return session, "/v1/" + "/".join(parts)

    def _monitor_scheduler(self):
        scheduler = self.server.monitors  # type: ignore[attr-defined]
        if scheduler is None:
            raise NotFound("this server has no monitor scheduler")
        return scheduler

    # -- monitor endpoints -------------------------------------------------

    def _monitors_get(self, session: ExplainerSession, sub: str) -> dict:
        monitors = self._monitor_scheduler().ensure(session)
        if sub == "/v1/monitors":
            return monitors.list()
        monitor_id = sub.rsplit("/", 1)[1]
        try:
            return monitors.get(monitor_id)
        except KeyError as exc:
            raise NotFound(f"unknown monitor {monitor_id!r}") from exc

    def _watch_get(self, session: ExplainerSession) -> dict:
        from repro.monitor.monitors import WATCH_DEFAULT_TIMEOUT

        query = self._query()
        try:
            cursor = int(query.get("cursor", 0))
            timeout = float(query.get("timeout", WATCH_DEFAULT_TIMEOUT))
        except ValueError as exc:
            raise BadRequest(
                f"cursor/timeout must be numeric: {exc}"
            ) from exc
        return self._monitor_scheduler().watch(
            session, cursor=cursor, timeout=timeout
        )

    # -- observability endpoints -------------------------------------------

    def _traces_get(self) -> dict:
        """``/v1/traces``: finished traces from the in-memory rings."""
        query = self._query()
        tracer = _tracing.get_tracer()
        trace_id = query.get("id")
        if trace_id is not None:
            record = tracer.get(trace_id)
            if record is None:
                raise NotFound(f"unknown trace {trace_id!r}")
            return {"traces": [record], "tracer": tracer.stats()}
        try:
            min_ms = float(query.get("min_ms", 0.0))
            limit = int(query.get("limit", 50))
        except ValueError as exc:
            raise BadRequest(f"min_ms/limit must be numeric: {exc}") from exc
        slow_only = query.get("slow", "") in ("1", "true", "yes")
        return {
            "traces": tracer.query(min_ms=min_ms, limit=limit, slow_only=slow_only),
            "tracer": tracer.stats(),
        }

    # -- registry endpoints ------------------------------------------------

    def _registry_get(self, parts: list[str]) -> dict:
        registry = self.registry
        if registry is None:
            raise NotFound("this server has no registry")
        if len(parts) == 1:
            loaded = set(registry.loaded())
            return {
                "tenants": {
                    name: {
                        "loaded": name in loaded,
                        "snapshots": len(registry.store.snapshots(name)),
                    }
                    for name in registry.names()
                },
            }
        if len(parts) == 2:
            name = parts[1]
            try:
                manifest = registry.store.manifest(name)
            except StoreError as exc:
                raise NotFound(str(exc)) from exc
            loaded = name in registry.loaded()
            return {
                "name": name,
                "loaded": loaded,
                "snapshots": registry.store.snapshots(name),
                "latest": {
                    "snapshot_id": manifest["snapshot_id"],
                    "wal_seq": manifest["wal_seq"],
                    "fingerprint": manifest["session"]["fingerprint"],
                    "n_rows": manifest["session"]["n_rows"],
                },
            }
        raise NotFound(self.path)

    def _registry_post(self, parts: list[str]) -> dict:
        registry = self.registry
        if registry is None or len(parts) != 3:
            raise NotFound(self.path)
        name, action = parts[1], parts[2]
        try:
            if action == "snapshot":
                manifest = registry.snapshot(name)
                return {
                    "name": name,
                    "snapshot_id": manifest["snapshot_id"],
                    "wal_seq": manifest["wal_seq"],
                }
            if action == "evict":
                return {"name": name, "evicted": registry.evict(name)}
        except StoreError as exc:
            raise NotFound(str(exc)) from exc
        raise NotFound(self.path)

    # -- replication endpoints ----------------------------------------------

    def _refuse_follower_write(self, sub: str, request_id: str) -> bool:
        """Followers answer reads only; writes bounce to the leader (503).

        Returns True when the request was answered here.  The body names
        the leader so a client library can retarget without re-resolving
        topology out of band.
        """
        manager = getattr(self.server, "replication", None)
        if manager is None or manager.is_leader:
            return False
        self._send_json(
            503,
            {
                "error": (
                    f"this replica is a follower; {sub} is a write and "
                    "must go to the leader"
                ),
                "leader_url": manager.leader_url,
                "request_id": request_id,
            },
            headers={"Retry-After": "1"},
        )
        return True

    def _replication_post(
        self, parts: list[str], payload: Any, request_id: str
    ) -> dict:
        manager = getattr(self.server, "replication", None)
        if manager is None:
            raise NotFound("this server has no replication manager")
        if parts == ["replication", "promote"]:
            if not isinstance(payload, Mapping):
                raise BadRequest("request body must be a JSON object")
            result = manager.promote(
                catchup_store=payload.get("catchup_store"),
                reason=str(payload.get("reason") or "explicit promotion"),
            )
            result["request_id"] = request_id
            return result
        if parts == ["replication", "retarget"]:
            if not isinstance(payload, Mapping) or not payload.get("leader_url"):
                raise BadRequest('"leader_url" is required')
            manager.retarget(str(payload["leader_url"]))
            return {"leader_url": manager.leader_url, "request_id": request_id}
        raise NotFound(self.path)

    # -- routes ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._request_started = time.perf_counter()
        request_id = _tracing.new_id()
        try:
            parts = self._segments()
            if self._shed_if_draining(parts, request_id):
                return
            if parts == ["healthz"]:
                # Pure liveness: answers 200 as long as the process can
                # serve HTTP at all — draining included (the supervisor
                # must not kill a replica that is still answering).
                self._send_json(
                    200,
                    {
                        "status": "alive",
                        "draining": bool(getattr(self.server, "draining", False)),
                    },
                )
                return
            if parts == ["readyz"]:
                ready, report = self._health_report()
                if not ready:
                    report["request_id"] = request_id
                self._send_json(
                    200 if ready else 503,
                    report,
                    headers=None if ready else {"Retry-After": "1"},
                )
                return
            if parts == ["metrics"]:
                # Prometheus text exposition; reachable at /metrics and
                # /v1/metrics, no session or tenant load required.
                self._send_text(
                    200,
                    _obs.get_registry().to_prometheus(),
                    content_type="text/plain; version=0.0.4; charset=utf-8",
                )
                return
            if parts == ["traces"]:
                self._send_json(200, self._traces_get())
                return
            if parts == ["replication"]:
                manager = getattr(self.server, "replication", None)
                if manager is None:
                    raise NotFound("this server has no replication manager")
                self._send_json(200, manager.status())
                return
            if parts and parts[0] == "registry":
                # replication transfer surface: raw manifest + blob bytes
                if len(parts) == 3 and parts[2] == "manifest":
                    if self.registry is None:
                        raise NotFound("this server has no registry")
                    try:
                        manifest = self.registry.store.manifest(parts[1])
                    except StoreError as exc:
                        raise NotFound(str(exc)) from exc
                    self._send_json(200, manifest)
                    return
                if len(parts) == 4 and parts[2] == "object":
                    if self.registry is None:
                        raise NotFound("this server has no registry")
                    try:
                        data = self.registry.store.get_bytes(parts[3])
                    except StoreError as exc:
                        raise NotFound(str(exc)) from exc
                    self._send_bytes(200, data)
                    return
                self._send_json(200, self._registry_get(parts))
                return
            # A registry-only server still needs process-level liveness:
            # /v1/health must answer without forcing any tenant to load.
            if (
                self.server.session is None  # type: ignore[attr-defined]
                and self.registry is not None
                and parts in (["health"], ["stats"])
            ):
                if parts == ["health"]:
                    self._send_json(
                        200,
                        {
                            "status": "ok",
                            "mode": "registry",
                            "tenants": len(self.registry.names()),
                            "loaded": self.registry.loaded(),
                        },
                    )
                else:
                    stats = self.registry.stats()
                    stats["metrics"] = _obs.get_registry().snapshot()
                    stats["tracing"] = _tracing.get_tracer().stats()
                    self._send_json(200, stats)
                return
            session, sub = self._resolve()
            if sub == "/v1/health":
                report = {
                    "status": "ok",
                    "tenant": session.tenant,
                    "fingerprint": session.fingerprint,
                    "table_version": session.table_version,
                    "state_token": session.state_token,
                    "n_rows": len(session.lewis.data),
                }
                log = getattr(session, "log", None)
                if log is not None:
                    report["last_seq"] = log.last_seq
                if self._query().get("digest") in ("1", "true", "yes"):
                    # canonical engine fingerprint (per-column marginal
                    # count tensors): the convergence oracle replicas
                    # compare after failover
                    report["state_digest"] = (
                        session.lewis.estimator.engine.state_digest()
                    )
                self._send_json(200, report)
            elif sub == "/v1/log":
                from repro.replication.ship import build_batch

                query = self._query()
                try:
                    cursor = int(query.get("cursor", 0))
                    limit = int(query.get("max", 0)) or None
                except ValueError as exc:
                    raise BadRequest(f"cursor/max must be integers: {exc}") from exc
                manager = getattr(self.server, "replication", None)
                kwargs = {"epoch": manager.shipping_epoch()} if manager else {}
                if limit is not None:
                    kwargs["limit"] = limit
                try:
                    self._send_json(
                        200, build_batch(session, cursor, tenant=session.tenant, **kwargs)
                    )
                except StoreError as exc:
                    raise NotFound(str(exc)) from exc
            elif sub == "/v1/stats":
                stats = session.stats()
                scheduler = self.server.monitors  # type: ignore[attr-defined]
                if scheduler is not None:
                    attached = scheduler.peek(session)
                    if attached is not None:
                        stats["monitors"] = attached.stats()
                # one-stop snapshot: the classic per-session keys above
                # stay for compatibility; "metrics" is the authoritative
                # process-wide registry view those keys now mirror.
                stats["metrics"] = _obs.get_registry().snapshot()
                stats["tracing"] = _tracing.get_tracer().stats()
                self._send_json(200, stats)
            elif sub == "/v1/monitors" or sub.startswith("/v1/monitors/"):
                self._send_json(200, self._monitors_get(session, sub))
            elif sub == "/v1/watch":
                self._send_json(200, self._watch_get(session))
            else:
                raise NotFound(f"unknown endpoint {self.path!r}")
        except NotFound as exc:
            self._send_json(404, {"error": str(exc), "request_id": request_id})
        except (BadRequest, ValueError) as exc:
            self._send_json(400, {"error": str(exc), "request_id": request_id})
        except Exception as exc:  # noqa: BLE001 - internal defects -> 500
            self._send_json(
                500,
                {
                    "error": f"internal error: {type(exc).__name__}: {exc}",
                    "request_id": request_id,
                },
            )

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        self._request_started = time.perf_counter()
        request_id = _tracing.new_id()
        try:
            self._read_body()  # drain so keep-alive stays in sync
            parts = self._segments()
            if self._shed_if_draining(parts, request_id):
                return
            registry = self.registry
            if registry is not None and len(parts) == 2 and parts[0] == "registry":
                if self._refuse_follower_write(self.path, request_id):
                    return
                scheduler = self.server.monitors  # type: ignore[attr-defined]
                if scheduler is not None:
                    # release the journal handle before the store unlinks it
                    scheduler.drop(parts[1])
                removed = registry.remove(parts[1])
                self._send_json(200, {"name": parts[1], "removed": removed})
                return
            session, sub = self._resolve()
            if sub.startswith("/v1/monitors/"):
                if self._refuse_follower_write(sub, request_id):
                    return
                monitors = self._monitor_scheduler().ensure(session)
                self._send_json(200, monitors.remove(sub.rsplit("/", 1)[1]))
                return
            raise NotFound(f"unknown endpoint {self.path!r}")
        except NotFound as exc:
            self._send_json(404, {"error": str(exc), "request_id": request_id})
        except (BadRequest, ValueError) as exc:
            self._send_json(400, {"error": str(exc), "request_id": request_id})
        except StoreError as exc:
            self._send_json(404, {"error": str(exc), "request_id": request_id})
        except Exception as exc:  # noqa: BLE001 - internal defects -> 500
            self._send_json(
                500,
                {
                    "error": f"internal error: {type(exc).__name__}: {exc}",
                    "request_id": request_id,
                },
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        started = time.perf_counter()
        self._request_started = started
        # The request id doubles as the trace id: it is echoed in the
        # response (success or error), stamped into WAL records written
        # on this request's behalf, and keys the /v1/traces lookup.
        request_id = _tracing.new_id()

        def error(
            status: int,
            message: str,
            headers: Mapping[str, str] | None = None,
        ) -> None:
            self._send_json(
                status,
                {"error": message, "request_id": request_id},
                headers=headers,
            )

        try:
            parts = self._segments()
            if self._shed_if_draining(parts, request_id):
                return
            if parts and parts[0] == "replication":
                payload = self._read_body()
                self._send_json(
                    200, self._replication_post(parts, payload, request_id)
                )
                return
            if parts and parts[0] == "registry":
                self._read_body()  # drain the body so keep-alive stays in sync
                self._send_json(200, self._registry_post(parts))
                return
            session, sub = self._resolve()
            payload = self._read_body()
            if sub in ("/v1/update", "/v1/monitors") and self._refuse_follower_write(
                sub, request_id
            ):
                return
            min_state = self.headers.get("X-Repro-Min-State")
            if min_state and hasattr(session, "has_state"):
                if not session.has_state(min_state):
                    # read-your-writes: this replica has not yet applied
                    # the state the client saw; let it retry here or pin
                    # to a replica that has caught up
                    self._send_json(
                        503,
                        {
                            "error": (
                                f"replica has not reached state {min_state!r} "
                                "yet; retry after replication catches up"
                            ),
                            "request_id": request_id,
                            "state_token": session.state_token,
                        },
                        headers={
                            "Retry-After": "1",
                            "X-Repro-State": session.state_token,
                        },
                    )
                    return
            deadline_ms = self._deadline_ms()

            def dispatch(target):
                if sub == "/v1/update":
                    response = target.update(TableDelta.from_json(payload))
                    scheduler = self.server.monitors  # type: ignore[attr-defined]
                    if scheduler is not None:
                        # refresh the tenant's standing monitors against
                        # the batch just applied (async, on its lane)
                        scheduler.notify(target)
                    return response
                if sub == "/v1/monitors":
                    return self._monitor_scheduler().ensure(target).add(payload)
                return target.handle(_build_request(sub, payload))

            # The trace context closes before the response is sent, so a
            # follow-up /v1/traces?id=<request_id> always finds it.  The
            # deadline scope opens here so the budget covers queue wait
            # and compute but not body parsing already done above.
            with _deadline.scope(deadline_ms), _tracing.trace(
                f"POST {sub}",
                trace_id=request_id,
                tags={"method": "POST", "route": sub, "tenant": session.tenant},
            ):
                try:
                    response = dispatch(session)
                except StoreError as exc:
                    # The session may have been evicted (log sealed) between
                    # resolution and dispatch; one re-resolve gets the
                    # tenant's freshly restored session instead of bouncing
                    # a valid request back to the client.
                    if "sealed" not in str(exc) or self.registry is None:
                        raise
                    session, sub = self._resolve()
                    response = dispatch(session)
        except NotFound as exc:
            error(404, str(exc))
            return
        except (BadRequest, DomainError, ValueError) as exc:
            # ValueError is the library's client-error convention
            # (malformed deltas, bad selectors, missing actionables).
            error(400, str(exc))
            return
        except KeyError as exc:
            error(400, f"unknown attribute: {exc}")
            return
        except IndexError as exc:
            error(400, f"row index out of range: {exc}")
            return
        except RecourseInfeasibleError as exc:
            error(409, f"recourse infeasible: {exc}")
            return
        except EstimationError as exc:
            error(422, f"unsupported conditioning event: {exc}")
            return
        except DeadlineExceededError as exc:
            error(504, f"deadline exceeded: {exc}")
            return
        except OverloadedError as exc:
            retry_after = max(1, int(round(exc.retry_after_s)))
            error(
                429,
                f"overloaded: {exc}",
                headers={"Retry-After": str(retry_after)},
            )
            return
        except DegradedError as exc:
            # The store is read-only degraded (failed write/fsync); the
            # data is safe but this replica cannot accept the request.
            error(
                503,
                f"store degraded: {exc}",
                headers={"Retry-After": "1"},
            )
            return
        except StoreError as exc:
            # transient persistence-layer contention (e.g. racing an
            # eviction): the request is valid, a retry will succeed
            error(503, f"store busy: {exc}")
            return
        except Exception as exc:  # noqa: BLE001 - internal defects -> 500
            error(500, f"internal error: {type(exc).__name__}: {exc}")
            return
        # elapsed_ms covers the whole handler — body read, micro-batcher
        # queue wait, compute, serialization — while queue_ms/compute_ms
        # break out the dispatch lane's share from the finished trace
        # (both 0.0 on cache hits or with observability disabled).
        queue_ms = compute_ms = 0.0
        record = _tracing.get_tracer().get(request_id)
        if record is not None:
            for recorded in record["spans"]:
                if recorded["name"] == "queue_wait":
                    queue_ms += recorded["duration_ms"]
                elif recorded["name"] == "compute":
                    compute_ms += recorded["duration_ms"]
        result = response.get("result")
        if isinstance(result, Mapping) and result.get("degraded"):
            # Hoist the degradation label so clients that only look at
            # the envelope still see that this 200 is an anytime answer.
            response["degraded"] = True
            response["degraded_reason"] = result.get("degraded_reason")
        response["table_version"] = session.table_version
        response["state_token"] = session.state_token
        response["request_id"] = request_id
        response["elapsed_ms"] = round((time.perf_counter() - started) * 1e3, 3)
        response["queue_ms"] = round(queue_ms, 3)
        response["compute_ms"] = round(compute_ms, 3)
        self._send_json(200, response)


def create_server(
    session: ExplainerSession | None = None,
    host: str = "127.0.0.1",
    port: int = 8321,
    verbose: bool = False,
    registry=None,
    follow: str | None = None,
    auto_promote: bool = False,
) -> ExplainerHTTPServer:
    """Bind a threading HTTP server to a session and/or a registry.

    ``port=0`` auto-picks. The caller owns the lifecycle:
    ``serve_forever()`` to block, ``shutdown()`` + ``server_close()`` to
    stop (``server_close`` drains in-flight handler threads), then close
    the session/registry.

    ``follow`` makes this a read-only *follower* of the leader at that
    base URL: it bootstraps every tenant from the leader's snapshots,
    tails each write-ahead log over ``GET /v1/<tenant>/log``, and bounces
    writes with a leader hint.  ``auto_promote`` lets a follower promote
    itself after consecutive leader health-check failures.
    """
    if session is None and registry is None:
        raise ValueError("create_server needs a session, a registry, or both")
    if follow is not None and registry is None:
        raise ValueError("a follower needs a registry (store) to replicate into")
    # Import every instrumented subsystem so /metrics advertises the full
    # family set (TYPE/HELP headers) from the very first scrape, before
    # any labelled series exists.
    _obs.preregister()
    handler = type(
        "BoundHandler", (ExplainerRequestHandler,), {"verbose": verbose}
    )
    # Handler threads are only safe against a running dispatch lane —
    # without it each thread would execute engine work inline.
    if session is not None:
        session.start_background()
    if registry is not None:
        registry.ensure_background()
    server = ExplainerHTTPServer((host, port), handler)
    server.session = session
    server.registry = registry
    from repro.monitor.scheduler import MonitorScheduler

    server.monitors = MonitorScheduler(
        store=registry.store if registry is not None else None
    )
    if registry is not None:
        from repro.replication.manager import ReplicationManager

        server.replication = ReplicationManager(
            registry,
            role="follower" if follow else "leader",
            leader_url=follow,
            auto_promote=auto_promote,
        )
        server.replication.start()
    return server


def serve(
    session: ExplainerSession | None = None,
    host: str = "127.0.0.1",
    port: int = 8321,
    verbose: bool = False,
    registry=None,
    checkpoint_on_close: bool = True,
    follow: str | None = None,
    auto_promote: bool = False,
) -> None:
    """Serve until interrupted, then shut down gracefully (CLI entry point).

    SIGTERM and SIGINT trigger the same sequence: stop accepting, drain
    in-flight requests, close the session, and close the store —
    checkpointing every loaded tenant (snapshot + WAL compaction) when
    ``checkpoint_on_close`` is set, so the next boot is warm.
    """
    server = create_server(
        session,
        host=host,
        port=port,
        verbose=verbose,
        registry=registry,
        follow=follow,
        auto_promote=auto_promote,
    )
    bound = server.server_address
    print(f"explanation service listening on http://{bound[0]}:{bound[1]}")

    draining = threading.Event()

    def _graceful(signum, frame):
        if draining.is_set():
            return
        draining.set()
        # Flip the shed gate first: handler threads answering after this
        # point refuse new work with 503 + Retry-After while the accept
        # loop winds down and in-flight requests complete.
        server.draining = True
        print(f"received {signal.Signals(signum).name}; draining and closing store")
        # shutdown() blocks until serve_forever exits; a signal handler
        # runs *inside* that loop's thread, so hand it to a helper.
        threading.Thread(target=server.shutdown, daemon=True).start()

    previous: dict[int, Any] = {}
    in_main = threading.current_thread() is threading.main_thread()
    if in_main:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(sig, _graceful)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)
        server.server_close()  # joins in-flight handler threads
        if server.replication is not None:
            server.replication.stop()
        if server.monitors is not None:
            server.monitors.close()
        if session is not None:
            session.close()
        if registry is not None:
            registry.close(checkpoint=checkpoint_on_close)
