"""Data-update requests and incremental maintenance for live sessions.

A deployed explainer answers standing queries over data that keeps
changing — new applicants arrive, withdrawn ones leave.  Databases
handle this by maintaining materialized state under updates instead of
recomputing it (Berkholz et al., PAPERS.md); here the materialized state
is the engine's contingency tensors plus the session's result cache.

:class:`TableDelta` is the wire-level update: decoded rows to insert and
row indices to delete, validated against the session's schema before
anything is touched.  ``apply_delta(lewis, delta)`` routes it down the
stack — the black box predicts only the inserted rows, every cached
count tensor absorbs the delta in place (O(|delta|) per tensor), and the
engine's data version is bumped so exactly the dependent result-cache
entries invalidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.core.lewis import Lewis


@dataclass(frozen=True)
class TableDelta:
    """One batch of row insertions/deletions against a session's table.

    ``insert`` holds decoded ``{attribute: label}`` rows covering the
    session's full attribute schema; ``delete`` holds row indices into
    the *current* table.  Deletions are applied first, then insertions
    are appended (so indices never refer to inserted rows).
    """

    insert: tuple[Mapping[str, Any], ...] = field(default_factory=tuple)
    delete: tuple[int, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "insert", tuple(dict(r) for r in self.insert))
        object.__setattr__(self, "delete", tuple(int(i) for i in self.delete))

    @property
    def is_empty(self) -> bool:
        """True when the delta changes nothing."""
        return not self.insert and not self.delete

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "TableDelta":
        """Parse ``{"insert": [...], "delete": [...]}`` with validation."""
        if not isinstance(payload, Mapping):
            raise ValueError("update payload must be a JSON object")
        unknown = set(payload) - {"insert", "delete"}
        if unknown:
            raise ValueError(f"unknown update fields: {sorted(unknown)}")
        insert = payload.get("insert", [])
        delete = payload.get("delete", [])
        if not isinstance(insert, Sequence) or isinstance(insert, (str, bytes)):
            raise ValueError('"insert" must be a list of row objects')
        for row in insert:
            if not isinstance(row, Mapping):
                raise ValueError('"insert" entries must be {attribute: value} objects')
        if not isinstance(delete, Sequence) or isinstance(delete, (str, bytes)):
            raise ValueError('"delete" must be a list of row indices')
        for idx in delete:
            if isinstance(idx, bool) or not isinstance(idx, int):
                raise ValueError('"delete" entries must be integer row indices')
        return cls(insert=tuple(insert), delete=tuple(delete))


def apply_delta(lewis: Lewis, delta: TableDelta) -> int:
    """Apply a validated delta to a live explainer; returns the new version.

    Row labels are encoded against the explainer's current domains
    (:class:`~repro.utils.exceptions.DomainError` on unknown values — a
    delta can never extend a domain) and the contingency tensors are
    updated in place rather than rebuilt.
    """
    if delta.is_empty:
        return lewis.table_version
    return lewis.apply_delta(
        inserted_rows=list(delta.insert) or None,
        deleted_rows=list(delta.delete) or None,
    )
