"""Long-lived explainer sessions: the core of the serving layer.

A :class:`~repro.core.lewis.Lewis` object is expensive to build (model
predictions over the population, ordering inference, tensor warm-up) and
cheap to query — exactly the shape of a *session*: build once, serve
many requests.  :class:`ExplainerSession` owns one model + ``Lewis`` +
contingency engine and exposes every explanation type as a typed
request object:

* :class:`GlobalExplainRequest` / :class:`ContextExplainRequest` —
  population / sub-population rankings,
* :class:`LocalExplainRequest` — one individual's contributions,
* :class:`LocalExplainBatchRequest` — a whole cohort's contributions in
  a few deduplicated matrix passes,
* :class:`RecourseRequest` — minimal-cost intervention,
* :class:`RecourseBatchRequest` — cohort recourse audit with one IP
  solve per distinct (current codes, context) signature,
* :class:`AuditRequest` — counterfactual-fairness verdicts,
* :class:`ScoresRequest` — raw NEC/SUF/NESUF triples for ad-hoc
  contrasts,
* :class:`UpdateRequest` — a :class:`~repro.service.updates.TableDelta`
  against the live table.

``handle(request)`` answers from the byte-bounded result cache when the
(model fingerprint, table version, canonical query) key hits; misses are
routed through the session's :class:`~repro.service.scheduler
.MicroBatcher`, whose single dispatch thread is the only code that
touches the engine — concurrent requests coalesce into batched engine
passes *and* the session is thread-safe by construction.  Updates flow
through the same dispatch lane, so reads and writes serialize without a
global lock; afterwards only the cache entries keyed to superseded table
versions are purged.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import weakref
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.core.explanations import GlobalExplanation, LocalExplanation
from repro.core.fairness import FairnessAuditor, FairnessVerdict
from repro.core.lewis import Lewis
from repro.core.recourse import Recourse
from repro.data.table import Column
from repro.obs import metrics as _obs
from repro.service.cache import ResultCache
from repro.service.scheduler import MicroBatcher
from repro.service.updates import TableDelta, apply_delta
from repro.utils import deadline as _deadline
from repro.utils.exceptions import DomainError


# ---------------------------------------------------------------------------
# JSON plumbing


def jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays so ``json.dumps`` works."""
    if isinstance(value, Mapping):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    return value


def global_explanation_to_dict(explanation: GlobalExplanation) -> dict:
    """JSON view of a global/contextual explanation."""
    return jsonable(
        {
            "context": explanation.context,
            "attributes": [
                {
                    "attribute": s.attribute,
                    "necessity": s.necessity,
                    "sufficiency": s.sufficiency,
                    "necessity_sufficiency": s.necessity_sufficiency,
                    "best_pair_necessity": s.best_pair_necessity,
                    "best_pair_sufficiency": s.best_pair_sufficiency,
                    "best_pair_nesuf": s.best_pair_nesuf,
                }
                for s in explanation.attribute_scores
            ],
            "ranking": explanation.ranking(),
            "statements": explanation.statements(),
        }
    )


def local_explanation_to_dict(explanation: LocalExplanation) -> dict:
    """JSON view of a local explanation."""
    return jsonable(
        {
            "individual": explanation.individual,
            "outcome_positive": explanation.outcome_positive,
            "contributions": [
                {
                    "attribute": c.attribute,
                    "value": c.value,
                    "positive": c.positive,
                    "negative": c.negative,
                    "net": c.net,
                    "negative_foil": c.negative_foil,
                    "positive_foil": c.positive_foil,
                }
                for c in explanation.contributions
            ],
            "statements": explanation.statements(),
        }
    )


def recourse_to_dict(recourse: Recourse) -> dict:
    """JSON view of a recourse recommendation."""
    return jsonable(
        {
            "actions": [
                {
                    "attribute": a.attribute,
                    "current_value": a.current_value,
                    "new_value": a.new_value,
                    "cost": a.cost,
                }
                for a in recourse.actions
            ],
            "total_cost": recourse.total_cost,
            "estimated_sufficiency": recourse.estimated_sufficiency,
            "estimated_probability": recourse.estimated_probability,
            "is_empty": recourse.is_empty,
            "mode": recourse.mode,
            "optimality_gap": recourse.optimality_gap,
            "statements": recourse.statements(),
        }
    )


def verdict_to_dict(verdict: FairnessVerdict) -> dict:
    """JSON view of one fairness verdict."""
    return jsonable(
        {
            "attribute": verdict.attribute,
            "necessity": verdict.necessity,
            "sufficiency": verdict.sufficiency,
            "worst_pair": verdict.worst_pair,
            "demographic_disparity": verdict.demographic_disparity,
            "tolerance": verdict.tolerance,
            "is_counterfactually_fair": verdict.is_counterfactually_fair,
            "summary": verdict.summary(),
        }
    )


# ---------------------------------------------------------------------------
# request objects


@dataclass(frozen=True)
class GlobalExplainRequest:
    """Population-level explanation (context ``K = ∅``)."""

    kind = "explain_global"
    cacheable = True
    attributes: tuple[str, ...] | None = None
    max_pairs_per_attribute: int | None = 8

    def params(self) -> dict:
        return {
            "attributes": self.attributes,
            "max_pairs_per_attribute": self.max_pairs_per_attribute,
        }


@dataclass(frozen=True)
class ContextExplainRequest:
    """Sub-population explanation for a user-supplied context ``k``."""

    kind = "explain_context"
    cacheable = True
    context: Mapping[str, Any] = field(default_factory=dict)
    attributes: tuple[str, ...] | None = None
    max_pairs_per_attribute: int | None = 8

    def params(self) -> dict:
        return {
            "context": dict(self.context),
            "attributes": self.attributes,
            "max_pairs_per_attribute": self.max_pairs_per_attribute,
        }


@dataclass(frozen=True)
class LocalExplainRequest:
    """Individual-level explanation by row index or decoded assignment."""

    kind = "explain_local"
    cacheable = True
    index: int | None = None
    individual: Mapping[str, Any] | None = None
    attributes: tuple[str, ...] | None = None

    def params(self) -> dict:
        return {
            "index": self.index,
            "individual": dict(self.individual) if self.individual else None,
            "attributes": self.attributes,
        }


@dataclass(frozen=True)
class LocalExplainBatchRequest:
    """Cohort of individual-level explanations in one vectorized pass."""

    kind = "explain_local_batch"
    cacheable = True
    indices: tuple[int, ...] = ()
    attributes: tuple[str, ...] | None = None

    def params(self) -> dict:
        return {
            "indices": tuple(int(i) for i in self.indices),
            "attributes": self.attributes,
        }


@dataclass(frozen=True)
class RecourseBatchRequest:
    """Cohort recourse audit: deduplicated batch IP solving.

    ``indices=None`` audits every individual with the negative decision.
    """

    kind = "recourse_batch"
    cacheable = True
    indices: tuple[int, ...] | None = None
    actionable: tuple[str, ...] | None = None
    alpha: float = 0.8
    #: solver mode ("exact" | "anytime") — part of the cache key, since
    #: anytime answers carry gaps and must not be served as exact ones.
    mode: str = "exact"
    #: worker-process count for the solve. Deliberately NOT part of
    #: ``params()``: parallel and serial results are bit-identical, so
    #: requests differing only in ``workers`` share a cache entry.
    workers: int | None = None

    def params(self) -> dict:
        return {
            "indices": (
                tuple(int(i) for i in self.indices)
                if self.indices is not None
                else None
            ),
            "actionable": self.actionable,
            "alpha": self.alpha,
            "mode": self.mode,
        }


@dataclass(frozen=True)
class RecourseRequest:
    """Minimal-cost recourse for the individual at ``index``."""

    kind = "recourse"
    cacheable = True
    index: int = 0
    actionable: tuple[str, ...] | None = None
    alpha: float = 0.8
    mode: str = "exact"

    def params(self) -> dict:
        return {
            "index": self.index,
            "actionable": self.actionable,
            "alpha": self.alpha,
            "mode": self.mode,
        }


@dataclass(frozen=True)
class AuditRequest:
    """Counterfactual-fairness audit over protected attributes."""

    kind = "audit"
    cacheable = True
    protected: tuple[str, ...] | None = None
    tolerance: float = 0.05

    def params(self) -> dict:
        return {"protected": self.protected, "tolerance": self.tolerance}


@dataclass(frozen=True)
class ScoresRequest:
    """Raw score triples for ad-hoc ``(values, baselines)`` contrasts."""

    kind = "scores"
    cacheable = True
    contrasts: tuple[tuple[Mapping[str, Any], Mapping[str, Any]], ...] = ()
    context: Mapping[str, Any] = field(default_factory=dict)

    def params(self) -> dict:
        return {
            "contrasts": [
                [dict(values), dict(baselines)]
                for values, baselines in self.contrasts
            ],
            "context": dict(self.context),
        }


@dataclass(frozen=True)
class UpdateRequest:
    """Apply a :class:`TableDelta` to the live table."""

    kind = "update"
    cacheable = False
    delta: TableDelta = field(default_factory=TableDelta)

    def params(self) -> dict:
        return {"insert": len(self.delta.insert), "delete": len(self.delta.delete)}


# ---------------------------------------------------------------------------
# the session


def _session_collector(ref: "weakref.ref[ExplainerSession]"):
    """Registry collector sampling one (weakly-held) session at scrape time."""

    def collect() -> dict:
        session = ref()
        if session is None:
            raise LookupError("session gone")  # auto-unregisters the collector
        labels = {"tenant": session.tenant or "default"}
        samples: dict[str, float] = {}
        samples.update(session.cache.stats_struct().metric_samples(labels))
        estimator = session.lewis.estimator
        samples.update(
            estimator.engine.cache_stats().metric_samples(labels)
        )
        samples.update(
            estimator.local_model_cache_stats().metric_samples(labels)
        )
        samples[_obs.full_name("repro_session_requests_served", labels)] = float(
            session._served
        )
        samples[_obs.full_name("repro_session_n_rows", labels)] = float(
            len(session.lewis.data)
        )
        samples[_obs.full_name("repro_session_table_version", labels)] = float(
            session.table_version
        )
        batcher = session._batcher.stats()
        samples[_obs.full_name("repro_batcher_largest_batch", labels)] = float(
            batcher["largest_batch"]
        )
        samples[_obs.full_name("repro_batcher_mean_batch", labels)] = float(
            batcher["mean_batch"]
        )
        for name, value in session.lewis.solver_stats().items():
            samples[
                _obs.full_name(f"repro_solver_{name}", labels)
            ] = float(value)
        log = getattr(session, "log", None)
        if log is not None:
            wal = log.stats()
            samples[_obs.full_name("repro_wal_records", labels)] = float(
                wal["records"]
            )
            samples[_obs.full_name("repro_wal_last_seq", labels)] = float(
                wal["last_seq"]
            )
            samples[_obs.full_name("repro_wal_bytes", labels)] = float(
                wal["bytes"]
            )
        return samples

    return collect


def model_fingerprint(model: Any, data) -> str:
    """Stable digest identifying (model, schema) for cache keying.

    Serialisable models hash their full parameter dict, so equal models
    share a fingerprint across processes.  Opaque callables cannot be
    content-hashed; their fallback includes the object identity, so two
    *distinct* callable instances never collide in a shared cache (the
    cache is in-process, where ``id`` is meaningful) — the cost is that
    equal-but-separate callables recompute instead of sharing.
    """
    h = hashlib.sha1()
    try:
        from repro.models.serialize import model_to_dict

        h.update(
            json.dumps(model_to_dict(model), sort_keys=True, default=str).encode()
        )
    except (TypeError, AttributeError):
        name = getattr(model, "__qualname__", type(model).__qualname__)
        h.update(f"callable:{name}:{id(model)}".encode())
    h.update(data.schema_fingerprint().encode())
    return h.hexdigest()[:16]


def data_state_token(data) -> str:
    """Content digest of a table: the root of the session's state chain.

    Hashes every column's code bytes once at session start; afterwards
    the session *advances* the token per delta in O(|delta|) instead of
    rehashing (see :meth:`ExplainerSession._advance_state`), so identical
    (data, update history) pairs agree on the token and any divergence —
    however the version counters happen to align — cannot collide.
    """
    h = hashlib.sha1()
    h.update(data.schema_fingerprint().encode())
    for name in data.names:
        h.update(np.ascontiguousarray(data.codes(name)).tobytes())
    return h.hexdigest()[:16]


class ExplainerSession:
    """One model + :class:`Lewis` + engine behind a request/response API.

    Parameters
    ----------
    lewis:
        The fitted explainer the session serves.
    cache:
        Result cache; pass a shared instance to pool several sessions
        behind one budget. ``None`` builds a private 32 MB cache.
    default_actionable:
        Fallback attribute set for :class:`RecourseRequest` objects that
        do not name one (typically the dataset bundle's actionable list).
    background:
        Start the micro-batcher's dispatch thread. ``True`` for servers
        (concurrent requests coalesce into batched engine passes);
        ``False`` embeds the session single-threaded and dispatches
        inline — results are identical.
    batch_window / max_batch / max_queue:
        Coalescing and load-shedding knobs forwarded to
        :class:`MicroBatcher`; ``max_queue=None`` defers to the
        ``REPRO_MAX_QUEUE`` environment variable.
    tenant:
        Registry name this session serves under. Scopes every cache key,
        so tenants sharing a :class:`ResultCache` — even ones serving an
        identical (model, table state) pair — can never cross-serve each
        other's responses. Empty for single-session deployments.
    """

    def __init__(
        self,
        lewis: Lewis,
        cache: ResultCache | None = None,
        default_actionable: Sequence[str] | None = None,
        background: bool = False,
        batch_window: float = 0.002,
        max_batch: int = 64,
        max_queue: int | None = None,
        tenant: str = "",
    ):
        self.lewis = lewis
        self.tenant = str(tenant)
        self.cache = cache if cache is not None else ResultCache()
        self.default_actionable = (
            list(default_actionable) if default_actionable else None
        )
        self.fingerprint = model_fingerprint(lewis._model, lewis.data)
        self._state = data_state_token(lewis.data)
        # Recent tokens of the state chain (newest last). Replicas use
        # membership as the read-your-writes check: a client pinning
        # X-Repro-Min-State to a token it observed is served only once
        # this session's chain has passed through that token.
        self._state_history: deque[str] = deque(maxlen=256)
        self._state_history.append(self._state)
        self._cache_lock = threading.Lock()
        self._served = 0
        self._batcher = MicroBatcher(
            {
                "explain_global": self._do_globals,
                "explain_context": self._do_contexts,
                "explain_local": self._do_locals,
                "explain_local_batch": self._do_local_batches,
                "recourse": self._do_recourses,
                "recourse_batch": self._do_recourse_batches,
                "audit": self._do_audits,
                "scores": self._do_scores,
                "update": self._do_updates,
            },
            window=batch_window,
            max_batch=max_batch,
            max_queue=max_queue,
            start=background,
        )
        # Weakly-referenced registry collector: all three cache layers,
        # session gauges, solver memo counters and (when durable) WAL
        # counters are sampled at scrape time under one tenant label.
        # The collector raising LookupError once the session is gone is
        # what auto-unregisters it, so evicted sessions never pin memory.
        self._collector_key = f"session:{id(self)}"
        _obs.get_registry().register_collector(
            self._collector_key, _session_collector(weakref.ref(self))
        )

    # -- lifecycle ---------------------------------------------------------

    def start_background(self) -> None:
        """Start the batcher's dispatch thread (idempotent).

        Required before serving the session from multiple threads: the
        dispatch lane is what serializes engine access.  The HTTP server
        calls this automatically.
        """
        self._batcher.start()

    def close(self) -> None:
        """Stop the dispatch thread (idempotent)."""
        _obs.get_registry().unregister_collector(self._collector_key)
        self._batcher.close()

    def __enter__(self) -> "ExplainerSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- request handling --------------------------------------------------

    @property
    def table_version(self) -> int:
        """The engine's current data-version counter."""
        return self.lewis.table_version

    @property
    def state_token(self) -> str:
        """Content-seeded table-state digest the cache keys on."""
        return self._state

    def _advance_state(self, delta: TableDelta) -> None:
        """Advance the state chain by one applied delta (O(|delta|)).

        Runs on the batcher's dispatch lane immediately after the delta
        is applied (see :meth:`_do_updates`), so every explanation
        computed after the update observes the advanced token — a
        concurrent reader can never cache a post-update result under the
        pre-update key.  The read-modify-write itself is guarded by the
        cache lock against the synchronous-mode caller thread.
        """
        from repro.service.cache import canonical

        payload = repr(
            canonical({"insert": list(delta.insert), "delete": list(delta.delete)})
        )
        with self._cache_lock:
            self._state = hashlib.sha1(
                (self._state + payload).encode("utf-8", "replace")
            ).hexdigest()[:16]
            self._state_history.append(self._state)

    def has_state(self, token: str) -> bool:
        """Whether the state chain has passed through ``token``.

        The read-your-writes gate for replicated reads: a follower that
        has not yet replayed the write producing ``token`` answers 503
        (retryable) instead of serving data older than what the client
        already saw.  Bounded by the history ring — a token older than
        its window conservatively reads as unseen, which only ever
        delays a request, never serves stale state.
        """
        with self._cache_lock:
            return token in self._state_history

    def handle(self, request) -> dict:
        """Answer one request object; returns a JSON-ready response dict.

        Cacheable requests are served from the result cache when the
        (fingerprint, table version, canonical query) key hits; misses
        and updates run on the batcher's dispatch lane.  A response
        computed concurrently with an update may be stored under the
        pre-update version key — such entries are unreachable (lookups
        always use the current version) and age out via LRU; stale data
        is never served.
        """
        if isinstance(request, UpdateRequest):
            # Updates must advance the state chain and purge dependent
            # entries; route them through the one place that does.
            return self.update(request.delta)
        kind = request.kind
        params = request.params()
        if request.cacheable:
            state = self._state
            key = ResultCache.key(
                self.fingerprint, state, kind, params, tenant=self.tenant
            )
            with self._cache_lock:
                hit = self.cache.get(key)
            if hit is not None:
                self._served += 1
                return {"kind": kind, "cached": True, "result": hit}
        result = self._batcher.run(kind, request)
        degraded = isinstance(result, Mapping) and bool(result.get("degraded"))
        if request.cacheable and not degraded:
            with self._cache_lock:
                # An update may have raced this computation; the result
                # then reflects the *post*-update table, and storing it
                # under the pre-update key would poison a shared cache.
                # Only cache when the state is unchanged end to end.
                # Degraded (anytime-under-deadline) answers are never
                # cached: the next caller asked for the exact one.
                if self._state == state:
                    self.cache.put(key, result)
        self._served += 1
        return {"kind": kind, "cached": False, "result": result}

    # -- convenience wrappers ----------------------------------------------

    def explain_global(self, **kwargs) -> dict:
        """Build, handle, and return a :class:`GlobalExplainRequest`."""
        return self.handle(GlobalExplainRequest(**kwargs))

    def explain_context(self, context: Mapping[str, Any], **kwargs) -> dict:
        """Build, handle, and return a :class:`ContextExplainRequest`."""
        return self.handle(ContextExplainRequest(context=dict(context), **kwargs))

    def explain_local(self, **kwargs) -> dict:
        """Build, handle, and return a :class:`LocalExplainRequest`."""
        return self.handle(LocalExplainRequest(**kwargs))

    def explain_local_batch(self, indices: Sequence[int], **kwargs) -> dict:
        """Build, handle, and return a :class:`LocalExplainBatchRequest`."""
        return self.handle(
            LocalExplainBatchRequest(
                indices=tuple(int(i) for i in indices), **kwargs
            )
        )

    def recourse(self, index: int, **kwargs) -> dict:
        """Build, handle, and return a :class:`RecourseRequest`."""
        return self.handle(RecourseRequest(index=int(index), **kwargs))

    def recourse_batch(
        self, indices: Sequence[int] | None = None, **kwargs
    ) -> dict:
        """Build, handle, and return a :class:`RecourseBatchRequest`."""
        return self.handle(
            RecourseBatchRequest(
                indices=(
                    tuple(int(i) for i in indices)
                    if indices is not None
                    else None
                ),
                **kwargs,
            )
        )

    def audit(self, **kwargs) -> dict:
        """Build, handle, and return an :class:`AuditRequest`."""
        return self.handle(AuditRequest(**kwargs))

    def scores(
        self,
        contrasts: Sequence[tuple[Mapping[str, Any], Mapping[str, Any]]],
        context: Mapping[str, Any] | None = None,
    ) -> dict:
        """Build, handle, and return a :class:`ScoresRequest`."""
        return self.handle(
            ScoresRequest(
                contrasts=tuple((dict(v), dict(b)) for v, b in contrasts),
                context=dict(context or {}),
            )
        )

    def update(self, delta: TableDelta | Mapping[str, Any]) -> dict:
        """Apply a data delta; purge dependent cache entries.

        Accepts a :class:`TableDelta` or its JSON form.  Returns the new
        table version and how many cache entries were invalidated.
        """
        if not isinstance(delta, TableDelta):
            delta = TableDelta.from_json(delta)
        response = self._batcher.run("update", UpdateRequest(delta=delta))
        with self._cache_lock:
            purged = self.cache.purge_stale(
                self.fingerprint, self._state, tenant=self.tenant
            )
        response["purged"] = purged
        self._served += 1
        return {"kind": "update", "cached": False, "result": response}

    # -- label resolution --------------------------------------------------

    def _code_of(self, column: Column, value: Any) -> int:
        """Map a (possibly JSON-roundtripped) label to its code."""
        try:
            return column.code_of(value)
        except DomainError:
            for code, category in enumerate(column.categories):
                if str(category) == str(value):
                    return code
            raise

    def _encode(self, labels: Mapping[str, Any]) -> dict[str, Any]:
        """Resolve JSON labels to canonical category labels per column."""
        out = {}
        for name, value in labels.items():
            column = self.lewis.data.column(name)
            out[name] = column.categories[self._code_of(column, value)]
        return out

    # -- batched handlers (run on the dispatch lane) -------------------------

    def _do_globals(self, requests: list[GlobalExplainRequest]) -> list[dict]:
        return [
            global_explanation_to_dict(
                self.lewis.explain_global(
                    attributes=list(r.attributes) if r.attributes else None,
                    max_pairs_per_attribute=r.max_pairs_per_attribute,
                )
            )
            for r in requests
        ]

    def _do_contexts(self, requests: list[ContextExplainRequest]) -> list[dict]:
        return [
            global_explanation_to_dict(
                self.lewis.explain_context(
                    self._encode(r.context),
                    attributes=list(r.attributes) if r.attributes else None,
                    max_pairs_per_attribute=r.max_pairs_per_attribute,
                )
            )
            for r in requests
        ]

    def _do_locals(self, requests: list[LocalExplainRequest]) -> list[dict]:
        # One dispatch pass shares the lazily fitted per-attribute local
        # models across the whole batch (they are cached per feature set).
        out = []
        for r in requests:
            explanation = self.lewis.explain_local(
                index=r.index,
                individual=self._encode(r.individual) if r.individual else None,
                attributes=list(r.attributes) if r.attributes else None,
            )
            out.append(local_explanation_to_dict(explanation))
        return out

    def _do_local_batches(
        self, requests: list[LocalExplainBatchRequest]
    ) -> list[dict]:
        # The whole cohort's regression probes are deduplicated and
        # answered in one matrix pass per attribute group.
        out = []
        for r in requests:
            explanations = self.lewis.explain_local_batch(
                list(r.indices),
                attributes=list(r.attributes) if r.attributes else None,
            )
            out.append(
                {
                    "indices": [int(i) for i in r.indices],
                    "explanations": [
                        local_explanation_to_dict(e) for e in explanations
                    ],
                }
            )
        return out

    def _actionable_for(self, requested) -> list[str]:
        actionable = list(requested) if requested else self.default_actionable
        if not actionable:
            raise ValueError(
                "no actionable attributes: pass them on the request "
                "or configure default_actionable on the session"
            )
        return actionable

    def _do_recourses(self, requests: list[RecourseRequest]) -> list[dict]:
        out = []
        for r in requests:
            actionable = self._actionable_for(r.actionable)
            out.append(
                recourse_to_dict(
                    self.lewis.recourse(
                        r.index, actionable=actionable, alpha=r.alpha, mode=r.mode
                    )
                )
            )
        return out

    def _do_recourse_batches(
        self, requests: list[RecourseBatchRequest]
    ) -> list[dict]:
        # One logit matrix pass for base probabilities, one warm-started
        # signature solve per distinct (current codes, context) signature;
        # r.workers > 1 spreads unsolved signatures over a process pool.
        out = []
        for r in requests:
            actionable = self._actionable_for(r.actionable)
            mode = r.mode
            degraded = False
            if mode == "exact":
                # Degradation ladder: with the request deadline nearly
                # spent, an exact cohort solve would blow it — fall back
                # to the certified anytime mode and *label* the answer,
                # so a 200 is never silently weaker than what was asked.
                remaining = _deadline.remaining_s()
                floor_s = float(os.environ.get("REPRO_ANYTIME_MS", "250")) / 1e3
                if remaining is not None and remaining < floor_s:
                    mode = "anytime"
                    degraded = True
            audit = self.lewis.recourse_audit(
                actionable,
                alpha=r.alpha,
                indices=list(r.indices) if r.indices is not None else None,
                workers=r.workers,
                mode=mode,
            )
            if degraded:
                audit["degraded"] = True
                audit["degraded_reason"] = "deadline"
            recourses = audit.pop("recourses")
            audit["recourses"] = [
                recourse_to_dict(x) if x is not None else None
                for x in recourses
            ]
            out.append(jsonable(audit))
        return out

    def _do_audits(self, requests: list[AuditRequest]) -> list[dict]:
        out = []
        for r in requests:
            protected = list(r.protected) if r.protected else [
                name
                for name in ("sex", "race", "gender")
                if name in self.lewis.data
            ]
            if not protected:
                raise ValueError(
                    "no protected attributes found; pass AuditRequest.protected"
                )
            auditor = FairnessAuditor(self.lewis, tolerance=r.tolerance)
            out.append(
                {"verdicts": [verdict_to_dict(v) for v in auditor.audit_all(protected)]}
            )
        return out

    def _do_scores(self, requests: list[ScoresRequest]) -> list[dict]:
        # Requests sharing a context collapse into one scores_batch pass —
        # the coalescing the micro-batcher exists for.
        groups: dict[tuple, list[int]] = {}
        encoded: list[tuple[list, dict]] = []
        for i, r in enumerate(requests):
            contrasts = [
                (self._encode(values), self._encode(baselines))
                for values, baselines in r.contrasts
            ]
            context = self._encode(r.context)
            encoded.append((contrasts, context))
            groups.setdefault(tuple(sorted(context.items())), []).append(i)
        out: list[dict] = [{} for _ in requests]
        for indices in groups.values():
            flat: list = []
            owners: list[tuple[int, int]] = []
            context = encoded[indices[0]][1]
            for i in indices:
                for j, contrast in enumerate(encoded[i][0]):
                    flat.append(contrast)
                    owners.append((i, j))
            triples = self.lewis.scores_batch(flat, context)
            per_request: dict[int, list] = {i: [] for i in indices}
            for (i, _j), triple in zip(owners, triples):
                per_request[i].append(jsonable(triple.as_dict()))
            for i in indices:
                out[i] = {"context": jsonable(context), "scores": per_request[i]}
        return out

    def _do_updates(self, requests: list[UpdateRequest]) -> list[dict]:
        out = []
        for r in requests:
            before = len(self.lewis.data)
            version = apply_delta(self.lewis, r.delta)
            if not r.delta.is_empty:
                self._advance_state(r.delta)
            out.append(
                {
                    "version": version,
                    "n_rows": len(self.lewis.data),
                    "inserted": len(r.delta.insert),
                    "deleted": len(r.delta.delete),
                    "rows_before": before,
                }
            )
        return out

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        """Aggregate session / cache / engine / scheduler statistics."""
        estimator = self.lewis.estimator
        return {
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "table_version": self.table_version,
            "state_token": self._state,
            "n_rows": len(self.lewis.data),
            "requests_served": self._served,
            "cache": self.cache.stats(),
            "engine": estimator.engine.stats(),
            "local_models": estimator.local_model_stats(),
            "scheduler": self._batcher.stats(),
            # unified cache schema (one shape for all three layers); the
            # flat keys above are the deprecated legacy views of the same
            # counters and will be dropped in a future release.
            "caches": {
                "result": self.cache.stats_struct().as_dict(),
                "tensor": estimator.engine.cache_stats().as_dict(),
                "local_model": estimator.local_model_cache_stats().as_dict(),
            },
            "solver": self.lewis.solver_stats(),
        }
