"""Multi-tenant session registry: lazy loading, locks, byte-budgeted eviction.

One process serves many named tenants, each a stored (model, table,
tensors) session far bigger than a request.  The registry keeps the hot
ones live and lets the cold ones stay on disk:

* ``get(name)`` lazy-loads a tenant behind a per-tenant lock — two
  concurrent first requests trigger one restore, and loading tenant A
  never blocks requests to already-loaded tenant B,
* loaded sessions live in a byte-budgeted LRU
  (:class:`~repro.utils.lru.ByteBudgetLRU` — the same policy engine as
  every cache in the stack) sized by their real footprint (encoded table
  + cached tensors); the least-recently-served tenant is evicted when
  the budget is exceeded, which is safe at any moment because every
  acknowledged update is already fsync'd in the tenant's write-ahead log,
* all sessions share one tenant-scoped :class:`~repro.service.cache
  .ResultCache`, so operators reason about one response-cache budget for
  the whole process and tenants can never cross-serve entries.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.core.lewis import Lewis
from repro.obs import metrics as _obs
from repro.service.cache import ResultCache
from repro.store.artifacts import ArtifactStore, check_tenant_name
from repro.store.snapshot import (
    checkpoint_session,
    create_tenant,
    restore_session,
)
from repro.store.wal import DurableSession
from repro.utils.exceptions import StoreError
from repro.utils.lru import ByteBudgetLRU

_REGISTRY_LOADS = _obs.get_registry().counter(
    "repro_registry_loads_total",
    "Tenant sessions restored from disk by the registry.",
)
_REGISTRY_EVICTIONS = _obs.get_registry().counter(
    "repro_registry_evictions_total",
    "Tenant sessions evicted by the registry's byte budget.",
)


def session_footprint(session: DurableSession) -> int:
    """Resident bytes a loaded session pins: table codes + count tensors."""
    data = session.lewis.data
    codes = sum(data.codes(name).nbytes for name in data.names)
    tensors = session.lewis.estimator.engine.stats().get("bytes", 0) or 0
    return int(codes + tensors) + 4096  # + python object overhead, roughly


class Registry:
    """Names -> stored sessions, loaded lazily under a byte budget.

    Parameters
    ----------
    store:
        An :class:`ArtifactStore` or a path to open one at.
    max_bytes:
        Byte budget for resident sessions (table + tensors); least-
        recently-used tenants are evicted (closed, state stays on disk)
        beyond it. ``None`` disables the bound.
    max_sessions:
        Optional additional bound on the number of loaded sessions.
    cache:
        Shared result cache; defaults to a private 32 MB one. Keys are
        tenant-scoped, so sharing across tenants is safe by construction.
    background:
        Start each loaded session's dispatch thread (servers). ``False``
        for single-threaded embedding (CLI, tests).
    """

    def __init__(
        self,
        store: ArtifactStore | str | Path,
        max_bytes: int | None = 256 << 20,
        max_sessions: int | None = None,
        cache: ResultCache | None = None,
        background: bool = False,
    ):
        self._store = store if isinstance(store, ArtifactStore) else ArtifactStore(store)
        self.cache = cache if cache is not None else ResultCache()
        self._background = bool(background)
        self._lock = threading.Lock()
        self._tenant_locks: dict[str, threading.Lock] = {}
        self._sessions: ByteBudgetLRU = ByteBudgetLRU(
            max_bytes=max_bytes,
            max_entries=max_sessions,
            sizeof=session_footprint,
            on_evict=self._on_evict,
        )
        self._evicted: list[DurableSession] = []
        self._loads = 0

    # -- plumbing ----------------------------------------------------------

    @property
    def store(self) -> ArtifactStore:
        """The backing artifact store."""
        return self._store

    def _on_evict(self, name, session) -> None:
        # Runs inside put() under self._lock. Seal the victim's log NOW:
        # a get() for this tenant can only observe the miss under
        # self._lock *after* this returns, so its restore scans a WAL no
        # stale reference can still append to — the duplicate-sequence
        # race is closed by construction. Sealing is cheap (bounded by
        # one in-flight fsync); the expensive part — joining the dispatch
        # thread — is deferred past the lock via the buffer.
        session.log.seal()
        self._evicted.append(session)
        _REGISTRY_EVICTIONS.inc()

    def _insert(self, name: str, session: DurableSession) -> None:
        """Admit a session, capping its accounted size at the budget.

        A tenant whose real footprint exceeds the whole budget would
        otherwise be evicted by its own ``put`` — a close/restore loop
        on every request. Capping lets it stay resident alone (the LRU
        still evicts everything else). Sessions the insertion pushed out
        are retired *after* the registry lock is released: retiring
        seals the victim's log (a stale reference can keep reading, but
        a late update fails loudly instead of racing the tenant's next
        restored session for the log file).
        """
        size = session_footprint(session)
        with self._lock:
            if self._sessions.max_bytes is not None:
                size = min(size, self._sessions.max_bytes)
            self._sessions.put(name, session, size=size)
            victims, self._evicted = self._evicted, []
        for victim in victims:
            victim.retire()

    def _tenant_lock(self, name: str) -> threading.Lock:
        with self._lock:
            return self._tenant_locks.setdefault(name, threading.Lock())

    def ensure_background(self) -> None:
        """Run every session (current and future) with a dispatch thread.

        Handler threads of an HTTP server are only safe against a
        running dispatch lane; the server calls this when a registry is
        attached so programmatic ``Registry()`` defaults can't serve
        engine work inline from concurrent threads.
        """
        with self._lock:
            self._background = True
            sessions = [self._sessions.peek(name) for name in self._sessions]
        for session in sessions:
            if session is not None:
                session.start_background()

    # -- views -------------------------------------------------------------

    def names(self) -> list[str]:
        """Every tenant with a snapshot in the store."""
        return self._store.tenants()

    def loaded(self) -> list[str]:
        """Tenants currently resident in memory."""
        with self._lock:
            return list(self._sessions)

    def __contains__(self, name: str) -> bool:
        return name in self._store.tenants()

    # -- the main path -----------------------------------------------------

    def get(self, name: str) -> DurableSession:
        """The live session for ``name``, restoring it on first access.

        Restores (snapshot + write-ahead-log replay) run under the
        tenant's own lock: concurrent first requests coalesce into one
        load, and loads never serialize across tenants.
        """
        name = check_tenant_name(name)
        with self._tenant_lock(name):
            with self._lock:
                session = self._sessions.get(name)
            if session is not None:
                return session
            session = restore_session(
                self._store, name, cache=self.cache, background=self._background
            )
            self._insert(name, session)
            self._loads += 1
            _REGISTRY_LOADS.inc()
            return session

    def add(self, name: str, lewis: Lewis, default_actionable=None) -> DurableSession:
        """Register a fresh explainer as tenant ``name`` (snapshot included)."""
        name = check_tenant_name(name)
        with self._tenant_lock(name):
            if name in self._store.tenants():
                raise StoreError(f"tenant {name!r} already exists")
            session = create_tenant(
                self._store,
                name,
                lewis,
                cache=self.cache,
                default_actionable=default_actionable,
                background=self._background,
            )
            self._insert(name, session)
            return session

    def snapshot(self, name: str) -> dict:
        """Checkpoint ``name`` now: snapshot + write-ahead-log compaction.

        A loaded tenant checkpoints its live state. An unloaded tenant
        with a non-empty log tail is restored first (the tail *is* state
        that deserves a snapshot); with an empty tail the latest manifest
        already describes everything and is returned as-is.
        """
        name = check_tenant_name(name)
        with self._tenant_lock(name):
            with self._lock:
                session = self._sessions.peek(name)
            if session is None:
                manifest = self._store.manifest(name)
                log_tail = self._store.wal_path(name)
                from repro.store.wal import DeltaLog

                # one cheap scan: a compacted log only holds records past
                # the last checkpoint, so last_seq alone decides dirtiness
                if (
                    not log_tail.exists()
                    or DeltaLog(log_tail).last_seq <= int(manifest["wal_seq"])
                ):
                    return manifest
                session = restore_session(
                    self._store, name, cache=self.cache, background=self._background
                )
                self._insert(name, session)
                self._loads += 1
                _REGISTRY_LOADS.inc()
            return checkpoint_session(self._store, session, name)

    def evict(self, name: str) -> bool:
        """Unload ``name`` (retire its session); on-disk state is untouched."""
        name = check_tenant_name(name)
        with self._tenant_lock(name):
            with self._lock:
                session = self._sessions.peek(name)
                self._sessions.discard(name)
            if session is None:
                return False
            session.retire()
            return True

    def remove(self, name: str) -> bool:
        """Drop ``name`` entirely: session, snapshots, and log."""
        name = check_tenant_name(name)
        with self._tenant_lock(name):
            with self._lock:
                session = self._sessions.peek(name)
                self._sessions.discard(name)
            if session is not None:
                session.retire()
            return self._store.remove_tenant(name)

    # -- lifecycle ---------------------------------------------------------

    def close(self, checkpoint: bool = False) -> None:
        """Unload every session, optionally checkpointing each first.

        ``checkpoint=True`` is the graceful-shutdown path: each loaded
        tenant gets a fresh snapshot and a compacted log, so the next
        boot is warm with no tail to replay.
        """
        with self._lock:
            names = list(self._sessions)
        for name in names:
            if checkpoint and self._dirty(name):
                try:
                    self.snapshot(name)
                except StoreError:
                    pass  # unsnapshotable (shouldn't happen); WAL still durable
            self.evict(name)

    def _dirty(self, name: str) -> bool:
        """True when a loaded session has updates the latest snapshot misses."""
        with self._lock:
            session = self._sessions.peek(name)
        if session is None:
            return False
        try:
            manifest = self._store.manifest(name)
        except StoreError:
            return True
        return session.log.last_seq > int(manifest["wal_seq"])

    def __enter__(self) -> "Registry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Registry-level counters plus per-layer cache statistics."""
        with self._lock:
            sessions = self._sessions.stats()
            loaded = list(self._sessions)
        return {
            "tenants": self.names(),
            "loaded": loaded,
            "loads": self._loads,
            "sessions": sessions,
            "cache": self.cache.stats(),
            "store": self._store.stats(),
        }
