"""Write-ahead delta log and the durable session that writes through it.

Snapshots capture expensive standing state (model, encoded table, count
tensors); the write-ahead log captures everything *since* the snapshot
as a sequence of cheap :class:`~repro.service.updates.TableDelta`
records.  Recovery is the classic pairing: load the latest snapshot,
replay the log tail — the same shape as incremental view maintenance
under updates (Berkholz et al., see PAPERS.md), where the delta stream
is the compact representation of change.

:class:`DeltaLog` is an append-only JSONL file.  Each record carries a
monotone sequence number and a content digest; ``append`` flushes and
fsyncs before returning, so an acknowledged update survives a crash.
Recovery tolerates exactly one *torn tail* (an unterminated partial
final line from a crash mid-write, which is truncated away on open) but
refuses corruption anywhere else — a bad newline-terminated record,
even in final position, is damage to acknowledged data, and replaying
around it would silently diverge.

:class:`DurableSession` wraps :class:`~repro.service.session
.ExplainerSession` with write-*ahead* semantics: an update is validated
against the live schema, appended to the log, and only then applied to
the engine.  The crash window is therefore safe in both directions — a
logged-but-unapplied delta is replayed on restore, and an unlogged delta
was never acknowledged.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import Any, Mapping

import repro.faults as _faults
from repro.obs import metrics as _obs
from repro.obs import tracing as _tracing
from repro.service.session import ExplainerSession, jsonable
from repro.service.updates import TableDelta
from repro.utils.exceptions import DegradedError, StoreError

_WAL_APPENDS = _obs.get_registry().counter(
    "repro_wal_appends_total", "Deltas durably appended to write-ahead logs."
)
_WAL_FSYNC_SECONDS = _obs.get_registry().histogram(
    "repro_wal_fsync_seconds",
    "Write + flush + fsync wall time of one WAL append.",
)


def _record_digest(core: Mapping[str, Any]) -> str:
    payload = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]


def _record_core(seq: int, delta: TableDelta, request_id: str | None = None) -> dict:
    """The JSON form of one record — portable values only.

    Numpy scalars collapse to their Python equivalents (the session
    encodes both spellings to the same codes, so replay is faithful).
    Values JSON cannot represent surface as a :class:`StoreError` from
    :func:`_record_line` *before* the record is acknowledged — a silent
    ``str()`` coercion here would replay as a different value than the
    live session applied.

    ``request_id`` is the originating request's trace id, recorded (and
    covered by the digest) only when present so logs written before the
    field existed still verify.
    """
    core = {
        "seq": seq,
        "insert": jsonable([dict(row) for row in delta.insert]),
        "delete": [int(index) for index in delta.delete],
    }
    if request_id is not None:
        core["request_id"] = str(request_id)
    return core


def _record_line(core: Mapping[str, Any]) -> bytes:
    """Serialize one record (digest included) to its on-disk line."""
    try:
        crc = _record_digest(core)
    except (TypeError, ValueError) as exc:
        raise StoreError(
            f"delta contains values JSON cannot represent faithfully: {exc}"
        ) from exc
    record = dict(core)
    record["crc"] = crc
    return json.dumps(record, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"


class DeltaLog:
    """Append-only, fsync'd JSONL write-ahead log of table deltas.

    Parameters
    ----------
    path:
        Log file location (created on first append). One log per tenant;
        :meth:`ArtifactStore.wal_path` hands out the conventional path.
    fsync:
        Fsync after every append (the durability guarantee). Disable
        only in benchmarks that measure everything-but-the-disk.
    """

    def __init__(self, path: str | Path, fsync: bool = True):
        self.path = Path(path)
        self._fsync = bool(fsync)
        self._lock = threading.Lock()
        self._fh = None
        self._sealed = False
        self._degraded: str | None = None
        self._appended = 0
        records, valid_bytes, total_bytes, floor = self._scan()
        self._floor = floor
        self._last_seq = records[-1][0] if records else floor
        self._first_seq = records[0][0] if records else 0
        self._records = len(records)
        if valid_bytes < total_bytes:
            # torn tail from a crash mid-append: the record was never
            # acknowledged, so truncating it is the correct recovery.
            with open(self.path, "ab") as fh:
                fh.truncate(valid_bytes)

    # -- reading -----------------------------------------------------------

    def _scan(
        self,
    ) -> tuple[list[tuple[int, TableDelta, str | None]], int, int, int]:
        """Parse the log; returns (records, valid bytes, total bytes, floor).

        Records are ``(seq, delta, request_id)`` triples; ``request_id``
        is ``None`` for records written before the field existed.
        ``floor`` is the highest compacted-through sequence recorded by a
        floor marker line (0 for never-compacted logs): a fresh open of a
        fully compacted log must not report cursor 0 as valid just
        because the file happens to hold no records.
        """
        if not self.path.exists():
            return [], 0, 0, 0
        raw = self.path.read_bytes()
        records: list[tuple[int, TableDelta, str | None]] = []
        offset = 0
        last_seq = 0
        floor = 0
        # Only newline-terminated lines are records. append() fsyncs the
        # record *and* its newline in one write before acknowledging, so
        # an unterminated final chunk — even one that happens to parse as
        # complete JSON — is an unacknowledged torn write: parsing it
        # would let the next append concatenate onto the same line and a
        # later recovery destroy both records.
        *terminated, tail = raw.split(b"\n")
        for line in terminated:
            chunk = len(line) + 1  # + the newline
            stripped = line.strip()
            if not stripped:
                offset += chunk
                continue
            try:
                record = json.loads(stripped)
                if "floor" in record and "seq" not in record:
                    # compaction floor marker, written by truncate_through
                    if record.get("crc") != _record_digest(
                        {"floor": record["floor"]}
                    ):
                        raise StoreError(
                            f"corrupt WAL floor marker at byte {offset} of "
                            f"{self.path}; refusing an unreliable history"
                        )
                    floor = max(floor, int(record["floor"]))
                    last_seq = max(last_seq, floor)
                    offset += chunk
                    continue
                core = {
                    "seq": record["seq"],
                    "insert": record["insert"],
                    "delete": record["delete"],
                }
                if "request_id" in record:
                    core["request_id"] = record["request_id"]
                ok = record.get("crc") == _record_digest(core)
                seq = int(record["seq"])
            except (ValueError, KeyError, TypeError):
                ok = False
                seq = -1
            if not ok or seq <= last_seq:
                # A terminated line can never be a torn write — the
                # newline is the last byte of the single append write,
                # so a bad-but-complete record is *corruption of
                # acknowledged data* (even in final position) and must
                # refuse recovery rather than silently drop the record.
                raise StoreError(
                    f"corrupt WAL record at byte {offset} of {self.path}; "
                    "refusing to replay an unreliable history"
                )
            records.append(
                (
                    seq,
                    TableDelta(
                        insert=tuple(core["insert"]), delete=tuple(core["delete"])
                    ),
                    core.get("request_id"),
                )
            )
            last_seq = seq
            offset += chunk
        # `offset` == bytes through the last terminated line; a non-empty
        # `tail` beyond it is the torn write the caller truncates.
        assert offset + len(tail) == len(raw)
        return records, offset, len(raw), floor

    def replay(self, after: int = 0) -> list[tuple[int, TableDelta]]:
        """Records with sequence number greater than ``after``, in order."""
        with self._lock:
            records, _valid, _total, _floor = self._scan()
        return [(seq, delta) for seq, delta, _rid in records if seq > after]

    def replay_annotated(
        self, after: int = 0
    ) -> list[tuple[int, TableDelta, str | None]]:
        """Like :meth:`replay` but including each record's request id."""
        with self._lock:
            records, _valid, _total, _floor = self._scan()
        return [
            (seq, delta, rid) for seq, delta, rid in records if seq > after
        ]

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent acknowledged record."""
        return self._last_seq

    @property
    def first_live_seq(self) -> int:
        """Sequence number of the oldest record still in the file.

        Checkpoint compaction silently drops the replayable prefix, so a
        tailing client holding cursor ``c`` can only trust
        ``replay(after=c)`` to be gap-free when ``c >= first_live_seq - 1``.
        An empty (or fully compacted) log exposes ``last_seq + 1`` — the
        next sequence number that could ever be replayed — so the same
        inequality works without special-casing emptiness.
        """
        with self._lock:
            if self._records:
                return self._first_seq
            return self._last_seq + 1

    def cursor_valid(self, cursor: int) -> bool:
        """Whether ``replay(after=cursor)`` returns a gap-free tail.

        False means compaction already dropped records the cursor never
        saw; the client must resnapshot (re-read full state) instead of
        replaying, or it would silently miss deltas.
        """
        return int(cursor) >= self.first_live_seq - 1

    def ensure_floor(self, seq: int) -> None:
        """Raise the sequence floor to at least ``seq``.

        After checkpoint compaction the log file alone no longer knows
        how far numbering has advanced (the prefix is gone); the snapshot
        manifest does. Recovery calls this with the manifest's
        ``wal_seq`` so post-restore appends continue the sequence instead
        of reusing numbers the manifest already covers.
        """
        with self._lock:
            self._last_seq = max(self._last_seq, int(seq))

    # -- writing -----------------------------------------------------------

    def append(self, delta: TableDelta, request_id: str | None = None) -> int:
        """Durably append one delta; returns its sequence number.

        The record is on disk (flushed + fsynced) before this returns —
        the write-ahead guarantee the durable session relies on.
        ``request_id`` (the originating trace id) is stored in the
        record and covered by its digest.

        An I/O failure anywhere in the write → flush → fsync sequence
        puts the log in *read-only degraded mode*: the failed record was
        never acknowledged, the handle may hold unflushed or torn bytes,
        and blindly appending after it would risk interleaving damage
        into acknowledged history.  Degraded appends raise
        :class:`DegradedError` until :meth:`reopen` re-verifies the file
        on disk.
        """
        with self._lock:
            if self._sealed:
                raise StoreError(
                    f"write-ahead log {self.path} is sealed (the session was "
                    "evicted); re-fetch the tenant from the registry"
                )
            if self._degraded is not None:
                raise DegradedError(
                    f"write-ahead log {self.path} is read-only degraded "
                    f"after an I/O failure ({self._degraded}); reopen() to heal"
                )
            seq = self._last_seq + 1
            line = _record_line(_record_core(seq, delta, request_id))
            try:
                if self._fh is None:
                    self.path.parent.mkdir(parents=True, exist_ok=True)
                    created = not self.path.exists()
                    self._fh = open(self.path, "ab")
                    if created:
                        # the record's durability includes the file's own
                        # directory entry — fsync the parent once at creation
                        from repro.store.artifacts import _fsync_dir

                        _fsync_dir(self.path.parent)
                write_started = time.perf_counter()
                _faults.inject(
                    "wal.append.write",
                    lambda: OSError(f"injected WAL write failure: {self.path}"),
                )
                if _faults.fires("wal.append.torn"):
                    # stage the damage a crash mid-write leaves behind:
                    # half a record, no newline, then the failure
                    self._fh.write(line[: max(1, len(line) // 2)])
                    self._fh.flush()
                    raise OSError(f"injected torn WAL write: {self.path}")
                self._fh.write(line)
                self._fh.flush()
                if self._fsync:
                    _faults.inject(
                        "wal.append.fsync",
                        lambda: OSError(f"injected WAL fsync failure: {self.path}"),
                    )
                    os.fsync(self._fh.fileno())
            except OSError as exc:
                self._degraded = str(exc)
                if self._fh is not None:
                    try:
                        self._fh.close()
                    except OSError:
                        pass
                    self._fh = None
                raise DegradedError(
                    f"write-ahead log append failed, entering read-only "
                    f"degraded mode: {exc}"
                ) from exc
            elapsed = time.perf_counter() - write_started
            if self._records == 0:
                self._first_seq = seq
            self._last_seq = seq
            self._records += 1
            self._appended += 1
        _WAL_APPENDS.inc()
        _WAL_FSYNC_SECONDS.observe(elapsed)
        _tracing.record_span(
            _tracing.current_context(),
            "wal_fsync",
            elapsed * 1e3,
            tags={"seq": seq},
        )
        return seq

    def truncate_through(self, seq: int) -> int:
        """Checkpoint compaction: drop records with sequence <= ``seq``.

        Called after a snapshot captures the state through ``seq`` — the
        dropped prefix is redundant with the snapshot. The tail is
        rewritten atomically (temp file + rename); sequence numbers keep
        counting from where they were. Returns how many records remain.

        The rewritten file starts with a *floor marker* line recording
        the compacted-through sequence, so a fresh open of the file —
        even a fully compacted (record-free) one — still knows cursor 0
        points into dropped history and reports it as a gap instead of
        silently replaying an empty tail.
        """
        with self._lock:
            records, _valid, _total, disk_floor = self._scan()
            keep = [(s, d, r) for s, d, r in records if s > seq]
            if len(keep) == len(records):
                return len(keep)
            floor = max(self._floor, disk_floor, int(seq))
            if self._fh is not None:
                self._fh.close()
                self._fh = None
            tmp = self.path.with_name(self.path.name + ".compact")
            try:
                with open(tmp, "wb") as fh:
                    marker = {"floor": floor}
                    marker["crc"] = _record_digest(marker)
                    fh.write(
                        json.dumps(
                            marker, sort_keys=True, separators=(",", ":")
                        ).encode("utf-8")
                        + b"\n"
                    )
                    for s, delta, rid in keep:
                        fh.write(_record_line(_record_core(s, delta, rid)))
                    fh.flush()
                    _faults.inject(
                        "wal.compact.fsync",
                        lambda: OSError(f"injected compaction fsync failure: {tmp}"),
                    )
                    os.fsync(fh.fileno())
                _faults.inject(
                    "wal.compact.replace",
                    lambda: OSError(f"injected compaction replace failure: {tmp}"),
                )
                os.replace(tmp, self.path)
            except OSError as exc:
                # the original log is untouched until os.replace lands, so a
                # failed compaction is loud but harmless: replay still works
                # from the uncompacted file; only the temp file may be torn.
                raise StoreError(
                    f"checkpoint compaction of {self.path} failed; the "
                    f"uncompacted log remains authoritative: {exc}"
                ) from exc
            self._records = len(keep)
            self._first_seq = keep[0][0] if keep else 0
            self._floor = floor
            self._last_seq = max(self._last_seq, floor)
            return len(keep)

    # -- degraded mode -----------------------------------------------------

    @property
    def degraded(self) -> str | None:
        """Why the log is read-only degraded, or ``None`` when healthy."""
        return self._degraded

    def reopen(self) -> None:
        """Heal a degraded log: re-verify the file and accept appends again.

        Rescans the on-disk log (refusing mid-log corruption exactly as
        construction does), truncates any torn tail the failed append
        left behind, and restores in-memory counters from what is
        actually on disk.  The sequence floor never goes backwards.
        A record whose *write completed* but whose fsync failed is
        adopted: it is a complete terminated line, indistinguishable
        from (and as safe as) an acknowledged one — replaying it is the
        standard resolution of the crash-after-write-before-ack window.
        """
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
            records, valid_bytes, total_bytes, floor = self._scan()
            if valid_bytes < total_bytes:
                with open(self.path, "ab") as fh:
                    fh.truncate(valid_bytes)
            self._records = len(records)
            self._first_seq = records[0][0] if records else 0
            self._floor = max(self._floor, floor)
            self._last_seq = max(
                self._last_seq, floor, records[-1][0] if records else 0
            )
            self._degraded = None

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Close the append handle (reads still work; appends reopen)."""
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def seal(self) -> None:
        """Permanently refuse further appends through this instance.

        Eviction hands the log file to the *next* restore of the tenant;
        sealing (after waiting out any in-flight append — the lock is
        held for the full append) guarantees a stale session reference
        can never interleave duplicate sequence numbers into a file now
        owned by a newer session. Reads still work.
        """
        with self._lock:
            self._sealed = True
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "DeltaLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict:
        """Log counters: size on disk, record count, last sequence."""
        return {
            "path": str(self.path),
            "last_seq": self._last_seq,
            "first_live_seq": self.first_live_seq,
            "compacted_through": self._floor,
            "records": self._records,
            "appended": self._appended,
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
            "fsync": self._fsync,
            "degraded": self._degraded,
        }


class DurableSession(ExplainerSession):
    """An explainer session whose updates are write-ahead logged.

    Construction mirrors :class:`ExplainerSession` plus ``log``, the
    :class:`DeltaLog` updates write through.  Every accepted update is on
    disk before it touches the engine, so a session restored from the
    latest snapshot plus the log tail reproduces this session's state
    bit for bit (see :func:`repro.store.snapshot.restore_session`).
    """

    def __init__(self, lewis, log: DeltaLog, **kwargs):
        super().__init__(lewis, **kwargs)
        self.log = log
        self._wal_lock = threading.Lock()

    @property
    def update_lock(self) -> threading.Lock:
        """Lock held for the full validate → log → apply of every update.

        Snapshots acquire it so a checkpoint can never capture a torn
        mid-update state, or record a ``wal_seq`` whose delta the
        serialized table does not yet reflect (which compaction would
        then silently drop).
        """
        return self._wal_lock

    def update(self, delta: TableDelta | Mapping[str, Any]) -> dict:
        """Validate, write-ahead log, then apply one delta.

        Validation (schema coverage, domain membership, delete bounds)
        happens *before* the append so the log only ever contains deltas
        that will apply cleanly on replay. The lock serializes loggers so
        log order is apply order.
        """
        if not isinstance(delta, TableDelta):
            delta = TableDelta.from_json(delta)
        with self._wal_lock:
            self._validate(delta)
            if delta.is_empty:
                seq = self.log.last_seq
            else:
                # The record remembers which request wrote it, so a WAL
                # entry can be joined back to its trace and HTTP response.
                seq = self.log.append(
                    delta, request_id=_tracing.current_trace_id()
                )
            response = super().update(delta)
        response["result"]["wal_seq"] = seq
        return response

    def _validate(self, delta: TableDelta) -> None:
        if delta.insert:
            # encodes against live domains; DomainError on unknown labels
            self.lewis.data.encode_rows(list(delta.insert))
        n = len(self.lewis.data)
        for index in delta.delete:
            if not 0 <= int(index) < n:
                raise IndexError(f"delete index {index} outside [0, {n})")

    def apply_logged(self, delta: TableDelta | Mapping[str, Any]) -> dict:
        """Apply a delta that is already in the log (recovery replay)."""
        return ExplainerSession.update(self, delta)

    def apply_replicated(
        self,
        seq: int,
        delta: TableDelta | Mapping[str, Any],
        request_id: str | None = None,
    ) -> dict:
        """Apply one shipped WAL record on a follower replica.

        The leader assigned ``seq``; the follower must reproduce the
        leader's log bit for bit, so the record is validated, appended to
        the *local* log (asserting the local append lands on the shipped
        sequence number), and applied through the normal maintenance
        path — all under the update lock, exactly like a leader write.

        Idempotent against redelivery: a record at or below the local
        ``last_seq`` is acknowledged as a duplicate without touching
        anything.  A record that would skip ahead raises
        :class:`StoreError` — the shipping stream has a gap (dropped
        batch, or compaction outran the cursor) and the tailer must
        re-poll or resync from a snapshot rather than apply out of order.
        """
        if not isinstance(delta, TableDelta):
            delta = TableDelta.from_json(delta)
        seq = int(seq)
        with self._wal_lock:
            last = self.log.last_seq
            if seq <= last:
                return {
                    "applied": False,
                    "duplicate": True,
                    "result": {"wal_seq": last},
                }
            if seq != last + 1:
                raise StoreError(
                    f"replication gap: shipped seq {seq} but the local log "
                    f"ends at {last}; re-poll the leader or resync from a "
                    "snapshot"
                )
            _faults.inject(
                "repl.apply.crash",
                lambda: StoreError(
                    f"injected replication apply crash before seq {seq}"
                ),
            )
            self._validate(delta)
            written = self.log.append(delta, request_id=request_id)
            if written != seq:
                raise StoreError(
                    f"replication diverged: local append landed on seq "
                    f"{written}, leader shipped {seq}"
                )
            response = ExplainerSession.update(self, delta)
        response["result"]["wal_seq"] = written
        response["applied"] = True
        return response

    def retire(self) -> None:
        """Eviction teardown: stop threads and *seal* the log.

        A retired session still answers read requests held by in-flight
        callers (inline dispatch), but any late ``update`` through a
        stale reference fails loudly instead of appending to a log whose
        ownership has passed to the tenant's next restored session.
        """
        super().close()
        self.log.seal()

    def close(self) -> None:
        """Stop the dispatch thread and release the log handle."""
        super().close()
        self.log.close()

    def stats(self) -> dict:
        """Session statistics plus the write-ahead log counters."""
        out = super().stats()
        out["wal"] = self.log.stats()
        return out
