"""Durable multi-tenant persistence for the explanation service.

The serving layer (PR 2) made LEWIS a live system; this subpackage makes
it a *durable, multi-tenant* one:

* :class:`ArtifactStore` — content-addressed on-disk blobs + snapshot
  manifests: one snapshot captures a session's model, encoded table,
  positive-decision vector and warm contingency tensors, so a restore
  skips training, prediction, ordering inference and counting.
* :class:`DeltaLog` / :class:`DurableSession` — an fsync'd JSONL
  write-ahead log of :class:`~repro.service.updates.TableDelta` records;
  recovery = latest snapshot + replay of the log tail, bit-identical to
  the session that crashed.
* :class:`Registry` — names -> stored sessions, lazy-loaded behind
  per-tenant locks under a byte-budgeted LRU, sharing one tenant-scoped
  result cache.

``python -m repro.cli serve --store DIR`` serves a registry over HTTP;
``snapshot`` / ``restore`` / ``registry ls|add|rm`` manage it offline.
"""

from repro.store.artifacts import (
    ArtifactStore,
    graph_from_dict,
    graph_to_dict,
    table_from_bytes,
    table_to_bytes,
)
from repro.store.registry import Registry, session_footprint
from repro.store.snapshot import (
    checkpoint_session,
    create_tenant,
    restore_session,
    snapshot_session,
    verify_restore,
)
from repro.store.wal import DeltaLog, DurableSession

__all__ = [
    "ArtifactStore",
    "DeltaLog",
    "DurableSession",
    "Registry",
    "checkpoint_session",
    "create_tenant",
    "graph_from_dict",
    "graph_to_dict",
    "restore_session",
    "session_footprint",
    "snapshot_session",
    "table_from_bytes",
    "table_to_bytes",
    "verify_restore",
]
