"""Capture a live explainer session to the store; rebuild it warm.

A session's expensive standing state is exactly four artifacts:

* the trained black box (JSON via :mod:`repro.models.serialize`),
* the encoded population table (codes + domains, one ``.npz``),
* the black box's positive-decision vector over that population,
* the contingency engine's cached count tensors
  (:meth:`ContingencyEngine.save_state`, one ``.npz``).

``snapshot_session`` content-addresses all four into the store and
writes a manifest tying them to the explainer's configuration (feature
names, attributes, favourability-ordered domains, causal graph) and to
the write-ahead-log sequence number the snapshot captures.
``restore_session`` inverts it: rebuild the :class:`~repro.core.lewis
.Lewis` without re-training, re-predicting, re-inferring orderings or
re-counting, then replay the WAL tail so the session lands exactly where
the original left off.  ``verify_restore`` is the consistency check in
the spirit of black-box snapshot-isolation checkers (Huang et al.): the
restored engine's tensors must be bit-identical to a from-scratch
rebuild over the same data.
"""

from __future__ import annotations

import io
from typing import Any

import numpy as np

from repro.core.lewis import Lewis
from repro.models.serialize import model_from_dict, model_to_dict
from repro.service.cache import ResultCache
from repro.service.session import ExplainerSession, jsonable
from repro.store.artifacts import (
    ArtifactStore,
    array_from_bytes,
    array_to_bytes,
    check_tenant_name,
    graph_from_dict,
    graph_to_dict,
    table_from_bytes,
    table_to_bytes,
)
from repro.store.wal import DeltaLog, DurableSession
from repro.utils.exceptions import StoreError

SNAPSHOT_FORMAT = 1


def snapshot_session(
    store: ArtifactStore, session: ExplainerSession, name: str | None = None
) -> dict:
    """Persist ``session``'s full state; returns the written manifest.

    Only sessions over serialisable models can be snapshotted (opaque
    callables cannot be rebuilt in another process). The session's table,
    positive vector and warm count tensors are captured as content-
    addressed blobs, so unchanged artifacts cost nothing on re-snapshot.

    Capturing a :class:`DurableSession` holds its update lock for the
    duration, so the serialized state and the recorded ``wal_seq`` are
    consistent even while the session is serving update traffic.
    """
    import contextlib

    name = check_tenant_name(name or session.tenant)
    guard = getattr(session, "update_lock", None) or contextlib.nullcontext()
    with guard:
        return _snapshot_locked(store, session, name)


def _snapshot_locked(
    store: ArtifactStore, session: ExplainerSession, name: str
) -> dict:
    lewis = session.lewis
    try:
        model_doc = model_to_dict(lewis._model)
    except TypeError as exc:
        raise StoreError(
            f"cannot snapshot tenant {name!r}: {exc} "
            "(only serialisable models survive a process boundary)"
        ) from exc
    engine_buf = io.BytesIO()
    lewis.estimator.engine.save_state(engine_buf)
    blobs = {
        "model": store.put_json(model_doc),
        "table": store.put_bytes(table_to_bytes(lewis.data)),
        "positive": store.put_bytes(
            array_to_bytes(positive=lewis.positive.astype(np.int8))
        ),
        "engine": store.put_bytes(engine_buf.getvalue()),
    }
    wal_seq = session.log.last_seq if isinstance(session, DurableSession) else 0
    manifest = {
        "format": SNAPSHOT_FORMAT,
        "name": name,
        "wal_seq": wal_seq,
        "blobs": blobs,
        "graph": graph_to_dict(lewis.graph) if lewis.graph is not None else None,
        "lewis": {
            "feature_names": list(lewis.feature_names),
            "attributes": list(lewis.attributes),
            "positive_outcome": jsonable(lewis._positive_outcome),
            "threshold": lewis.threshold,
            "model_domains": {
                key: jsonable(list(domain))
                for key, domain in lewis._model_domains.items()
            },
        },
        "session": {
            "fingerprint": session.fingerprint,
            "state_token": session.state_token,
            "table_version": session.table_version,
            "default_actionable": session.default_actionable,
            "n_rows": len(lewis.data),
        },
        # Warm-start donor pools (PR-5 follow-up): solved recourse action
        # sets keyed by actionable set. Donors only seed exact-search
        # upper bounds — never answers — so restoring them is always
        # sound, and a restored tenant's first recourse audit warm-starts
        # from everything solved before the snapshot.
        "recourse_warm": lewis.export_recourse_warm(),
    }
    snapshot_id = store.write_manifest(name, manifest)
    manifest["snapshot_id"] = snapshot_id
    return manifest


def restore_session(
    store: ArtifactStore,
    name: str,
    snapshot_id: str | None = None,
    *,
    cache: ResultCache | None = None,
    background: bool = False,
    replay: bool = True,
    **session_kwargs: Any,
) -> DurableSession:
    """Rebuild a tenant's session warm: snapshot + write-ahead-log tail.

    The returned session skips model training, population prediction,
    ordering inference and tensor counting — all four come from the
    snapshot — and has replayed every logged delta newer than the
    snapshot (``replay=False`` restores the bare snapshot state). The
    restored model fingerprint is checked against the manifest so a
    snapshot that no longer describes its blobs fails loudly.
    """
    manifest = store.manifest(name, snapshot_id)
    if manifest.get("format") != SNAPSHOT_FORMAT:
        raise StoreError(
            f"unsupported snapshot format {manifest.get('format')!r} "
            f"for tenant {name!r}"
        )
    spec = manifest["lewis"]
    model = model_from_dict(store.get_json(manifest["blobs"]["model"]))
    table = table_from_bytes(store.get_bytes(manifest["blobs"]["table"]))
    positive = array_from_bytes(
        store.get_bytes(manifest["blobs"]["positive"]), "positive"
    ).astype(bool)
    graph = graph_from_dict(manifest["graph"]) if manifest["graph"] else None
    positive_outcome = spec["positive_outcome"]
    lewis = Lewis(
        model,
        data=table,
        feature_names=spec["feature_names"],
        positive_outcome=positive_outcome,
        threshold=spec["threshold"],
        graph=graph,
        attributes=spec["attributes"],
        infer_orderings=False,
        positive_vector=positive,
        model_domains=spec["model_domains"],
    )
    lewis.estimator.engine.load_state(
        io.BytesIO(store.get_bytes(manifest["blobs"]["engine"]))
    )
    # manifests written before donor persistence have no state to reload
    lewis.seed_recourse_warm(manifest.get("recourse_warm") or [])
    log = DeltaLog(store.wal_path(name))
    # the manifest anchors sequence continuity across log compactions
    log.ensure_floor(int(manifest["wal_seq"]))
    session = DurableSession(
        lewis,
        log,
        cache=cache,
        default_actionable=manifest["session"]["default_actionable"],
        background=background,
        tenant=name,
        **session_kwargs,
    )
    expected = manifest["session"]["fingerprint"]
    if session.fingerprint != expected:
        session.close()
        raise StoreError(
            f"restored fingerprint {session.fingerprint} != manifest "
            f"{expected} for tenant {name!r}: snapshot does not describe "
            "its blobs (non-JSON-portable domains?)"
        )
    if replay:
        expected = int(manifest["wal_seq"]) + 1
        for seq, delta in log.replay(after=int(manifest["wal_seq"])):
            if seq != expected:
                session.close()
                raise StoreError(
                    f"write-ahead log of tenant {name!r} starts at seq {seq} "
                    f"but snapshot {manifest['snapshot_id']} needs seq "
                    f"{expected}: the gap was compacted away by a later "
                    "checkpoint — restore the latest snapshot instead"
                )
            session.apply_logged(delta)
            expected += 1
    return session


def checkpoint_session(
    store: ArtifactStore, session: ExplainerSession, name: str | None = None
) -> dict:
    """Snapshot, then compact the write-ahead log up to the snapshot.

    The snapshot captures everything through the log's current sequence
    number, so the prefix it covers is dropped; recovery becomes "load
    snapshot + replay (now empty) tail" until new updates arrive.
    """
    manifest = snapshot_session(store, session, name)
    if isinstance(session, DurableSession):
        session.log.truncate_through(int(manifest["wal_seq"]))
    return manifest


def create_tenant(
    store: ArtifactStore,
    name: str,
    lewis: Lewis,
    *,
    cache: ResultCache | None = None,
    default_actionable=None,
    background: bool = False,
    snapshot: bool = True,
    **session_kwargs: Any,
) -> DurableSession:
    """Bind a fresh explainer to the store as tenant ``name``.

    Wraps ``lewis`` in a :class:`DurableSession` writing through the
    tenant's log and (by default) takes the initial snapshot, after
    which the tenant is restorable in any process.

    The tenant must be *fresh*: re-creating an existing name would pair
    a brand-new table with the old log's sequence numbers, and the first
    checkpoint would then compact away durably acknowledged updates the
    new snapshot never contained. Restore or remove the old tenant
    first.
    """
    name = check_tenant_name(name)
    if store.snapshots(name):
        raise StoreError(
            f"tenant {name!r} already exists; restore it (or remove it) "
            "instead of re-creating it over its own history"
        )
    existing_log = DeltaLog(store.wal_path(name))
    if existing_log.last_seq > 0:
        raise StoreError(
            f"tenant {name!r} has an orphaned non-empty write-ahead log at "
            f"{store.wal_path(name)}; refusing to overwrite logged updates"
        )
    session = DurableSession(
        lewis,
        existing_log,
        cache=cache,
        default_actionable=default_actionable,
        background=background,
        tenant=name,
        **session_kwargs,
    )
    if snapshot:
        snapshot_session(store, session, name)
    return session


def verify_restore(session: DurableSession) -> dict:
    """Consistency check: restored tensors vs a from-scratch recount.

    Rebuilds every cached count tensor from the session's live table and
    compares bit for bit — the cheap, total check that the snapshot +
    replay pipeline reproduced the ground-truth counts. Returns
    ``{"tensors": n, "ok": True}`` or raises :class:`StoreError`.
    """
    engine = session.lewis.estimator.engine
    from repro.estimation.engine import ContingencyEngine

    fresh = ContingencyEngine(engine.table, alpha=engine.alpha)
    checked = 0
    for key in list(engine._tensors):
        restored = engine._tensors.peek(key)
        rebuilt = fresh.tensor(tuple(key))
        if not np.array_equal(restored, rebuilt):
            raise StoreError(
                f"restored tensor {key!r} diverges from a fresh rebuild"
            )
        checked += 1
    return {"tensors": checked, "ok": True}
