"""Content-addressed artifact store: blobs, snapshot manifests, codecs.

The durable layer of the serving stack stores three kinds of things:

* **blobs** — immutable byte strings (serialized models, ``.npz`` table
  and tensor archives) addressed by the SHA-256 of their content under
  ``objects/<aa>/<digest>``.  Content addressing deduplicates for free:
  re-snapshotting an unchanged model writes nothing new, and equal
  tables across tenants share one object.
* **manifests** — small JSON documents under
  ``manifests/<tenant>/<seq>.json`` tying one snapshot together: which
  blobs make up the session, the causal graph, the explainer's
  configuration, and the write-ahead-log sequence number the snapshot
  captures (everything after it must be replayed on restore).
* **write-ahead logs** — one append-only JSONL file per tenant under
  ``wal/<tenant>.jsonl`` (owned by :class:`~repro.store.wal.DeltaLog`;
  the store only hands out the path).

All writes are crash-safe: blobs and manifests go through a
write-temp → fsync → atomic-rename sequence, and the parent directory is
fsynced so the rename itself survives power loss.

This module also hosts the codecs that turn a :class:`~repro.data.table
.Table` and a :class:`~repro.causal.graph.CausalDiagram` into bytes and
back.  Tables round-trip through one ``.npz`` archive (code arrays plus
a JSON schema of names/domains/orderedness); graphs are plain JSON node
and edge lists.  Domains must be JSON-representable (str / int / float /
bool) so a restored column is *identical* to the saved one — the schema
fingerprint, and therefore every cache key, survives the round trip.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import shutil
from pathlib import Path
from typing import Any

import numpy as np

from repro.causal.graph import CausalDiagram
from repro.data.table import Column, Table
from repro.utils.exceptions import CorruptArtifactError, StoreError

import repro.faults as _faults

_NAME_OK = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-")

#: route names the multi-tenant HTTP server claims as first path segments;
#: a tenant with one of these names would be unreachable over HTTP.
#: Keep in sync with ``repro.service.server.RESERVED_SEGMENTS``.
RESERVED_TENANT_NAMES = frozenset(
    {"health", "healthz", "readyz", "stats", "explain", "recourse",
     "audit", "scores", "update", "registry", "monitors", "watch",
     "metrics", "traces", "obs", "log", "replication", "v1"}
)


def check_tenant_name(name: str) -> str:
    """Validate a tenant name (it becomes a directory name and URL segment)."""
    name = str(name)
    if not name or name.startswith(".") or not set(name) <= _NAME_OK:
        raise StoreError(
            f"invalid tenant name {name!r}: use letters, digits, '.', '_', '-' "
            "(must not start with '.')"
        )
    if name in RESERVED_TENANT_NAMES:
        raise StoreError(
            f"invalid tenant name {name!r}: it collides with a reserved "
            f"HTTP route segment ({sorted(RESERVED_TENANT_NAMES)})"
        )
    return name


def _fsync_dir(path: Path) -> None:
    """fsync a directory entry so a rename/create inside it is durable."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platforms without directory fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp-file + fsync + atomic rename.

    A failure anywhere before ``os.replace`` leaves at most a torn temp
    file behind — ``path`` itself is either absent or still its previous
    complete content, which is what makes injected crashes here safe to
    assert against (the store never exposes a half-written artifact).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        _faults.inject(
            "store.atomic_write",
            lambda: OSError(f"injected artifact write failure: {path}"),
        )
        if _faults.fires("store.atomic_write.torn"):
            fh.write(data[: max(1, len(data) // 2)])
            fh.flush()
            raise OSError(f"injected torn artifact write: {path}")
        fh.write(data)
        fh.flush()
        _faults.inject(
            "store.atomic_write.fsync",
            lambda: OSError(f"injected artifact fsync failure: {path}"),
        )
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


# ---------------------------------------------------------------------------
# codecs


def _plain(value: Any) -> Any:
    """Collapse numpy scalars so domains serialize to portable JSON."""
    return value.item() if isinstance(value, np.generic) else value


def table_to_bytes(table: Table) -> bytes:
    """Encode a table as one ``.npz`` archive (codes + JSON schema)."""
    schema = [
        {
            "name": col.name,
            "categories": [_plain(c) for c in col.categories],
            "ordered": bool(col.ordered),
        }
        for col in table
    ]
    buf = io.BytesIO()
    arrays = {f"codes_{i}": col.codes for i, col in enumerate(table)}
    np.savez_compressed(buf, __schema__=np.array(json.dumps(schema)), **arrays)
    return buf.getvalue()


def table_from_bytes(data: bytes) -> Table:
    """Rebuild a table saved by :func:`table_to_bytes`."""
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        schema = json.loads(str(archive["__schema__"][()]))
        columns = [
            Column(
                spec["name"],
                archive[f"codes_{i}"],
                tuple(spec["categories"]),
                ordered=spec["ordered"],
            )
            for i, spec in enumerate(schema)
        ]
    return Table(columns)


def array_to_bytes(**arrays: np.ndarray) -> bytes:
    """Encode named arrays as one ``.npz`` archive."""
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    return buf.getvalue()


def array_from_bytes(data: bytes, name: str) -> np.ndarray:
    """Read one named array out of an :func:`array_to_bytes` archive."""
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        return np.asarray(archive[name])


def graph_to_dict(graph: CausalDiagram) -> dict:
    """JSON view of a causal diagram (node and edge lists)."""
    return {
        "nodes": list(graph.nodes),
        "edges": [[u, v] for u, v in graph.edges],
    }


def graph_from_dict(data: dict) -> CausalDiagram:
    """Rebuild a diagram saved by :func:`graph_to_dict`."""
    return CausalDiagram(
        edges=[(u, v) for u, v in data["edges"]], nodes=data["nodes"]
    )


# ---------------------------------------------------------------------------
# the store


class ArtifactStore:
    """Content-addressed on-disk store for session snapshots.

    Parameters
    ----------
    root:
        Directory the store lives in (created if missing). The layout —
        ``objects/``, ``manifests/<tenant>/``, ``wal/`` — is documented
        in the module docstring.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        for sub in ("objects", "manifests", "wal"):
            (self.root / sub).mkdir(parents=True, exist_ok=True)

    # -- blobs -------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    def put_bytes(self, data: bytes) -> str:
        """Store a blob; returns its SHA-256 address (idempotent)."""
        digest = hashlib.sha256(data).hexdigest()
        path = self._object_path(digest)
        if not path.exists():
            try:
                atomic_write(path, data)
            except OSError as exc:
                raise StoreError(
                    f"cannot store object {digest!r} in {self.root}: {exc}"
                ) from exc
        return digest

    def get_bytes(self, digest: str) -> bytes:
        """Read and *verify* the blob at ``digest``.

        Content addressing makes every read self-checking: the address
        is the SHA-256 of the content, so bit rot, torn writes that
        somehow landed, or manual tampering surface as
        :class:`CorruptArtifactError` instead of being loaded as state.
        """
        path = self._object_path(digest)
        try:
            data = path.read_bytes()
        except FileNotFoundError as exc:
            raise StoreError(f"no object {digest!r} in {self.root}") from exc
        actual = hashlib.sha256(data).hexdigest()
        if actual != digest:
            raise CorruptArtifactError(
                f"object {digest!r} in {self.root} is corrupt: content "
                f"hashes to {actual!r}; refusing to load damaged state"
            )
        return data

    def has(self, digest: str) -> bool:
        """True when the blob at ``digest`` is present."""
        return self._object_path(digest).exists()

    def put_json(self, payload: Any) -> str:
        """Store a JSON document as a canonical (sorted-key) blob."""
        return self.put_bytes(
            json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()
        )

    def get_json(self, digest: str) -> Any:
        """Read and parse the JSON blob at ``digest``."""
        return json.loads(self.get_bytes(digest))

    # -- manifests ---------------------------------------------------------

    def _tenant_dir(self, name: str) -> Path:
        return self.root / "manifests" / check_tenant_name(name)

    def tenants(self) -> list[str]:
        """Names with at least one snapshot, sorted."""
        base = self.root / "manifests"
        return sorted(
            p.name for p in base.iterdir() if p.is_dir() and any(p.glob("*.json"))
        )

    def snapshots(self, name: str) -> list[str]:
        """Snapshot ids of ``name``, oldest first."""
        tenant = self._tenant_dir(name)
        if not tenant.is_dir():
            return []
        return sorted(p.stem for p in tenant.glob("*.json"))

    def write_manifest(self, name: str, manifest: dict) -> str:
        """Assign the next snapshot id, persist the manifest, return the id."""
        name = check_tenant_name(name)
        existing = self.snapshots(name)
        seq = (int(existing[-1]) if existing else 0) + 1
        snapshot_id = f"{seq:08d}"
        manifest = dict(manifest)
        manifest["snapshot_id"] = snapshot_id
        try:
            atomic_write(
                self._tenant_dir(name) / f"{snapshot_id}.json",
                json.dumps(manifest, indent=2, sort_keys=True).encode(),
            )
        except OSError as exc:
            raise StoreError(
                f"cannot write manifest {snapshot_id!r} for tenant "
                f"{name!r}: {exc}"
            ) from exc
        return snapshot_id

    def manifest(self, name: str, snapshot_id: str | None = None) -> dict:
        """Load a manifest (the latest when ``snapshot_id`` is omitted)."""
        ids = self.snapshots(name)
        if not ids:
            raise StoreError(f"unknown tenant {name!r} in {self.root}")
        if snapshot_id is None:
            snapshot_id = ids[-1]
        elif snapshot_id not in ids:
            raise StoreError(f"tenant {name!r} has no snapshot {snapshot_id!r}")
        path = self._tenant_dir(name) / f"{snapshot_id}.json"
        return json.loads(path.read_text())

    def remove_tenant(self, name: str) -> bool:
        """Drop a tenant's manifests, WAL and monitor journal."""
        name = check_tenant_name(name)
        removed = False
        tenant = self._tenant_dir(name)
        if tenant.is_dir():
            shutil.rmtree(tenant)
            removed = True
        for path in (self.wal_path(name), self.monitor_journal_path(name)):
            if path.exists():
                path.unlink()
                removed = True
        return removed

    # -- write-ahead logs --------------------------------------------------

    def wal_path(self, name: str) -> Path:
        """Path of the tenant's write-ahead log (may not exist yet)."""
        return self.root / "wal" / f"{check_tenant_name(name)}.jsonl"

    def monitor_journal_path(self, name: str) -> Path:
        """Path of the tenant's monitor journal (may not exist yet)."""
        return self.root / "monitors" / f"{check_tenant_name(name)}.jsonl"

    # -- maintenance -------------------------------------------------------

    def referenced_blobs(self) -> set[str]:
        """Every blob digest some manifest still points at."""
        live: set[str] = set()
        for name in self.tenants():
            for snapshot_id in self.snapshots(name):
                manifest = self.manifest(name, snapshot_id)
                live.update(manifest.get("blobs", {}).values())
        return live

    def gc(self) -> int:
        """Delete unreferenced blobs; returns how many were dropped."""
        live = self.referenced_blobs()
        dropped = 0
        for shard in (self.root / "objects").iterdir():
            if not shard.is_dir():
                continue
            for blob in shard.iterdir():
                if blob.name not in live:
                    blob.unlink()
                    dropped += 1
        return dropped

    def stats(self) -> dict:
        """Object/manifest counts and total blob bytes."""
        objects = [
            blob
            for shard in (self.root / "objects").iterdir()
            if shard.is_dir()
            for blob in shard.iterdir()
        ]
        return {
            "root": str(self.root),
            "tenants": self.tenants(),
            "objects": len(objects),
            "object_bytes": sum(blob.stat().st_size for blob in objects),
            "snapshots": {
                name: len(self.snapshots(name)) for name in self.tenants()
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore({str(self.root)!r})"
