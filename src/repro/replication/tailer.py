"""Follower-side log tailing: HTTP ship client, applier, tail thread.

Three small pieces, one per concern:

* :class:`LogShipClient` — a stdlib ``urllib`` client for the leader's
  shipping surface (``/v1/<tenant>/log``, the registry manifest/object
  routes used for bootstrap and resync, and ``/healthz`` for the
  promotion probe).
* :class:`ReplicaApplier` — turns one shipped batch into local state by
  feeding records through
  :meth:`~repro.store.wal.DurableSession.apply_replicated` in sequence
  order.  Duplicates are absorbed, out-of-order batches are sorted, and
  a genuine hole (the ``repl.ship.drop`` fault, or real packet loss)
  stops the batch early so the next poll re-fetches from the follower's
  own durable cursor — nothing damaged is ever applied.
* :class:`ReplicaTailer` — one daemon thread per tenant running the
  poll → apply loop with the shared jittered
  :class:`~repro.utils.backoff.Backoff` policy on errors, and going
  quiet (poll-interval waits) once caught up.

The follower's *cursor is its own log's last sequence number*: because
records are applied through the same write-ahead append path as leader
writes, replication progress is exactly as durable as the data itself
and needs no separate cursor file.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.parse
import urllib.request
from typing import Any

from repro.store.wal import DurableSession
from repro.utils.backoff import Backoff
from repro.utils.exceptions import StoreError


class LogShipClient:
    """Minimal JSON-over-HTTP client for a peer's replication surface."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    def _get(self, path: str) -> bytes:
        url = f"{self.base_url}{path}"
        try:
            with urllib.request.urlopen(url, timeout=self.timeout) as response:
                return response.read()
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = exc.read().decode("utf-8", "replace")[:200]
            except OSError:
                pass
            raise StoreError(
                f"leader answered {exc.code} for {url}: {detail}"
            ) from exc
        except (urllib.error.URLError, OSError, TimeoutError) as exc:
            raise StoreError(f"cannot reach leader at {url}: {exc}") from exc

    def _get_json(self, path: str) -> Any:
        payload = self._get(path)
        try:
            return json.loads(payload)
        except ValueError as exc:
            raise StoreError(
                f"leader sent unparseable JSON for {path}: {exc}"
            ) from exc

    def fetch(self, tenant: str, cursor: int, limit: int | None = None) -> dict:
        """One shipped batch of WAL records after ``cursor``."""
        query = {"cursor": int(cursor)}
        if limit is not None:
            query["max"] = int(limit)
        tenant = urllib.parse.quote(str(tenant), safe="")
        return self._get_json(
            f"/v1/{tenant}/log?{urllib.parse.urlencode(query)}"
        )

    def tenants(self) -> list[str]:
        """Tenant names the leader's store knows about."""
        doc = self._get_json("/v1/registry")
        if isinstance(doc, list):
            return [str(name) for name in doc]
        return [str(name) for name in doc.get("tenants", [])]

    def manifest(self, tenant: str) -> dict:
        """The leader's latest snapshot manifest for ``tenant``."""
        tenant = urllib.parse.quote(str(tenant), safe="")
        return self._get_json(f"/v1/registry/{tenant}/manifest")

    def object(self, tenant: str, digest: str) -> bytes:
        """One content-addressed blob (verified locally on store)."""
        tenant = urllib.parse.quote(str(tenant), safe="")
        digest = urllib.parse.quote(str(digest), safe="")
        return self._get(f"/v1/registry/{tenant}/object/{digest}")

    def healthy(self) -> bool:
        """True when the peer's ``/healthz`` answers 200."""
        try:
            self._get("/healthz")
            return True
        except StoreError:
            return False


class ReplicaApplier:
    """Apply one shipped batch to a local session, in order, exactly once."""

    def __init__(self, session: DurableSession):
        self.session = session

    def apply_batch(self, batch: dict) -> dict:
        """Feed a batch through ``apply_replicated``; stops at any hole.

        Returns ``{"applied", "duplicates", "gap", "last_seq"}``.  A gap
        is not an error: shipped records were lost in flight, and the
        caller's next poll re-fetches from the durable cursor.
        """
        records = sorted(batch.get("records", []), key=lambda r: int(r["seq"]))
        applied = duplicates = 0
        gap = False
        log = self.session.log
        for record in records:
            seq = int(record["seq"])
            last = log.last_seq
            if seq <= last:
                duplicates += 1
                continue
            if seq != last + 1:
                gap = True
                break
            self.session.apply_replicated(
                seq,
                {"insert": record.get("insert", []),
                 "delete": record.get("delete", [])},
                request_id=record.get("request_id"),
            )
            applied += 1
        return {
            "applied": applied,
            "duplicates": duplicates,
            "gap": gap,
            "last_seq": log.last_seq,
        }


class ReplicaTailer(threading.Thread):
    """One daemon thread tailing one tenant's log from the leader.

    Delegates each round to ``manager.sync_once(tenant)`` (which owns
    fencing, lag accounting, and snapshot resync) and only decides
    *pacing*: immediately re-poll while behind, sleep ``poll_interval``
    when caught up, and back off (jittered exponential, interruptible)
    on transport or apply errors.
    """

    def __init__(self, manager, tenant: str, poll_interval: float = 0.05):
        super().__init__(name=f"repl-tail-{tenant}", daemon=True)
        self.manager = manager
        self.tenant = str(tenant)
        self.poll_interval = float(poll_interval)
        self.last_error: str | None = None
        self.rounds = 0
        self.errors = 0
        self._halt = threading.Event()
        self._backoff = Backoff(initial=0.2, max_delay=5.0, jitter=0.25)

    def stop(self, timeout: float | None = 5.0) -> None:
        """Ask the loop to exit and join it."""
        self._halt.set()
        if self.is_alive():  # pragma: no branch - trivial
            self.join(timeout=timeout)

    def stopped(self) -> bool:
        return self._halt.is_set()

    def run(self) -> None:  # pragma: no cover - exercised via integration
        while not self._halt.is_set():
            try:
                caught_up = self.manager.sync_once(self.tenant)
            except Exception as exc:  # noqa: BLE001 - the loop must survive
                self.errors += 1
                self.last_error = f"{type(exc).__name__}: {exc}"
                self._halt.wait(self._backoff.next_delay())
                continue
            self.rounds += 1
            self.last_error = None
            self._backoff.reset()
            if caught_up:
                self._halt.wait(self.poll_interval)

    def status(self) -> dict:
        """Loop counters for ``/v1/replication`` and the CLI."""
        return {
            "tenant": self.tenant,
            "alive": self.is_alive(),
            "rounds": self.rounds,
            "errors": self.errors,
            "last_error": self.last_error,
        }
