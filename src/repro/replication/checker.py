"""Black-box consistency checking of replicated histories.

Huang et al. (arXiv 2301.07313) check snapshot isolation from the
outside: record the client-visible reads and writes of a black-box
store, then decide whether *some* admissible serialization explains
everything observed — no access to internals required.  This module is
that recipe specialised to the replicated explainer tier, where the
whole table behaves as **one totally ordered register**: every write
(a ``/v1/update`` delta) is assigned a WAL sequence number and bumps the
table version by exactly one, and every read observes one
``(table_version, state_token)`` pair.  General SI checking therefore
reduces to five total, cheap checks:

1. **No forks** — the ``version -> state_token`` mapping observed across
   all replicas is single-valued.  Two tokens for one version means two
   histories diverged and both got served.
2. **Writes serialize** — acknowledged writes, ordered by their WAL
   sequence numbers, carry unique seqs and strictly increasing versions:
   the log order *is* a serialization of the writes.
3. **Monotonic reads** — per (client, replica), observed versions never
   go backwards in program order.
4. **Read-your-writes** — a read pinned to ``min_state`` (a token the
   client saw earlier) observes a version at least as new as the state
   that produced the token.
5. **No lost or phantom acked writes** — every replica's converged final
   state agrees (token, version, engine digest), covers every
   acknowledged write, and no read observed a version that no
   acknowledged write (or the initial state) produced.

``check_history`` runs all five and, when they pass, returns the
explicit admissible serialization (the acked writes in WAL order with
every read assigned to the write whose post-state it observed).

:class:`HistoryRecorder` is the matching thread-safe collector the
benchmark's clients write into while the fault matrix runs.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping


class HistoryRecorder:
    """Thread-safe collector of client-visible read/write events.

    Events are plain dicts stamped with a process-wide arrival index
    ``t`` (wall clocks across threads are not trustworthy order; the
    checker only relies on ``t`` for *per-client* program order, which
    the recording client observes directly).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._events: list[dict] = []

    def _record(self, event: dict) -> dict:
        with self._lock:
            event["t"] = len(self._events)
            self._events.append(event)
        return event

    def record_write(
        self,
        client: str,
        replica: str,
        ok: bool,
        seq: int | None = None,
        version: int | None = None,
        token: str | None = None,
        request_id: str | None = None,
    ) -> dict:
        """One write attempt: acked (``ok``) writes must carry seq/version."""
        return self._record(
            {
                "op": "write",
                "client": str(client),
                "replica": str(replica),
                "ok": bool(ok),
                "seq": None if seq is None else int(seq),
                "version": None if version is None else int(version),
                "token": token,
                "request_id": request_id,
            }
        )

    def record_read(
        self,
        client: str,
        replica: str,
        ok: bool,
        version: int | None = None,
        token: str | None = None,
        min_state: str | None = None,
    ) -> dict:
        """One read attempt; ``min_state`` is the pinned token, if any."""
        return self._record(
            {
                "op": "read",
                "client": str(client),
                "replica": str(replica),
                "ok": bool(ok),
                "version": None if version is None else int(version),
                "token": token,
                "min_state": min_state,
            }
        )

    def events(self) -> list[dict]:
        """Snapshot of everything recorded, in arrival order."""
        with self._lock:
            return [dict(e) for e in self._events]


def check_history(
    events: Iterable[Mapping[str, Any]],
    finals: Mapping[str, Mapping[str, Any]] | None = None,
    initial: Mapping[str, Any] | None = None,
) -> dict:
    """Verify an admissible serialization exists for a recorded history.

    Parameters
    ----------
    events:
        Event dicts as produced by :class:`HistoryRecorder`.
    finals:
        Per-replica converged state:
        ``{replica: {"state_token", "table_version", "last_seq",
        "digest"?, "n_rows"?}}``.  Optional; enables the convergence and
        acked-write-loss checks.
    initial:
        The pre-history state ``{"version": V, "token": T}`` every
        client started from.  Reads observing it are admissible without
        a matching write.

    Returns ``{"ok", "violations", "serialization", "stats"}``;
    ``serialization`` is the acked writes in WAL order (present whether
    or not the history passed, for debugging).
    """
    events = [dict(e) for e in events]
    finals = {name: dict(state) for name, state in (finals or {}).items()}
    violations: list[str] = []

    # -- 1. version -> token is single-valued (fork detection) -------------
    token_of: dict[int, str] = {}
    observations: list[tuple[int, str, str]] = []
    if initial and initial.get("version") is not None and initial.get("token"):
        observations.append(
            (int(initial["version"]), str(initial["token"]), "initial state")
        )
    for event in events:
        if event.get("ok") and event.get("version") is not None and event.get("token"):
            observations.append(
                (
                    int(event["version"]),
                    str(event["token"]),
                    f"{event['op']} by {event.get('client')} on "
                    f"{event.get('replica')}",
                )
            )
    for name, state in finals.items():
        if state.get("table_version") is not None and state.get("state_token"):
            observations.append(
                (
                    int(state["table_version"]),
                    str(state["state_token"]),
                    f"final state of replica {name}",
                )
            )
    for version, token, source in observations:
        known = token_of.get(version)
        if known is None:
            token_of[version] = token
        elif known != token:
            violations.append(
                f"fork: version {version} observed with two state tokens "
                f"({known} vs {token}, latter from {source})"
            )

    # -- 2. acked writes serialize by WAL sequence -------------------------
    acked = [e for e in events if e["op"] == "write" and e.get("ok")]
    missing = [e for e in acked if e.get("seq") is None or e.get("version") is None]
    for event in missing:
        violations.append(
            f"acked write by {event.get('client')} carries no seq/version; "
            "the history is not checkable"
        )
    acked = sorted(
        (e for e in acked if e not in missing), key=lambda e: int(e["seq"])
    )
    seen_seqs: set[int] = set()
    previous = None
    for event in acked:
        seq, version = int(event["seq"]), int(event["version"])
        if seq in seen_seqs:
            violations.append(
                f"two acknowledged writes share WAL seq {seq}: the leader "
                "double-assigned a sequence number"
            )
        seen_seqs.add(seq)
        if previous is not None and version <= int(previous["version"]):
            violations.append(
                f"write at seq {seq} has version {version} <= version "
                f"{previous['version']} of earlier seq {previous['seq']}: "
                "log order and version order disagree"
            )
        previous = event

    # -- 3. monotonic reads per (client, replica) --------------------------
    last_version: dict[tuple[str, str], int] = {}
    for event in sorted(events, key=lambda e: e.get("t", 0)):
        if event["op"] != "read" or not event.get("ok"):
            continue
        if event.get("version") is None:
            continue
        key = (str(event.get("client")), str(event.get("replica")))
        version = int(event["version"])
        floor = last_version.get(key)
        if floor is not None and version < floor:
            violations.append(
                f"non-monotonic reads: client {key[0]} on replica {key[1]} "
                f"observed version {version} after version {floor}"
            )
        last_version[key] = max(floor or 0, version)

    # -- 4. read-your-writes for pinned reads ------------------------------
    version_of_token = {token: version for version, token in token_of.items()}
    unpinnable = 0
    for event in events:
        if event["op"] != "read" or not event.get("ok"):
            continue
        pinned = event.get("min_state")
        if not pinned or event.get("version") is None:
            continue
        floor = version_of_token.get(str(pinned))
        if floor is None:
            unpinnable += 1  # token never observed with a version: untestable
            continue
        if int(event["version"]) < floor:
            violations.append(
                f"stale pinned read: client {event.get('client')} pinned "
                f"min_state {pinned} (version {floor}) but replica "
                f"{event.get('replica')} served version {event['version']}"
            )

    # -- 5. convergence and zero acked-write loss --------------------------
    max_acked_seq = max((int(e["seq"]) for e in acked), default=0)
    max_acked_version = max((int(e["version"]) for e in acked), default=None)
    if finals:
        reference_name = sorted(finals)[0]
        reference = finals[reference_name]
        for name in sorted(finals)[1:]:
            state = finals[name]
            for field in ("state_token", "table_version", "digest", "n_rows"):
                if field in reference and field in state and (
                    reference[field] != state[field]
                ):
                    violations.append(
                        f"diverged finals: replica {name} has {field}="
                        f"{state[field]!r} but {reference_name} has "
                        f"{reference[field]!r}"
                    )
        for name, state in sorted(finals.items()):
            if state.get("last_seq") is not None and (
                int(state["last_seq"]) < max_acked_seq
            ):
                violations.append(
                    f"lost acked write: replica {name} converged at seq "
                    f"{state['last_seq']} < acked seq {max_acked_seq}"
                )
            if (
                max_acked_version is not None
                and state.get("table_version") is not None
                and int(state["table_version"]) < max_acked_version
            ):
                violations.append(
                    f"lost acked write: replica {name} converged at version "
                    f"{state['table_version']} < acked version "
                    f"{max_acked_version}"
                )

    # -- the serialization itself ------------------------------------------
    admissible_versions = {int(e["version"]) for e in acked}
    if initial and initial.get("version") is not None:
        admissible_versions.add(int(initial["version"]))
    reads_at: dict[int, int] = {}
    for event in events:
        if event["op"] != "read" or not event.get("ok"):
            continue
        if event.get("version") is None:
            continue
        version = int(event["version"])
        if version not in admissible_versions:
            violations.append(
                f"phantom read: replica {event.get('replica')} served "
                f"version {version}, which no acknowledged write (or the "
                "initial state) produced"
            )
            continue
        reads_at[version] = reads_at.get(version, 0) + 1
    serialization = [
        {
            "seq": int(e["seq"]),
            "version": int(e["version"]),
            "client": e.get("client"),
            "reads_observing": reads_at.get(int(e["version"]), 0),
        }
        for e in acked
    ]

    return {
        "ok": not violations,
        "violations": violations,
        "serialization": serialization,
        "stats": {
            "events": len(events),
            "acked_writes": len(acked),
            "reads": sum(1 for e in events if e["op"] == "read"),
            "ok_reads": sum(
                1 for e in events if e["op"] == "read" and e.get("ok")
            ),
            "replicas": sorted(
                {str(e.get("replica")) for e in events} | set(finals)
            ),
            "unpinnable_reads": unpinnable,
            "max_acked_seq": max_acked_seq,
        },
    }
