"""Replicated serving tier: WAL shipping, promotion, consistency checking.

One process is the *leader*: it serves writes and appends to each
tenant's :class:`~repro.store.wal.DeltaLog` exactly as before.  Any
number of *followers* bootstrap from the leader's snapshots, tail the
fsync'd seq+crc log over ``GET /v1/<tenant>/log?cursor=``, apply shipped
records through the same ``apply_delta`` maintenance path, and answer
read-only traffic with replica-lag metrics and read-your-writes via the
table-state hash-chain token (``X-Repro-Min-State``).

Failover is epoch-fenced: a monotonic leader epoch (persisted per store
by :class:`EpochStore`) is stamped into every shipped batch, and a
follower refuses batches from any epoch below the highest it has seen —
a deposed leader's unreplicated tail can never be applied after a
promotion.  :func:`check_history` is the black-box consistency checker
(in the spirit of Huang et al., arXiv 2301.07313): it looks only at
client-visible reads and writes recorded across replicas and verifies an
admissible serialization exists.
"""

from repro.replication.checker import HistoryRecorder, check_history
from repro.replication.epoch import EpochStore
from repro.replication.manager import FencedError, ReplicationManager
from repro.replication.ship import build_batch
from repro.replication.tailer import LogShipClient, ReplicaApplier, ReplicaTailer

__all__ = [
    "EpochStore",
    "FencedError",
    "HistoryRecorder",
    "LogShipClient",
    "ReplicaApplier",
    "ReplicaTailer",
    "ReplicationManager",
    "build_batch",
    "check_history",
]
