"""Build log-shipping batches on the serving side of replication.

``GET /v1/<tenant>/log?cursor=N`` answers with one :func:`build_batch`
document: the WAL records after ``N`` (bounded by ``max``), the leader's
current epoch, and enough log geometry (``first_live_seq``,
``cursor_valid``, ``last_seq``) for the follower to distinguish "caught
up" from "my cursor points into compacted history — resync from a
snapshot".

The ``repl.ship.{drop,dup,reorder}`` fault points model *network* damage
to the shipped view — records lost, redelivered, or reordered in flight.
They mutate only the outgoing batch, never the log, and they are
deterministic given the plan seed (no extra randomness: drop loses the
batch head so the gap detector must fire, dup redelivers the head at the
tail, reorder reverses the batch).  The follower-side applier must
absorb all three without ever applying out of order.
"""

from __future__ import annotations

from typing import Any

import repro.faults as _faults
from repro.service.session import jsonable
from repro.store.wal import DurableSession
from repro.utils.exceptions import StoreError

#: default and hard ceiling on records per shipped batch
DEFAULT_BATCH_LIMIT = 256
MAX_BATCH_LIMIT = 4096


def build_batch(
    session: DurableSession,
    cursor: int,
    limit: int = DEFAULT_BATCH_LIMIT,
    epoch: int = 0,
    tenant: str | None = None,
) -> dict[str, Any]:
    """One shippable batch of WAL records after ``cursor``.

    ``cursor_valid: false`` means compaction already dropped records the
    cursor never saw; ``records`` is then empty and the follower must
    restore from the latest snapshot instead of replaying.
    """
    if not isinstance(session, DurableSession):
        raise StoreError(
            "log shipping requires a durable (write-ahead logged) session"
        )
    cursor = int(cursor)
    if cursor < 0:
        raise ValueError(f"cursor must be >= 0, got {cursor}")
    limit = max(1, min(int(limit), MAX_BATCH_LIMIT))
    log = session.log
    valid = log.cursor_valid(cursor)
    records: list[dict[str, Any]] = []
    if valid:
        for seq, delta, request_id in log.replay_annotated(after=cursor)[:limit]:
            record = {
                "seq": int(seq),
                "insert": jsonable([dict(row) for row in delta.insert]),
                "delete": [int(index) for index in delta.delete],
            }
            if request_id is not None:
                record["request_id"] = request_id
            records.append(record)
    if records:
        if _faults.fires("repl.ship.drop"):
            # lose the head in flight: the follower must detect the gap
            # and re-poll rather than apply a hole into its log
            records = records[1:]
        if len(records) > 1 and _faults.fires("repl.ship.dup"):
            records = records + records[:1]
        if len(records) > 1 and _faults.fires("repl.ship.reorder"):
            records = list(reversed(records))
    return {
        "tenant": tenant if tenant is not None else session.tenant,
        "epoch": int(epoch),
        "cursor": cursor,
        "cursor_valid": valid,
        "first_live_seq": int(log.first_live_seq),
        "last_seq": int(log.last_seq),
        "records": records,
        "state_token": session.state_token,
        "table_version": int(session.table_version),
    }
