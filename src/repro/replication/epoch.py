"""Durable monotonic leader epochs: the fencing token of failover.

Every store carries one epoch document at
``<root>/replication/epoch.json`` holding two counters:

* ``epoch`` — the epoch this node last *led* (0 when it never led),
* ``max_seen`` — the highest epoch this node has ever observed in a
  shipped batch (its fencing floor).

Promotion advances to ``max(epoch, max_seen) + 1`` and persists before
the node starts acting as leader, so epochs are strictly monotone across
any sequence of failovers that shares batch traffic.  A deposed leader
restarting with its stale epoch is *fenced*: followers that saw the new
leader's higher epoch refuse its batches, so its unreplicated tail can
never be applied after the cluster moved on (it is replayed explicitly
during promotion catch-up instead — see
:meth:`ReplicationManager.promote`).

Both counters go through :func:`~repro.store.artifacts.atomic_write`
(temp file + fsync + rename), so a crash mid-promotion leaves the old
document intact: the node simply never became leader.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import repro.faults as _faults
from repro.store.artifacts import atomic_write
from repro.utils.exceptions import StoreError


class EpochStore:
    """Persisted ``(epoch, max_seen)`` pair for one store root."""

    def __init__(self, root: str | Path):
        self.path = Path(root) / "replication" / "epoch.json"
        self._lock = threading.Lock()
        self._epoch = 0
        self._max_seen = 0
        self._history: list[dict] = []
        if self.path.exists():
            try:
                doc = json.loads(self.path.read_text())
            except (OSError, ValueError) as exc:
                raise StoreError(
                    f"corrupt epoch document at {self.path}: {exc}"
                ) from exc
            self._epoch = int(doc.get("epoch", 0))
            self._max_seen = int(doc.get("max_seen", 0))
            self._history = list(doc.get("history", []))

    # -- views -------------------------------------------------------------

    def current(self) -> int:
        """The epoch this node last led (0: never led)."""
        with self._lock:
            return self._epoch

    def max_seen(self) -> int:
        """Highest epoch ever observed — the fencing floor."""
        with self._lock:
            return max(self._epoch, self._max_seen)

    def history(self) -> list[dict]:
        """Recorded promotions, oldest first."""
        with self._lock:
            return list(self._history)

    # -- transitions -------------------------------------------------------

    def _persist_locked(self) -> None:
        payload = {
            "epoch": self._epoch,
            "max_seen": self._max_seen,
            "history": self._history[-32:],
        }
        try:
            atomic_write(
                self.path,
                json.dumps(payload, indent=2, sort_keys=True).encode("utf-8"),
            )
        except OSError as exc:
            raise StoreError(
                f"cannot persist epoch document {self.path}: {exc}"
            ) from exc

    def note_seen(self, epoch: int) -> bool:
        """Record an observed batch epoch; False when it is fenced.

        An epoch below the floor is *stale* — the batch comes from a
        deposed leader and must be refused.  An epoch above the floor
        raises the floor durably before returning, so fencing decisions
        survive a follower restart.
        """
        epoch = int(epoch)
        with self._lock:
            floor = max(self._epoch, self._max_seen)
            if epoch < floor:
                return False
            if epoch > self._max_seen:
                self._max_seen = epoch
                self._persist_locked()
            return True

    def advance(self, reason: str = "") -> int:
        """Claim the next epoch (promotion); persisted before returning.

        The ``repl.promote`` fault point fires *before* anything is
        written, modelling a crash at the moment of promotion: the store
        keeps its old epoch and the node never becomes leader.
        """
        with self._lock:
            _faults.inject(
                "repl.promote",
                lambda: StoreError(
                    "injected promotion failure before the epoch advanced"
                ),
            )
            self._epoch = max(self._epoch, self._max_seen) + 1
            self._max_seen = self._epoch
            self._history.append({"epoch": self._epoch, "reason": str(reason)})
            self._persist_locked()
            return self._epoch
