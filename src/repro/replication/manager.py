"""Replication control plane: roles, bootstrap, fencing, promotion.

One :class:`ReplicationManager` rides along with every server process:

* as **leader** it is passive — it only lends its store's durable epoch
  to outgoing batches (:meth:`shipping_epoch`), so a re-elected former
  follower ships with the epoch that fences its predecessor.
* as **follower** it bootstraps every tenant from the leader's snapshots
  (manifest + content-addressed blobs over HTTP), runs one
  :class:`~repro.replication.tailer.ReplicaTailer` per tenant, applies
  shipped records through the WAL maintenance path, tracks replica lag,
  and — when ``auto_promote`` is set — probes the leader's ``/healthz``
  and promotes itself after ``health_failures`` consecutive misses.

Fencing happens at ingest: every batch's epoch goes through
:meth:`EpochStore.note_seen`, which durably ratchets the fencing floor
and refuses anything below it (:class:`FencedError`).  A deposed leader
that comes back and keeps shipping its stale tail is therefore ignored
by every follower that has seen the new leader's epoch.

Promotion (:meth:`promote`) stops tailing, optionally replays the dead
leader's on-disk WAL tails (``catchup_store``) through the replicated
apply path — the zero-acked-write-loss step when the old leader's disk
survived — then durably advances the epoch and flips the role.  All
crash points sit *before* the epoch advance, so a failed promotion
leaves a follower, never a half-leader.
"""

from __future__ import annotations

import threading
from pathlib import Path

from repro.obs import metrics as _obs
from repro.replication.epoch import EpochStore
from repro.replication.tailer import LogShipClient, ReplicaApplier, ReplicaTailer
from repro.store.wal import DeltaLog
from repro.utils.exceptions import StoreError

_REPL_APPLIED = _obs.get_registry().counter(
    "repro_replication_applied_total",
    "WAL records applied from shipped batches on this replica.",
)
_REPL_RESYNCS = _obs.get_registry().counter(
    "repro_replication_resyncs_total",
    "Snapshot resyncs forced by compaction gaps in the shipped log.",
)
_REPL_FENCED = _obs.get_registry().counter(
    "repro_replication_fenced_batches_total",
    "Shipped batches refused because their leader epoch was stale.",
)
_REPL_PROMOTIONS = _obs.get_registry().counter(
    "repro_replication_promotions_total",
    "Follower promotions completed by this process.",
)

#: blob roles every snapshot manifest ships (see snapshot_session)
_SNAPSHOT_BLOBS = ("model", "table", "positive", "engine")


class FencedError(StoreError):
    """A shipped batch carried an epoch below this node's fencing floor."""


class ReplicationManager:
    """Role, tailers and failover for one server process.

    Parameters
    ----------
    registry:
        The process's :class:`~repro.store.registry.Registry`; replicas
        apply shipped records into its sessions, leaders only lend it
        their epoch.
    role:
        ``"leader"`` (default) or ``"follower"``.
    leader_url:
        Base URL of the current leader (required for followers).
    poll_interval:
        Seconds a caught-up tailer sleeps between polls.
    batch_limit:
        Records requested per shipped batch.
    auto_promote:
        Follower promotes itself after ``health_failures`` consecutive
        failed leader health probes.
    health_interval / health_failures:
        Probe cadence and the consecutive-miss threshold.
    """

    def __init__(
        self,
        registry,
        role: str = "leader",
        leader_url: str | None = None,
        poll_interval: float = 0.05,
        batch_limit: int | None = None,
        auto_promote: bool = False,
        health_interval: float = 1.0,
        health_failures: int = 3,
        client: LogShipClient | None = None,
    ):
        if role not in ("leader", "follower"):
            raise ValueError(f"role must be 'leader' or 'follower', got {role!r}")
        if role == "follower" and not (leader_url or client):
            raise ValueError("a follower needs the leader's URL")
        self.registry = registry
        self.role = role
        self.leader_url = leader_url
        self.poll_interval = float(poll_interval)
        self.batch_limit = batch_limit
        self.auto_promote = bool(auto_promote)
        self.health_interval = float(health_interval)
        self.health_failures = max(1, int(health_failures))
        self.epochs = EpochStore(registry.store.root)
        self.client = client or (LogShipClient(leader_url) if leader_url else None)
        self._lock = threading.RLock()
        self._tailers: dict[str, ReplicaTailer] = {}
        self._lag: dict[str, int] = {}
        self._probe: threading.Thread | None = None
        self._probe_stop = threading.Event()
        self.probe_failures = 0
        self.last_promotion_error: str | None = None

    # -- views -------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.role == "leader"

    def shipping_epoch(self) -> int:
        """Epoch stamped into outgoing batches (the durable fencing floor)."""
        return self.epochs.max_seen()

    def lag(self, tenant: str | None = None):
        """Records behind the leader, per tenant or for one tenant."""
        with self._lock:
            if tenant is not None:
                return self._lag.get(str(tenant), 0)
            return dict(self._lag)

    def status(self) -> dict:
        """One self-describing document for ``/v1/replication`` and the CLI."""
        with self._lock:
            tailers = {name: t.status() for name, t in self._tailers.items()}
            lag = dict(self._lag)
        return {
            "role": self.role,
            "leader_url": self.leader_url,
            "auto_promote": self.auto_promote,
            "epoch": {
                "current": self.epochs.current(),
                "max_seen": self.epochs.max_seen(),
                "history": self.epochs.history()[-8:],
            },
            "lag_records": lag,
            "tailers": tailers,
            "probe_failures": self.probe_failures,
            "last_promotion_error": self.last_promotion_error,
        }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bring the role up: followers bootstrap, tail, and maybe probe."""
        if self.role != "follower":
            return
        for tenant in self.client.tenants():
            try:
                self.bootstrap(tenant)
            except StoreError:
                pass  # the tenant's tailer keeps retrying with backoff
            self.ensure_tailer(tenant)
        if self.auto_promote:
            self._start_probe()

    def ensure_tailer(self, tenant: str) -> ReplicaTailer:
        """The running tailer for ``tenant``, starting one if needed."""
        tenant = str(tenant)
        with self._lock:
            tailer = self._tailers.get(tenant)
            if tailer is None or not tailer.is_alive():
                tailer = ReplicaTailer(self, tenant, poll_interval=self.poll_interval)
                self._tailers[tenant] = tailer
                tailer.start()
            return tailer

    def stop(self) -> None:
        """Stop the probe and every tailer (state stays on disk)."""
        self._probe_stop.set()
        probe, self._probe = self._probe, None
        if probe is not None and probe.is_alive():
            probe.join(timeout=5.0)
        with self._lock:
            tailers = list(self._tailers.values())
            self._tailers.clear()
        for tailer in tailers:
            tailer.stop()

    close = stop

    # -- snapshot transfer (bootstrap and resync) ---------------------------

    def _fetch_snapshot(self, tenant: str) -> dict:
        """Pull the leader's latest manifest + blobs into the local store.

        Content addressing makes the transfer self-verifying: a blob
        whose bytes do not hash to the digest the manifest names would
        land at a *different* address, so the check below catches any
        in-flight corruption before a manifest ever points at it.
        """
        manifest = self.client.manifest(tenant)
        store = self.registry.store
        for role in _SNAPSHOT_BLOBS:
            digest = manifest["blobs"][role]
            if store.has(digest):
                continue
            stored = store.put_bytes(self.client.object(tenant, digest))
            if stored != digest:
                raise StoreError(
                    f"shipped {role} blob for tenant {tenant!r} hashes to "
                    f"{stored} but the manifest names {digest}: refusing "
                    "corrupt snapshot transfer"
                )
        local = dict(manifest)
        local.pop("snapshot_id", None)
        store.write_manifest(tenant, local)
        return manifest

    def bootstrap(self, tenant: str):
        """Make ``tenant`` serveable locally from the leader's snapshot.

        Skips the transfer when the local store already has a manifest at
        least as new (by WAL seq) — shipped records cover the rest.
        """
        tenant = str(tenant)
        store = self.registry.store
        if tenant in store.tenants():
            local_seq = int(store.manifest(tenant)["wal_seq"])
            local_log = DeltaLog(store.wal_path(tenant))
            if max(local_seq, local_log.last_seq) >= int(
                self.client.manifest(tenant)["wal_seq"]
            ):
                return self.registry.get(tenant)
        self._fetch_snapshot(tenant)
        return self.registry.get(tenant)

    def resync(self, tenant: str):
        """Recover from a compaction gap: drop local state, re-snapshot.

        The shipped cursor pointed into history the leader already
        compacted away; replaying is impossible, so the replica falls
        back to the latest snapshot (whose manifest anchors the WAL
        floor) and resumes tailing from there.
        """
        tenant = str(tenant)
        _REPL_RESYNCS.inc()
        self.registry.evict(tenant)
        manifest = self._fetch_snapshot(tenant)
        session = self.registry.get(tenant)
        # drop the stale local tail below the new floor so the next
        # cursor starts at the snapshot, not inside compacted history
        session.log.truncate_through(int(manifest["wal_seq"]))
        return session

    # -- the per-round sync the tailer drives --------------------------------

    def sync_once(self, tenant: str) -> bool:
        """One poll-and-apply round; True when caught up with the leader."""
        tenant = str(tenant)
        if tenant not in self.registry.store.tenants():
            self.bootstrap(tenant)
        session = self.registry.get(tenant)
        batch = self.client.fetch(
            tenant, session.log.last_seq, limit=self.batch_limit
        )
        epoch = int(batch.get("epoch", 0))
        if not self.epochs.note_seen(epoch):
            _REPL_FENCED.inc()
            raise FencedError(
                f"batch for tenant {tenant!r} ships epoch {epoch} below "
                f"fencing floor {self.epochs.max_seen()}: refusing records "
                "from a deposed leader"
            )
        if not batch.get("cursor_valid", True):
            session = self.resync(tenant)
            batch = {"last_seq": batch.get("last_seq", session.log.last_seq)}
            result = {"applied": 0, "gap": False}
        else:
            result = self.ingest_batch(tenant, batch, session=session)
        lag = max(0, int(batch.get("last_seq", 0)) - session.log.last_seq)
        with self._lock:
            self._lag[tenant] = lag
        _obs.get_registry().gauge(
            "repro_replication_lag_records",
            "Records this replica trails the leader by.",
            labels={"tenant": tenant},
        ).set(lag)
        return lag == 0 and not result["gap"]

    def ingest_batch(self, tenant: str, batch: dict, session=None) -> dict:
        """Fence-check and apply one shipped batch (the testable core)."""
        if session is None:
            session = self.registry.get(tenant)
        epoch = int(batch.get("epoch", 0))
        if not self.epochs.note_seen(epoch):
            _REPL_FENCED.inc()
            raise FencedError(
                f"batch for tenant {tenant!r} ships epoch {epoch} below "
                f"fencing floor {self.epochs.max_seen()}: refusing records "
                "from a deposed leader"
            )
        result = ReplicaApplier(session).apply_batch(batch)
        if result["applied"]:
            _REPL_APPLIED.inc(result["applied"])
        return result

    # -- failover ------------------------------------------------------------

    def retarget(self, leader_url: str) -> None:
        """Point the tailers at a new leader (after someone else promoted)."""
        with self._lock:
            self.leader_url = str(leader_url)
            self.client = LogShipClient(self.leader_url)
            self.probe_failures = 0

    def promote(self, catchup_store: str | None = None, reason: str = "") -> dict:
        """Become leader: stop tailing, catch up, fence, flip the role.

        ``catchup_store`` is the dead leader's store root; when its disk
        survived, every durably logged record past this replica's cursor
        is replayed through the replicated-apply path *before* the epoch
        advances — that is the zero-acked-write-loss guarantee for
        fail-stop leaders.  The epoch advance itself is the commit point
        (and the ``repl.promote`` crash site): a promotion that fails
        leaves this node a follower with its old epoch.
        """
        # Never hold _lock while joining tailers: a tailer mid-round
        # takes _lock to record lag, and joining it here would deadlock.
        with self._lock:
            if self.role == "leader":
                return {"role": "leader", "epoch": self.epochs.current(),
                        "already_leader": True, "caught_up": {}}
            self._probe_stop.set()
            tailers = list(self._tailers.values())
            self._tailers.clear()
        for tailer in tailers:
            tailer.stop()
        caught_up: dict[str, int] = {}
        if catchup_store:
            caught_up = self._catch_up_from(Path(catchup_store))
        epoch = self.epochs.advance(
            reason or "explicit promotion"
        )  # raises on injected repl.promote: still a follower
        with self._lock:
            self.role = "leader"
            self.auto_promote = False
        _REPL_PROMOTIONS.inc()
        return {"role": "leader", "epoch": epoch, "caught_up": caught_up}

    def _catch_up_from(self, dead_root: Path) -> dict[str, int]:
        """Replay the dead leader's WAL tails into this replica.

        Only reads ``<dead_root>/wal/<tenant>.jsonl`` — never writes into
        the dead store.  Records at or below our cursor are duplicates
        (already shipped); a sequence hole means the dead log itself was
        compacted past us mid-failover, which the next checkpoint of our
        own log makes irrelevant.
        """
        caught_up: dict[str, int] = {}
        for tenant in self.registry.store.tenants():
            dead_wal = dead_root / "wal" / f"{tenant}.jsonl"
            if not dead_wal.exists():
                continue
            session = self.registry.get(tenant)
            applied = 0
            for seq, delta, request_id in DeltaLog(dead_wal).replay_annotated(
                after=session.log.last_seq
            ):
                if seq != session.log.last_seq + 1:
                    break  # hole: the dead log was compacted past us
                session.apply_replicated(seq, delta, request_id=request_id)
                applied += 1
            caught_up[tenant] = applied
        return caught_up

    # -- leader health probe -------------------------------------------------

    def _start_probe(self) -> None:
        self._probe_stop.clear()
        self._probe = threading.Thread(
            target=self._probe_loop, name="repl-probe", daemon=True
        )
        self._probe.start()

    def _probe_loop(self) -> None:  # pragma: no cover - integration-tested
        while not self._probe_stop.wait(self.health_interval):
            if self.role != "follower":
                return
            if self.client.healthy():
                self.probe_failures = 0
                continue
            self.probe_failures += 1
            if self.probe_failures < self.health_failures:
                continue
            try:
                self.promote(
                    reason=(
                        f"auto: leader failed {self.probe_failures} "
                        "consecutive health checks"
                    )
                )
            except StoreError as exc:
                self.last_promotion_error = str(exc)
                self.probe_failures = 0  # re-arm instead of promote-looping
                continue
            return
