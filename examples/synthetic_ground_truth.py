"""Validating LEWIS against ground truth on German-syn (Figure 11).

Because German-syn comes from a known structural causal model, Pearl's
three-step procedure gives exact counterfactual scores.  This example

* trains the paper's non-linear random-forest *regressor* black box on
  the continuous credit score,
* compares LEWIS's estimated global scores against ground truth for each
  attribute (Figure 11a) — including ``age`` and ``sex``, which influence
  the score only *indirectly* through savings and status,
* shows the sample-size convergence of the NESUF estimate for ``status``
  (Figure 11b).

Run:  python examples/synthetic_ground_truth.py
"""

from repro import GroundTruthScores, Lewis, fit_table_model, load_dataset, train_test_split


def main() -> None:
    bundle = load_dataset("german_syn", n_rows=10_000, seed=0)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
    model = fit_table_model(
        "random_forest_regressor", train, bundle.feature_names, bundle.label, seed=0
    )

    lewis = Lewis(model, data=test, graph=bundle.graph, threshold=0.5)
    truth = GroundTruthScores(
        bundle.scm,
        predict=lambda t: model.predict_value(t.select(bundle.feature_names)),
        positive=lambda score: score >= 0.5,
        n_samples=40_000,
        seed=7,
    )

    print("attribute        LEWIS-NESUF   truth-NESUF")
    for attribute in bundle.feature_names:
        col = lewis.data.column(attribute)
        hi, lo = col.cardinality - 1, 0
        est = lewis.estimator.necessity_sufficiency({attribute: hi}, {attribute: lo})
        exact = truth.necessity_sufficiency(attribute, hi, lo)
        print(f"  {attribute:12s}   {est:10.3f}   {exact:10.3f}")

    print("\nSample-size convergence of NESUF(status) vs ground truth:")
    col = bundle.table.column("status")
    hi, lo = col.cardinality - 1, 0
    exact = truth.necessity_sufficiency("status", hi, lo)
    for n in (1_000, 5_000, 10_000, 50_000):
        sample = load_dataset("german_syn", n_rows=n, seed=1)
        lew_n = Lewis(model, data=sample.table, graph=sample.graph, threshold=0.5)
        est = lew_n.estimator.necessity_sufficiency({"status": hi}, {"status": lo})
        print(f"  n={n:6d}  estimate={est:.3f}  truth={exact:.3f}  |err|={abs(est-exact):.3f}")


if __name__ == "__main__":
    main()
