"""Fairness audit of the COMPAS "software score" (Figures 3c, 4c, 4d).

LEWIS explains the COMPAS risk software directly (not a trained
classifier): the favourable decision is a low risk score.  The audit

* ranks attributes globally — prior crimes dominate, matching the
  ProPublica analysis,
* computes contextual explanations of prior-count and juvenile-crime
  interventions separately for Black and White defendants, exposing the
  score's racial bias: the same increase in criminal history is more
  detrimental for Black defendants,
* checks counterfactual fairness through the sensitive attribute's own
  scores (non-zero necessity/sufficiency for race = individual-level
  discrimination, Section 6).

Run:  python examples/fairness_audit_compas.py
"""

from repro import Lewis, load_dataset
from repro.data.compas import compas_software_positive


def main() -> None:
    bundle = load_dataset("compas", n_rows=5_200, seed=0)
    features = bundle.table.select(bundle.feature_names)

    # The black box is the software itself: a callable, no training step.
    lewis = Lewis(
        compas_software_positive,
        data=features,
        feature_names=bundle.feature_names,
        graph=bundle.graph,
    )
    print(f"share of low-risk (favourable) scores: {lewis.positive_rate:.2%}")

    print("\n== Global explanation of the software score ==")
    global_exp = lewis.explain_global()
    for row in global_exp.as_rows():
        print(
            f"  {row['attribute']:14s} NEC={row['necessity']:.2f} "
            f"SUF={row['sufficiency']:.2f} NESUF={row['necessity_sufficiency']:.2f}"
        )

    print("\n== Contextual: effect of priors_count by race (Figure 4c) ==")
    for race in ("White", "Black"):
        exp = lewis.explain_context({"race": race}, attributes=["priors_count"])
        s = exp.score_of("priors_count")
        print(
            f"  {race:6s} NEC={s.necessity:.2f} SUF={s.sufficiency:.2f} "
            f"NESUF={s.necessity_sufficiency:.2f}"
        )

    print("\n== Contextual: effect of juv_fel_count by race (Figure 4d) ==")
    for race in ("White", "Black"):
        exp = lewis.explain_context({"race": race}, attributes=["juv_fel_count"])
        s = exp.score_of("juv_fel_count")
        print(
            f"  {race:6s} NEC={s.necessity:.2f} SUF={s.sufficiency:.2f} "
            f"NESUF={s.necessity_sufficiency:.2f}"
        )

    print("\n== Counterfactual fairness audit (Section 6) ==")
    from repro import FairnessAuditor

    auditor = FairnessAuditor(lewis)
    for verdict in auditor.audit_all(["race", "sex"]):
        print(" ", verdict.summary())
    gap = auditor.contextual_disparity(
        "priors_count", {"race": "Black"}, {"race": "White"}
    )
    print(
        f"  contextual gap (priors, Black - White): "
        f"NEC {gap.necessity_gap:+.2f}, SUF {gap.sufficiency_gap:+.2f}"
    )


if __name__ == "__main__":
    main()
