"""Loan recourse walk-through: the "Maeve and Irrfan" scenario of Figure 1.

Reproduces the paper's opening example end to end:

* a rejected applicant (Maeve) receives a sufficiency-ranked local
  explanation plus a minimal-cost actionable recourse,
* an approved applicant (Irrfan) receives a necessity-ranked explanation
  ("a decline in credit history is most likely to flip the decision"),
* LEWIS's recourse is compared against the LinearIP baseline across
  success thresholds, including the high-threshold regime where LinearIP
  fails to return a solution.

Run:  python examples/loan_recourse_german.py
"""

import numpy as np

from repro import Lewis, fit_table_model, load_dataset, train_test_split
from repro.utils.exceptions import RecourseInfeasibleError
from repro.xai import LinearIPRecourse


def main() -> None:
    bundle = load_dataset("german", n_rows=1_000, seed=0)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
    model = fit_table_model(
        "random_forest", train, bundle.feature_names, bundle.label, seed=0
    )
    lewis = Lewis(
        model, data=test, graph=bundle.graph, positive_outcome=bundle.positive_label
    )

    # -- Maeve: rejected, wants recourse -----------------------------------
    # Pick a borderline rejection (highest positive probability among
    # negatives) so both recourse methods have something to work with.
    negatives = lewis.negative_indices()
    proba = model.predict_proba(lewis.data.select(bundle.feature_names))[:, 1]
    maeve = int(negatives[np.argmax(proba[negatives])])
    print(f"Maeve (row {maeve}):", lewis.data.row(maeve))
    local = lewis.explain_local(index=maeve)
    print("\nSufficiency-style statements for Maeve:")
    for s in local.statements(top=3):
        print(" ", s)

    print("\nRecommended recourse (alpha = 0.8):")
    recourse = lewis.recourse(maeve, actionable=bundle.actionable, alpha=0.8)
    for line in recourse.statements():
        print(" ", line)

    # -- Irrfan: approved, wants to know what to protect ---------------------
    irrfan = int(lewis.positive_indices()[0])
    print(f"\nIrrfan (row {irrfan}):", lewis.data.row(irrfan))
    local_pos = lewis.explain_local(index=irrfan)
    print("Necessity-style statements for Irrfan:")
    for s in local_pos.statements(top=3):
        print(" ", s)

    # -- LEWIS vs LinearIP across thresholds ---------------------------------
    print("\nLEWIS vs LinearIP recourse across success thresholds:")
    features = lewis.data
    linear_ip = LinearIPRecourse(features, lewis.positive, bundle.actionable)
    for threshold in (0.5, 0.7, 0.8, 0.9, 0.95):
        try:
            lew = lewis.recourse(maeve, actionable=bundle.actionable, alpha=threshold)
            lewis_out = f"cost={lew.total_cost:.0f} ({len(lew.actions)} actions)"
        except RecourseInfeasibleError:
            lewis_out = "infeasible"
        try:
            lin = linear_ip.solve(features.row_codes(maeve), threshold)
            linear_out = f"cost={lin.total_cost:.0f} ({len(lin.actions)} actions)"
        except RecourseInfeasibleError:
            linear_out = "no solution"
        print(f"  alpha={threshold:.2f}  LEWIS: {lewis_out:28s} LinearIP: {linear_out}")


if __name__ == "__main__":
    main()
