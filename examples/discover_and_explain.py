"""No background knowledge? Learn the diagram, then explain.

Section 6 of the paper notes the causal diagram "can be learned from
data". This example runs the constraint-based PC algorithm on German-syn,
compares the learned structure with the generating truth, and shows that
LEWIS's scores computed with the *discovered* diagram match the scores
computed with the true one.

Run:  python examples/discover_and_explain.py
"""

from repro import (
    GroundTruthScores,
    Lewis,
    PCAlgorithm,
    fit_table_model,
    load_dataset,
    train_test_split,
)
from repro.causal.discovery import structural_hamming_distance


def main() -> None:
    bundle = load_dataset("german_syn", n_rows=10_000, seed=0)
    features = bundle.table.select(bundle.feature_names)

    print("Learning the causal diagram with PC (G-square CI tests)...")
    learned = PCAlgorithm(alpha=0.01, max_condition_size=2).fit_diagram(
        features, order=bundle.feature_names
    )
    print("  learned edges:", sorted(learned.edges))
    print("  true edges:   ", sorted(bundle.graph.edges))
    print(
        "  structural Hamming distance:",
        structural_hamming_distance(learned, bundle.graph),
    )

    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
    model = fit_table_model(
        "random_forest_regressor", train, bundle.feature_names, bundle.label, seed=0
    )
    truth = GroundTruthScores(
        bundle.scm,
        predict=lambda t: model.predict_value(t.select(bundle.feature_names)),
        positive=lambda s: s >= 0.5,
        n_samples=25_000,
        seed=7,
    )

    with_truth = Lewis(model, data=test, graph=bundle.graph, threshold=0.5)
    with_learned = Lewis(model, data=test, graph=learned, threshold=0.5)

    print("\nNESUF with true vs learned diagram vs ground truth:")
    print(f"{'attribute':12s} {'true graph':>11s} {'learned':>9s} {'exact':>7s}")
    for attribute in bundle.feature_names:
        hi = len(test.domain(attribute)) - 1
        a = with_truth.estimator.necessity_sufficiency({attribute: hi}, {attribute: 0})
        b = with_learned.estimator.necessity_sufficiency({attribute: hi}, {attribute: 0})
        exact = truth.necessity_sufficiency(attribute, hi, 0)
        print(f"{attribute:12s} {a:11.3f} {b:9.3f} {exact:7.3f}")


if __name__ == "__main__":
    main()
