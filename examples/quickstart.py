"""Quickstart: explain a loan-approval black box on the German dataset.

Trains a random forest on the German credit replica, wraps it in LEWIS,
and prints the three kinds of explanations from Figure 1 of the paper:
global attribute rankings, a local explanation for one rejected
applicant, and an actionable recourse for them.

Run:  python examples/quickstart.py
"""

from repro import Lewis, fit_table_model, load_dataset, train_test_split
from repro.utils.exceptions import RecourseInfeasibleError


def main() -> None:
    bundle = load_dataset("german", n_rows=1_000, seed=0)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)

    model = fit_table_model(
        "random_forest", train, bundle.feature_names, bundle.label, seed=0
    )
    print(f"black box accuracy: {model.accuracy(test, bundle.label):.3f}")

    lewis = Lewis(
        model,
        data=test,
        graph=bundle.graph,
        positive_outcome=bundle.positive_label,
    )

    print("\n== Global explanation (population level) ==")
    global_exp = lewis.explain_global()
    for row in global_exp.as_rows():
        print(
            f"  {row['attribute']:14s} NEC={row['necessity']:.2f} "
            f"SUF={row['sufficiency']:.2f} NESUF={row['necessity_sufficiency']:.2f}"
        )

    index = int(lewis.negative_indices()[0])
    print(f"\n== Local explanation for rejected applicant #{index} ==")
    local = lewis.explain_local(index=index)
    for c in local.contributions:
        print(
            f"  {c.attribute:14s} = {str(c.value):16s} "
            f"positive={c.positive:.2f} negative={c.negative:.2f}"
        )
    for sentence in local.statements(top=2):
        print(" ", sentence)

    print("\n== Recommended recourse ==")
    # Deep rejections may have no recourse at a high threshold — an
    # honest answer. Relax the target until one is found.
    for alpha in (0.8, 0.6, 0.4):
        try:
            recourse = lewis.recourse(index, actionable=bundle.actionable, alpha=alpha)
        except RecourseInfeasibleError:
            print(f"  (no recourse reaches sufficiency {alpha:.0%}; relaxing)")
            continue
        for line in recourse.statements():
            print(" ", line)
        break


if __name__ == "__main__":
    main()
