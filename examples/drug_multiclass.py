"""Multi-class explanations on the drug-consumption dataset (Figures 3d, 7).

The outcome has three ordered values (never / more than a decade ago /
within the last decade); LEWIS's multi-class extension partitions the
domain into favourable ("never") and unfavourable values and computes
the usual scores against that partition.

Run:  python examples/drug_multiclass.py
"""

from repro import Lewis, fit_table_model, load_dataset, train_test_split


def main() -> None:
    bundle = load_dataset("drug", seed=0)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
    model = fit_table_model(
        "random_forest", train, bundle.feature_names, bundle.label, seed=0
    )
    print(f"black box accuracy: {model.accuracy(test, bundle.label):.3f}")

    lewis = Lewis(
        model,
        data=test,
        graph=bundle.graph,
        positive_outcome=bundle.positive_label,  # favourable = "never"
    )

    print("\n== Global explanation (outcome: never used) ==")
    global_exp = lewis.explain_global()
    for row in global_exp.as_rows():
        print(
            f"  {row['attribute']:14s} NEC={row['necessity']:.2f} "
            f"SUF={row['sufficiency']:.2f} NESUF={row['necessity_sufficiency']:.2f}"
        )
    print("  top by NESUF:", global_exp.ranking()[:3])

    # One individual predicted to have used, one predicted never.
    neg = int(lewis.negative_indices()[0])
    pos = int(lewis.positive_indices()[0])
    for title, idx in (("predicted user", neg), ("predicted non-user", pos)):
        print(f"\n== Local explanation: {title} (row {idx}) ==")
        local = lewis.explain_local(index=idx)
        for c in sorted(local.contributions, key=lambda c: -(c.positive + c.negative))[:5]:
            print(
                f"  {c.attribute:14s} = {str(c.value):12s} "
                f"positive={c.positive:.2f} negative={c.negative:.2f}"
            )


if __name__ == "__main__":
    main()
