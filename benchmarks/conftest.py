"""Shared fixtures and reporting for the benchmark harness.

Each ``bench_*.py`` module regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index). Heavy setup (dataset generation,
model training) lives in session fixtures; the timed portion is the
LEWIS operation the paper reports.

Every benchmark also writes the rows/series the paper's artifact shows
into ``benchmarks/results/<experiment>.txt`` so the shapes can be
compared against the paper (EXPERIMENTS.md records that comparison).

Set ``REPRO_FULL=1`` to run at the paper's full dataset sizes (Table 2);
the default sizes are scaled down so the whole harness completes in
minutes on a laptop.
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro import Lewis, fit_table_model, load_dataset, train_test_split

RESULTS_DIR = Path(__file__).resolve().parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]


def result_envelope() -> dict:
    """Shared provenance envelope every results JSON embeds.

    Benchmark numbers are only comparable when pinned to the code and
    environment that produced them; every ``benchmarks/results/*.json``
    writer stamps this envelope under a ``provenance`` key.
    """
    import numpy

    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        git_sha = "unknown"
    return {
        "git_sha": git_sha,
        "timestamp_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python_version": platform.python_version(),
        "numpy_version": numpy.__version__,
        "platform": platform.platform(),
    }

FULL = os.environ.get("REPRO_FULL", "0") == "1"

#: benchmark dataset sizes (paper scale under REPRO_FULL)
SIZES = {
    "german": 1_000,
    "adult": 48_000 if FULL else 6_000,
    "compas": 5_200,
    "drug": 1_886,
    "german_syn": 10_000,
}


def write_report(name: str, lines: list[str]) -> None:
    """Persist one experiment's output rows under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text("\n".join(lines) + "\n")


def write_json(name: str, payload: dict) -> None:
    """Persist machine-readable results under benchmarks/results/<name>.json.

    The JSON mirror of :func:`write_report` — per-op wall times and
    speedups in a stable schema, so the perf trajectory is diffable
    across PRs instead of locked in formatted text.  Every payload is
    stamped with the shared :func:`result_envelope` provenance.
    """
    import json

    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"provenance": result_envelope(), **payload}
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def format_scores_block(title: str, explanation) -> list[str]:
    """Render a GlobalExplanation the way the paper's bar charts read."""
    lines = [title, f"{'attribute':16s} {'NEC':>6s} {'SUF':>6s} {'NESUF':>6s}"]
    for row in explanation.as_rows():
        lines.append(
            f"{row['attribute']:16s} {row['necessity']:6.2f} "
            f"{row['sufficiency']:6.2f} {row['necessity_sufficiency']:6.2f}"
        )
    return lines


@pytest.fixture(scope="session")
def bundles():
    """All five benchmark datasets at harness scale."""
    return {
        name: load_dataset(name, n_rows=size, seed=0)
        for name, size in SIZES.items()
    }


@pytest.fixture(scope="session")
def trained(bundles):
    """(model, train, test) per classification dataset, RF unless noted."""
    out = {}
    for name in ("german", "adult", "compas", "drug"):
        bundle = bundles[name]
        train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
        model = fit_table_model(
            "random_forest",
            train,
            bundle.feature_names,
            bundle.label,
            seed=0,
            n_estimators=20,
            max_depth=10,
        )
        out[name] = (model, train, test)
    # German-syn uses the paper's random-forest *regressor*.
    bundle = bundles["german_syn"]
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
    model = fit_table_model(
        "random_forest_regressor",
        train,
        bundle.feature_names,
        bundle.label,
        seed=0,
        n_estimators=20,
        max_depth=10,
    )
    out["german_syn"] = (model, train, test)
    return out


@pytest.fixture(scope="session")
def explainers(bundles, trained):
    """A ready Lewis object per dataset."""
    out = {}
    for name in ("german", "adult", "compas", "drug"):
        bundle = bundles[name]
        model, _train, test = trained[name]
        out[name] = Lewis(
            model,
            data=test,
            graph=bundle.graph,
            positive_outcome=bundle.positive_label,
        )
    bundle = bundles["german_syn"]
    model, _train, test = trained["german_syn"]
    out["german_syn"] = Lewis(model, data=test, graph=bundle.graph, threshold=0.5)
    return out
