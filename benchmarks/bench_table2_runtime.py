"""Table 2: runtime of LEWIS's global / local / recourse computations.

The paper reports seconds per dataset for computing all global
explanations, one local explanation, and one recourse. The benchmark
regenerates exactly those three numbers per dataset; absolute times
differ from the paper's testbed but the relative ordering (Adult
slowest, German-syn and German cheapest) should hold.
"""

import pytest

from benchmarks.conftest import write_report

DATASETS = ["german", "adult", "compas", "drug", "german_syn"]

_rows: dict[str, dict[str, float]] = {}


def _record(dataset: str, kind: str, seconds: float) -> None:
    _rows.setdefault(dataset, {})[kind] = seconds
    lines = [
        "Table 2 - runtime in seconds",
        f"{'dataset':12s} {'global':>8s} {'local':>8s} {'recourse':>9s}",
    ]
    for name in DATASETS:
        row = _rows.get(name, {})
        lines.append(
            f"{name:12s} "
            f"{row.get('global', float('nan')):8.3f} "
            f"{row.get('local', float('nan')):8.3f} "
            f"{row.get('recourse', float('nan')):9.3f}"
        )
    write_report("table2_runtime", lines)


@pytest.mark.parametrize("dataset", DATASETS)
def test_global_runtime(benchmark, explainers, dataset):
    lewis = explainers[dataset]
    result = benchmark.pedantic(
        lambda: lewis.explain_global(max_pairs_per_attribute=6),
        rounds=3,
        iterations=1,
    )
    assert result.attribute_scores
    _record(dataset, "global", benchmark.stats.stats.mean)


@pytest.mark.parametrize("dataset", DATASETS)
def test_local_runtime(benchmark, explainers, dataset):
    lewis = explainers[dataset]
    index = int(lewis.negative_indices()[0])
    result = benchmark.pedantic(
        lambda: lewis.explain_local(index=index), rounds=3, iterations=1
    )
    assert result.contributions
    _record(dataset, "local", benchmark.stats.stats.mean)


@pytest.mark.parametrize("dataset", ["german", "adult", "german_syn"])
def test_recourse_runtime(benchmark, explainers, bundles, dataset):
    """The paper reports recourse time only where attributes are actionable."""
    from repro.utils.exceptions import RecourseInfeasibleError

    lewis = explainers[dataset]
    bundle = bundles[dataset]
    # Time a solvable instance: scan negatives for the first one with a
    # feasible recourse at the target threshold.
    index = None
    for candidate in lewis.negative_indices()[:30]:
        try:
            lewis.recourse(int(candidate), actionable=bundle.actionable, alpha=0.6)
            index = int(candidate)
            break
        except RecourseInfeasibleError:
            continue
    assert index is not None, "no solvable recourse instance found"
    result = benchmark.pedantic(
        lambda: lewis.recourse(index, actionable=bundle.actionable, alpha=0.6),
        rounds=3,
        iterations=1,
    )
    assert result.estimated_sufficiency >= 0.0
    _record(dataset, "recourse", benchmark.stats.stats.mean)
