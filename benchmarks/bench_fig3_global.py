"""Figure 3: global explanations (NEC / SUF / NESUF rankings), 4 datasets.

The paper's qualitative shapes, asserted here:

* German (3a): ``credit_hist`` and ``status`` have near-top sufficiency;
  ``housing`` and ``sex`` rank low.
* Adult (3b): ``age`` shows high necessity but much lower sufficiency
  (the married-household-income artefact).
* COMPAS (3c): ``priors_count`` / ``juv_fel_count`` carry the highest
  scores against the software's risk output.
* Drug (3d): ``country`` and ``age`` are the most decisive attributes.
"""

import pytest

from repro import Lewis
from repro.data.compas import compas_software_positive

from benchmarks.conftest import format_scores_block, write_report


@pytest.fixture(scope="module")
def compas_software_lewis(bundles):
    bundle = bundles["compas"]
    features = bundle.table.select(bundle.feature_names)
    return Lewis(
        compas_software_positive,
        data=features,
        feature_names=bundle.feature_names,
        graph=bundle.graph,
    )


def test_fig3a_german(benchmark, explainers):
    lewis = explainers["german"]
    exp = benchmark.pedantic(
        lambda: lewis.explain_global(max_pairs_per_attribute=6), rounds=1, iterations=1
    )
    write_report("fig3a_german", format_scores_block("Figure 3a - German", exp))
    suf_ranking = exp.ranking("sufficiency")
    # credit_hist / status among the most sufficient attributes.
    assert suf_ranking.index("credit_hist") < suf_ranking.index("housing")
    assert suf_ranking.index("status") < suf_ranking.index("sex")


def test_fig3b_adult(benchmark, explainers):
    lewis = explainers["adult"]
    exp = benchmark.pedantic(
        lambda: lewis.explain_global(max_pairs_per_attribute=6), rounds=1, iterations=1
    )
    write_report("fig3b_adult", format_scores_block("Figure 3b - Adult", exp))
    age = exp.score_of("age")
    # The paper's headline: age is necessary but not sufficient.
    assert age.necessity > age.sufficiency


def test_fig3c_compas_software(benchmark, compas_software_lewis):
    exp = benchmark.pedantic(
        lambda: compas_software_lewis.explain_global(max_pairs_per_attribute=6),
        rounds=1,
        iterations=1,
    )
    write_report(
        "fig3c_compas", format_scores_block("Figure 3c - COMPAS software score", exp)
    )
    ranking = exp.ranking("necessity_sufficiency")
    assert ranking[0] in ("priors_count", "juv_fel_count")
    assert ranking.index("priors_count") < ranking.index("sex")


def test_fig3d_drug(benchmark, explainers):
    lewis = explainers["drug"]
    exp = benchmark.pedantic(
        lambda: lewis.explain_global(max_pairs_per_attribute=6), rounds=1, iterations=1
    )
    write_report("fig3d_drug", format_scores_block("Figure 3d - Drug", exp))
    ranking = exp.ranking("necessity_sufficiency")
    # country and age in the top tier (the paper's shape).
    assert ranking.index("age") < ranking.index("ethnicity")
    assert ranking.index("country") < ranking.index("extraversion")
