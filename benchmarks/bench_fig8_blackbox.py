"""Figure 8: generalizability of LEWIS to other black boxes (Adult).

The paper runs LEWIS over XGBoost and a feed-forward neural network on
Adult and reports the NESUF rankings. Asserted shape: rankings stay
broadly consistent with the random-forest run (strong causes stay on
top), while the exact order may shift per classifier — exactly the
paper's observation.
"""

import pytest

from repro import Lewis, fit_table_model, train_test_split
from repro.xai.ranking import kendall_tau

from benchmarks.conftest import format_scores_block, write_report


@pytest.fixture(scope="module")
def adult_splits(bundles):
    bundle = bundles["adult"]
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
    return bundle, train, test


def _lewis_for(kind, bundle, train, test, **params):
    model = fit_table_model(
        kind, train, bundle.feature_names, bundle.label, seed=0, **params
    )
    return Lewis(
        model, data=test, graph=bundle.graph, positive_outcome=bundle.positive_label
    )


def test_fig8a_adult_xgboost(benchmark, adult_splits, explainers):
    bundle, train, test = adult_splits
    lewis = _lewis_for("xgboost", bundle, train, test, n_estimators=40)
    exp = benchmark.pedantic(
        lambda: lewis.explain_global(max_pairs_per_attribute=6), rounds=1, iterations=1
    )
    write_report("fig8a_adult_xgboost", format_scores_block("Figure 8a - Adult + XGBoost", exp))
    rf_ranking = explainers["adult"].explain_global(
        max_pairs_per_attribute=6
    ).ranking("necessity_sufficiency")
    xgb_ranking = exp.ranking("necessity_sufficiency")
    # Paper: XGBoost and RF rankings are similar on Adult.
    assert kendall_tau(rf_ranking, xgb_ranking) > 0.3


def test_fig8b_adult_neural_network(benchmark, adult_splits):
    bundle, train, test = adult_splits
    lewis = _lewis_for(
        "neural_network", bundle, train, test, epochs=12, hidden_sizes=(32, 16)
    )
    exp = benchmark.pedantic(
        lambda: lewis.explain_global(max_pairs_per_attribute=6), rounds=1, iterations=1
    )
    write_report(
        "fig8b_adult_neural", format_scores_block("Figure 8b - Adult + neural net", exp)
    )
    ranking = exp.ranking("necessity_sufficiency")
    # Strong causal drivers must still beat the weakest attribute.
    assert ranking.index("marital") < ranking.index("country")
