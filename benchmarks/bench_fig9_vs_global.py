"""Figure 9: LEWIS vs SHAP vs permutation importance (global rankings).

The paper's headline divergences, asserted as shapes:

* German (9a): ``housing`` is ranked higher by LEWIS than by Feat —
  permutation importance misses it because of its skewed distribution,
  while LEWIS's causal adjustment credits it.
* Adult (9b): SHAP ranks ``age`` above where LEWIS puts it (SHAP picks
  up age's correlation with marital/occupation; LEWIS separates the
  causal pathways).
* All methods broadly agree on the dominant attributes (9c/9d).
"""

from repro.xai.feat import permutation_importance
from repro.xai.ranking import rank_of, ranking_from_scores
from repro.xai.shap import KernelShapExplainer

from benchmarks.conftest import write_report


def _method_rankings(lewis, n_shap_instances=12, seed=0):
    features = lewis.data.select(lewis.attributes)
    predict = lewis.predict_positive
    lewis_exp = lewis.explain_global(max_pairs_per_attribute=6)
    lewis_scores = {
        s.attribute: s.necessity_sufficiency for s in lewis_exp.attribute_scores
    }
    shap = KernelShapExplainer(
        predict,
        features,
        attributes=lewis.attributes,
        n_background=15,
        max_exact_attributes=9,
        n_coalitions=512,
        seed=seed,
    )
    shap_scores = shap.global_importance(features, n_instances=n_shap_instances)
    feat_scores = permutation_importance(
        predict, features, predict(features), attributes=lewis.attributes,
        n_repeats=3, seed=seed,
    )
    return lewis_scores, shap_scores, feat_scores


def _render(title, lewis_scores, shap_scores, feat_scores):
    lines = [title, f"{'attribute':16s} {'LEWIS':>6s} {'SHAP':>7s} {'Feat':>7s}"]
    for attr in ranking_from_scores(lewis_scores):
        lines.append(
            f"{attr:16s} {lewis_scores[attr]:6.2f} "
            f"{shap_scores[attr]:7.3f} {feat_scores[attr]:7.3f}"
        )
    return lines


def test_fig9a_german_methods(benchmark, explainers):
    lewis = explainers["german"]
    lewis_scores, shap_scores, feat_scores = benchmark.pedantic(
        lambda: _method_rankings(lewis), rounds=1, iterations=1
    )
    write_report(
        "fig9a_german_methods",
        _render("Figure 9a - German: LEWIS vs SHAP vs Feat", lewis_scores, shap_scores, feat_scores),
    )
    # The paper's claim behind the housing example: causal credit for
    # attributes whose influence flows through descendants. In our German
    # replica, age drives employment / savings / credit_hist; LEWIS must
    # rank it at least as high as permutation importance does.
    assert rank_of(lewis_scores, "age") <= rank_of(feat_scores, "age")
    # And the top causal attribute carries a decisively non-zero score.
    top = max(lewis_scores.values())
    assert top > 0.5


def test_fig9b_adult_methods(benchmark, explainers):
    lewis = explainers["adult"]
    lewis_scores, shap_scores, feat_scores = benchmark.pedantic(
        lambda: _method_rankings(lewis), rounds=1, iterations=1
    )
    write_report(
        "fig9b_adult_methods",
        _render("Figure 9b - Adult: LEWIS vs SHAP vs Feat", lewis_scores, shap_scores, feat_scores),
    )
    # Paper's consensus: occupation / education / marital matter most;
    # all three must beat the weak attributes for every ranking LEWIS
    # produces, and SHAP's age rank reflects its correlational bias.
    for strong in ("marital", "edu", "occup"):
        assert rank_of(lewis_scores, strong) < rank_of(lewis_scores, "country")


def test_fig9d_drug_methods(benchmark, explainers):
    lewis = explainers["drug"]
    lewis_scores, shap_scores, feat_scores = benchmark.pedantic(
        lambda: _method_rankings(lewis), rounds=1, iterations=1
    )
    write_report(
        "fig9d_drug_methods",
        _render("Figure 9d - Drug: LEWIS vs SHAP vs Feat", lewis_scores, shap_scores, feat_scores),
    )
    # All techniques agree country/age matter most (paper's reading).
    assert rank_of(lewis_scores, "age") <= 3
    assert rank_of(shap_scores, "age") <= 4
