"""Ablations of LEWIS's design choices (beyond the paper's figures).

Four ablations quantify the components DESIGN.md calls out:

* **Causal diagram** — scores with the true diagram vs. the
  no-confounding fallback vs. a PC-*discovered* diagram, measured as
  error against SCM ground truth on German-syn. The diagram is what
  makes indirect influence and Prop 4.4 hold in estimation.
* **Laplace smoothing** — the alpha=0 estimator vs. smoothed variants on
  small samples: smoothing trades a little bias for defined estimates on
  sparse conditioning events.
* **Pair-enumeration cap** — ``max_pairs_per_attribute`` vs. exhaustive
  enumeration: the extreme-contrast heuristic should be nearly lossless
  while bounding cost.
* **Black-box family** — global rankings across RF / XGBoost / logistic:
  the causal scores should be more stable across model families than the
  models' internal importances are.
"""

import numpy as np
import pytest

from repro import (
    GroundTruthScores,
    Lewis,
    fit_table_model,
    load_dataset,
    train_test_split,
)
from repro.causal.discovery import PCAlgorithm, structural_hamming_distance
from repro.core.scores import ScoreEstimator
from repro.estimation.probability import FrequencyEstimator
from repro.xai.ranking import kendall_tau

from benchmarks.conftest import write_report


@pytest.fixture(scope="module")
def syn_model():
    bundle = load_dataset("german_syn", n_rows=10_000, seed=0)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
    model = fit_table_model(
        "random_forest_regressor", train, bundle.feature_names, bundle.label,
        seed=0, n_estimators=15,
    )
    truth = GroundTruthScores(
        bundle.scm,
        predict=lambda t: model.predict_value(t.select(bundle.feature_names)),
        positive=lambda s: s >= 0.5,
        n_samples=25_000,
        seed=9,
    )
    return bundle, model, test, truth


def _nesuf_errors(lewis, bundle, truth):
    errors = {}
    for attribute in bundle.feature_names:
        hi = len(lewis.data.domain(attribute)) - 1
        est = lewis.estimator.necessity_sufficiency({attribute: hi}, {attribute: 0})
        exact = truth.necessity_sufficiency(attribute, hi, 0)
        errors[attribute] = abs(est - exact)
    return errors


def test_ablation_causal_diagram(benchmark, syn_model):
    """True diagram vs discovered diagram vs no diagram."""
    bundle, model, test, truth = syn_model

    def run():
        with_graph = Lewis(model, data=test, graph=bundle.graph, threshold=0.5)
        without = Lewis(model, data=test, graph=None, threshold=0.5)
        # Structure learning uses the full historical table (scores are
        # still estimated on the held-out split).
        discovered_graph = PCAlgorithm(alpha=0.01, max_condition_size=2).fit_diagram(
            bundle.table.select(bundle.feature_names), order=bundle.feature_names
        )
        discovered = Lewis(model, data=test, graph=discovered_graph, threshold=0.5)
        shd = structural_hamming_distance(discovered_graph, bundle.graph)
        return (
            _nesuf_errors(with_graph, bundle, truth),
            _nesuf_errors(without, bundle, truth),
            _nesuf_errors(discovered, bundle, truth),
            shd,
        )

    true_err, none_err, disc_err, shd = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation - background causal diagram (German-syn, NESUF |error|)",
        f"PC-discovered diagram SHD vs truth: {shd}",
        f"{'attribute':12s} {'true graph':>10s} {'discovered':>10s} {'no graph':>9s}",
    ]
    for attribute in true_err:
        lines.append(
            f"{attribute:12s} {true_err[attribute]:10.3f} "
            f"{disc_err[attribute]:10.3f} {none_err[attribute]:9.3f}"
        )
    write_report("ablation_diagram", lines)
    # The discovered diagram matches the truth closely enough to inherit
    # its accuracy, and the no-graph fallback is never much better than
    # the causal estimate on the confounded attributes.
    assert shd <= 2
    assert np.mean(list(disc_err.values())) <= np.mean(list(true_err.values())) + 0.05
    # Diagram helps where confounding bites (status is confounded by age).
    assert true_err["status"] <= none_err["status"] + 0.02


def test_ablation_smoothing(benchmark, syn_model):
    """Laplace smoothing on small samples: defined estimates, mild bias."""
    bundle, model, _test, truth = syn_model
    small = load_dataset("german_syn", n_rows=700, seed=3)
    lewis = Lewis(model, data=small.table, graph=small.graph, threshold=0.5)
    positive = lewis.positive
    features = lewis.data.select(bundle.feature_names)
    exact = truth.necessity_sufficiency("status", 2, 0)

    def run():
        rows = []
        for alpha in (0.0, 0.5, 2.0, 8.0):
            estimator = ScoreEstimator(features, positive, diagram=small.graph)
            estimator._freq = FrequencyEstimator(estimator.table, alpha=alpha)
            est = estimator.necessity_sufficiency({"status": 2}, {"status": 0})
            rows.append((alpha, est, abs(est - exact)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation - Laplace smoothing (German-syn, 700 rows, NESUF(status))",
        f"ground truth = {exact:.3f}",
        f"{'alpha':>6s} {'estimate':>9s} {'|error|':>8s}",
    ]
    for alpha, est, err in rows:
        lines.append(f"{alpha:6.1f} {est:9.3f} {err:8.3f}")
    write_report("ablation_smoothing", lines)
    # Heavy smoothing biases toward zero effect: the estimate shrinks.
    assert rows[-1][1] <= rows[0][1] + 1e-9


def test_ablation_pair_cap(benchmark, explainers):
    """Extreme-contrast heuristic vs exhaustive pair enumeration."""
    lewis = explainers["german"]

    def run():
        capped = lewis.explain_global(max_pairs_per_attribute=1)
        exhaustive = lewis.explain_global(max_pairs_per_attribute=None)
        return capped, exhaustive

    capped, exhaustive = benchmark.pedantic(run, rounds=1, iterations=1)
    tau = kendall_tau(
        capped.ranking("necessity_sufficiency"),
        exhaustive.ranking("necessity_sufficiency"),
    )
    gaps = [
        abs(
            capped.score_of(s.attribute).necessity_sufficiency
            - s.necessity_sufficiency
        )
        for s in exhaustive.attribute_scores
    ]
    write_report(
        "ablation_pair_cap",
        [
            "Ablation - max_pairs_per_attribute cap (German)",
            f"rank correlation (cap=1 vs exhaustive): {tau:.2f}",
            f"max NESUF gap: {max(gaps):.3f}",
        ],
    )
    assert tau > 0.6
    assert max(gaps) < 0.35


def test_ablation_pdp_misses_indirect_influence(benchmark, syn_model):
    """PDP probes only the algorithm f, so attributes that influence the
    decision exclusively through *other inputs* (age, sex on German-syn)
    get a near-flat PDP — while their true causal effect is large and
    LEWIS recovers it (Remark 3.2)."""
    from repro.xai.pdp import partial_dependence

    bundle, model, test, truth = syn_model
    lewis = Lewis(model, data=test, graph=bundle.graph, threshold=0.5)
    features = lewis.data.select(bundle.feature_names)

    def run():
        rows = []
        for attribute in bundle.feature_names:
            pdp = partial_dependence(
                lewis.predict_positive, features, attribute, seed=0
            )
            hi = len(features.domain(attribute)) - 1
            est = lewis.estimator.necessity_sufficiency(
                {attribute: hi}, {attribute: 0}
            )
            exact = truth.necessity_sufficiency(attribute, hi, 0)
            rows.append((attribute, pdp.range, est, exact))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Ablation - PDP vs LEWIS on indirect influence (German-syn)",
        f"{'attribute':12s} {'PDP range':>9s} {'LEWIS':>7s} {'truth':>7s}",
    ]
    for attribute, pdp_range, est, exact in rows:
        lines.append(f"{attribute:12s} {pdp_range:9.3f} {est:7.3f} {exact:7.3f}")
    write_report("ablation_pdp_indirect", lines)
    by_attr = {r[0]: r for r in rows}
    # age's direct effect on f is ~nil, so its PDP range is small...
    assert by_attr["age"][1] < 0.15
    # ...while its true (indirect) causal effect is large and detected.
    assert by_attr["age"][3] > 0.3
    assert by_attr["age"][2] > 0.3


def test_ablation_blackbox_stability(benchmark, bundles):
    """Causal rankings are stable across model families."""
    bundle = bundles["german"]
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)

    def run():
        rankings = {}
        for kind in ("random_forest", "xgboost", "logistic"):
            model = fit_table_model(
                kind, train, bundle.feature_names, bundle.label, seed=0
            )
            lewis = Lewis(
                model, data=test, graph=bundle.graph,
                positive_outcome=bundle.positive_label,
            )
            rankings[kind] = lewis.explain_global(
                max_pairs_per_attribute=6
            ).ranking("necessity_sufficiency")
        return rankings

    rankings = benchmark.pedantic(run, rounds=1, iterations=1)
    taus = {
        ("random_forest", "xgboost"): kendall_tau(
            rankings["random_forest"], rankings["xgboost"]
        ),
        ("random_forest", "logistic"): kendall_tau(
            rankings["random_forest"], rankings["logistic"]
        ),
    }
    lines = ["Ablation - ranking stability across black boxes (German)"]
    for pair, tau in taus.items():
        lines.append(f"{pair[0]} vs {pair[1]}: tau = {tau:.2f}")
    for kind, ranking in rankings.items():
        lines.append(f"{kind}: {ranking[:6]}")
    write_report("ablation_blackbox_stability", lines)
    assert min(taus.values()) > 0.3
