"""Figure 11: correctness of LEWIS's estimates on German-syn.

* 11a — estimated global NESUF per attribute vs Pearl-three-step ground
  truth for the random-forest regression black box (outcome o = 0.5).
  Asserted: estimates within a tight band of truth, and the indirect
  attributes (age, sex) get non-zero scores while a correlational method
  (permutation importance) under-ranks them.
* 11b — sample-size convergence of NESUF(status): the absolute error is
  non-increasing from 1k to 50k rows.
"""

import pytest

from repro import GroundTruthScores, Lewis, load_dataset
from repro.xai.feat import permutation_importance

from benchmarks.conftest import write_report


@pytest.fixture(scope="module")
def syn(bundles, trained, explainers):
    bundle = bundles["german_syn"]
    model, _train, _test = trained["german_syn"]
    lewis = explainers["german_syn"]
    truth = GroundTruthScores(
        bundle.scm,
        predict=lambda t: model.predict_value(t.select(bundle.feature_names)),
        positive=lambda s: s >= 0.5,
        n_samples=30_000,
        seed=7,
    )
    return bundle, model, lewis, truth


def test_fig11a_estimates_vs_ground_truth(benchmark, syn):
    bundle, model, lewis, truth = syn

    def run():
        rows = []
        for attribute in bundle.feature_names:
            hi = len(lewis.data.domain(attribute)) - 1
            est = lewis.estimator.necessity_sufficiency(
                {attribute: hi}, {attribute: 0}
            )
            exact = truth.necessity_sufficiency(attribute, hi, 0)
            rows.append((attribute, est, exact))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Figure 11a - estimated vs ground-truth NESUF (German-syn)",
        f"{'attribute':12s} {'LEWIS':>8s} {'truth':>8s} {'|err|':>7s}",
    ]
    for attribute, est, exact in rows:
        lines.append(f"{attribute:12s} {est:8.3f} {exact:8.3f} {abs(est-exact):7.3f}")

    # Correlational baseline for contrast: permutation importance.
    features = lewis.data.select(bundle.feature_names)
    feat = permutation_importance(
        lewis.predict_positive, features, lewis.predict_positive(features),
        n_repeats=3, seed=0,
    )
    lines.append("")
    lines.append("permutation importance (correlational baseline):")
    for attribute, value in sorted(feat.items(), key=lambda kv: -kv[1]):
        lines.append(f"{attribute:12s} {value:8.3f}")
    write_report("fig11a_correctness", lines)

    for attribute, est, exact in rows:
        assert est == pytest.approx(exact, abs=0.15), attribute
    # Indirect influence: age's true effect is non-zero and detected.
    truth_by_attr = {a: t for a, _e, t in rows}
    est_by_attr = {a: e for a, e, _t in rows}
    assert truth_by_attr["age"] > 0.2
    assert est_by_attr["age"] > 0.2
    # The correlational baseline under-credits age relative to saving.
    assert feat["age"] < feat["saving"]


def test_fig11b_sample_size_convergence(benchmark, syn):
    bundle, model, lewis, truth = syn
    exact = truth.necessity_sufficiency("status", 2, 0)

    def estimate_at(n, seed=5):
        sample = load_dataset("german_syn", n_rows=n, seed=seed)
        lew = Lewis(model, data=sample.table, graph=sample.graph, threshold=0.5)
        return lew.estimator.necessity_sufficiency({"status": 2}, {"status": 0})

    sizes = [1_000, 5_000, 20_000, 50_000]

    def run():
        return {n: abs(estimate_at(n) - exact) for n in sizes}

    errors = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Figure 11b - sample-size convergence of NESUF(status)",
        f"ground truth = {exact:.3f}",
    ]
    for n in sizes:
        lines.append(f"n={n:6d}  |error| = {errors[n]:.3f}")
    write_report("fig11b_convergence", lines)
    # Errors shrink from the smallest to the largest sample.
    assert errors[50_000] <= errors[1_000] + 0.01
