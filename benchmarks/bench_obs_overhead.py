"""Observability overhead benchmark: the always-on path must stay <3%.

The obs subsystem (PR 7) instruments every hot path — result cache,
micro-batcher, engine, solver, WAL — and traces every POST at the HTTP
edge.  Its contract is that the *always-on* cost is negligible: one flag
check plus a handful of counter increments per request.  This benchmark
measures that cost end to end, at the HTTP layer, by driving an
identical mixed workload against one server with observability enabled
(``REPRO_OBS`` default) and disabled (``set_enabled(False)``) and
reports

    overhead_pct = (median of paired on/off ratios - 1) * 100

The statistical design matters more than the workload here.  The
per-request baseline (~1 ms) is dominated by the urllib socket
roundtrip, and on a shared machine the noise floor *wanders* on a
seconds timescale by 10%+ — far above the instrumentation cost being
measured — so comparing whole-run aggregates (medians or even minima
of long rounds) is hopelessly confounded.  Instead the flag alternates
every :data:`SEGMENT`-request slice (~25 ms), so each enabled segment
is **paired** with an immediately adjacent disabled segment that saw
essentially the same noise; the per-pair ratio cancels the wander, the
pair order alternates (ABBA) to cancel any residual linear drift, and
the median across many pairs suppresses what little unpaired noise
remains.

The workload mirrors real traffic: cache-hit global explains (the
dominant steady-state request), cache-miss local explains routed through
the micro-batcher, and score queries.  Results are persisted as JSON
under ``benchmarks/results/obs_overhead.json`` so the overhead
trajectory is diffable across PRs.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py          # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke  # CI guard

``--smoke`` shrinks the workload and *exits 1* when the measured
overhead reaches the 3% budget — the CI tripwire for anyone adding
instrumentation to a hot path.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

OVERHEAD_BUDGET_PCT = 3.0


def build_server(rows: int, seed: int):
    import numpy as np

    from repro.core.lewis import Lewis
    from repro.data.table import Table
    from repro.service.server import create_server
    from repro.service.session import ExplainerSession

    rng = np.random.default_rng(seed)
    table = Table.from_dict(
        {
            "a": rng.integers(0, 3, rows).tolist(),
            "b": rng.integers(0, 3, rows).tolist(),
            "c": rng.integers(0, 4, rows).tolist(),
        },
        domains={"a": [0, 1, 2], "b": [0, 1, 2], "c": [0, 1, 2, 3]},
    )

    def model(features):
        return (features.codes("a") + features.codes("b")) >= 2

    lewis = Lewis(
        model, data=table, feature_names=["a", "b", "c"], infer_orderings=False
    )
    session = ExplainerSession(lewis, default_actionable=["a", "b"])
    server = create_server(session, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address
    return server, session, thread, f"http://{host}:{port}", len(table)


def post(base: str, path: str, payload: dict) -> None:
    req = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req) as resp:
        resp.read()


#: requests per timed segment — a multiple of the 10-request workload
#: cycle, so every segment runs the identical request mix.
SEGMENT = 30


def run_segment(base: str, n_rows: int) -> float:
    """Time one :data:`SEGMENT`-request slice of the standard mix.

    Every call issues byte-identical requests (fixed indices), so after
    warmup the only difference between timed segments is the obs flag.
    Returns per-request wall time in seconds.
    """
    t0 = time.perf_counter()
    for i in range(SEGMENT):
        step = i % 10
        if step < 6:
            # steady-state traffic: served from the result cache
            post(base, "/v1/explain/global", {"max_pairs_per_attribute": 4})
        elif step < 9:
            # cached after warmup; crossed the batcher to get there
            post(base, "/v1/explain/local", {"index": i % n_rows})
        else:
            post(
                base,
                "/v1/scores",
                {"contrasts": [[{"a": 2}, {"a": 0}]], "context": {}},
            )
    return (time.perf_counter() - t0) / SEGMENT


def measure(pairs: int, rows: int, seed: int) -> dict:
    from repro.obs import metrics as obs

    server, session, thread, base, n_rows = build_server(rows, seed)
    try:
        # warm both paths until steady: caches filled (the local-explain
        # misses cross the batcher here, once), lazy imports done, server
        # thread hot.  Generous because the first enabled round showed a
        # multi-hundred-µs first-touch ramp in profiling.
        for flag in (True, True, False, True):
            obs.set_enabled(flag)
            run_segment(base, n_rows)

        enabled_s: list[float] = []
        disabled_s: list[float] = []
        for k in range(pairs):
            # ABBA at pair level: even pairs run on→off, odd off→on, so
            # any residual linear drift inside a pair cancels too.
            order = ((True, enabled_s), (False, disabled_s))
            if k % 2:
                order = order[::-1]
            for flag, sink in order:
                obs.set_enabled(flag)
                sink.append(run_segment(base, n_rows))
        obs.set_enabled(True)
    finally:
        obs.set_enabled(True)
        server.shutdown()
        server.server_close()
        session.close()

    # Each enabled segment is compared against its own adjacent disabled
    # segment: the pair saw the same noise, so the ratio isolates the
    # instrumentation cost; the median across pairs discards outliers.
    ratios = [on / off for on, off in zip(enabled_s, disabled_s)]
    overhead_pct = (statistics.median(ratios) - 1.0) * 100.0
    return {
        "pairs": pairs,
        "segment": SEGMENT,
        "population": n_rows,
        "enabled_per_request_us": [round(t * 1e6, 3) for t in enabled_s],
        "disabled_per_request_us": [round(t * 1e6, 3) for t in disabled_s],
        "pair_overhead_pct": [round((r - 1.0) * 100.0, 3) for r in ratios],
        "per_request_enabled_us": round(
            statistics.median(enabled_s) * 1e6, 3
        ),
        "per_request_disabled_us": round(
            statistics.median(disabled_s) * 1e6, 3
        ),
        "overhead_pct": round(overhead_pct, 3),
        "budget_pct": OVERHEAD_BUDGET_PCT,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small workload; exit 1 when overhead >= budget (CI guard)",
    )
    parser.add_argument(
        "--pairs", type=int, default=None,
        help="number of paired on/off segments (default: 100 smoke, 150 full)",
    )
    parser.add_argument("--rows", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    # the paired-ratio median needs ~100+ pairs to push its sampling
    # error well under the 3% budget (per-pair ratio sigma is a few
    # percent on a busy machine); ~10 s of wall time buys a stable gate.
    pairs = args.pairs or (150 if args.smoke else 150)

    # A single measurement still has a small tail past the budget on a
    # loud machine, so the smoke gate escalates: a passing first attempt
    # is final; a failing one is re-measured (up to 3 attempts total)
    # and the verdict is the median attempt.  A genuine regression fails
    # every attempt; a noise spike loses the vote.
    attempts = [measure(pairs, args.rows, args.seed)]
    while (
        args.smoke
        and attempts[-1]["overhead_pct"] >= OVERHEAD_BUDGET_PCT
        and len(attempts) < 3
    ):
        print(
            f"attempt {len(attempts)}: overhead "
            f"{attempts[-1]['overhead_pct']:+.3f}% over budget; re-measuring"
        )
        attempts.append(measure(pairs, args.rows, args.seed))

    result = attempts[-1]
    verdict_pct = statistics.median(a["overhead_pct"] for a in attempts)
    from conftest import result_envelope

    result["provenance"] = result_envelope()
    result["mode"] = "smoke" if args.smoke else "full"
    result["attempt_overheads_pct"] = [a["overhead_pct"] for a in attempts]
    result["verdict_pct"] = round(verdict_pct, 3)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out_path = RESULTS_DIR / "obs_overhead.json"
    out_path.write_text(json.dumps(result, indent=2) + "\n")

    print(
        f"observability overhead: {verdict_pct:+.3f}% "
        f"(enabled {result['per_request_enabled_us']:.1f} us/req, "
        f"disabled {result['per_request_disabled_us']:.1f} us/req, "
        f"budget {OVERHEAD_BUDGET_PCT:g}%, "
        f"{len(attempts)} attempt(s))"
    )
    print(f"wrote {out_path}")

    if args.smoke and verdict_pct >= OVERHEAD_BUDGET_PCT:
        print(
            f"FAIL: overhead {verdict_pct:.3f}% >= "
            f"{OVERHEAD_BUDGET_PCT:g}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
