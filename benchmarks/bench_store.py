"""Durable-store benchmark: warm-boot speedup and WAL replay throughput.

Measures the two numbers the persistence subsystem exists for and
persists them as machine-readable JSON under
``benchmarks/results/store.json``:

* **warm boot vs cold boot** — time from nothing to "first global
  explanation answered" when restoring a tenant from its snapshot
  (model JSON + table npz + warm count tensors + WAL tail) vs building
  it from scratch (train the black box, predict the population, infer
  orderings, count tensors).  Target: >= 10x on adult.
* **replay throughput** — write-ahead-log deltas replayed per second
  during recovery (restore with a populated tail), and the fsync'd
  append rate on the write path.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_store.py             # full
    PYTHONPATH=src python benchmarks/bench_store.py --smoke     # CI guard

``--smoke`` shrinks the dataset and *asserts* conservative floors
(exit 1 on regression); the full run records the trajectory numbers.
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

# Conservative floors for --smoke: tiny datasets shrink the training
# cost a warm boot skips, so the floors sit far below the full-scale
# target — they catch "restore stopped being warm", not noise.
SMOKE_MIN_WARM_SPEEDUP = 2.0
SMOKE_MIN_REPLAY_PER_S = 5.0


def _timed(fn, repeats: int) -> tuple[float, object]:
    times, value = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), value


def cold_boot(dataset: str, rows: int, seed: int, max_pairs: int):
    """Everything a fresh process pays: train, build, explain once."""
    from repro import Lewis, fit_table_model, load_dataset, train_test_split
    from repro.service import ExplainerSession

    bundle = load_dataset(dataset, n_rows=rows, seed=seed)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=seed)
    model = fit_table_model(
        "random_forest",
        train,
        bundle.feature_names,
        bundle.label,
        seed=seed,
        n_estimators=15,
        max_depth=8,
    )
    lewis = Lewis(
        model,
        data=test,
        graph=bundle.graph,
        positive_outcome=bundle.positive_label,
    )
    session = ExplainerSession(lewis, default_actionable=bundle.actionable)
    session.explain_global(max_pairs_per_attribute=max_pairs)
    return bundle, session


def run(dataset: str, rows: int, replay_deltas: int, repeats: int, seed: int) -> dict:
    from repro.store import ArtifactStore, checkpoint_session, create_tenant, restore_session

    max_pairs = 6
    store_dir = Path(tempfile.mkdtemp(prefix="bench_store_"))
    try:
        store = ArtifactStore(store_dir)

        # -- cold boot ----------------------------------------------------
        cold_s, (bundle, session) = _timed(
            lambda: cold_boot(dataset, rows, seed, max_pairs), 1
        )
        tenant = create_tenant(
            store,
            dataset,
            session.lewis,
            default_actionable=bundle.actionable,
            snapshot=False,
        )
        tenant.explain_global(max_pairs_per_attribute=max_pairs)  # warm tensors
        snapshot_s, _ = _timed(
            lambda: checkpoint_session(store, tenant, dataset), 1
        )

        # -- warm boot ----------------------------------------------------
        def warm_boot():
            restored = restore_session(store, dataset)
            restored.explain_global(max_pairs_per_attribute=max_pairs)
            restored.close()
            return restored

        warm_s, _ = _timed(warm_boot, repeats)

        def bare_restore():
            restored = restore_session(store, dataset)
            restored.close()
            return restored

        # restore with an empty tail: the baseline the replay time rides on
        restore_only_s, _ = _timed(bare_restore, repeats)

        # -- WAL append + replay throughput -------------------------------
        rows_batch = [tenant.lewis.data.row(i) for i in range(replay_deltas)]
        append_start = time.perf_counter()
        for row in rows_batch:
            tenant.update({"insert": [row]})
        append_s = time.perf_counter() - append_start

        replay_total_s, restored = _timed(bare_restore, repeats)
        replay_s = max(replay_total_s - restore_only_s, 1e-9)
        assert len(restored.lewis.data) == len(tenant.lewis.data)
        tenant.close()
        store_bytes = store.stats()["object_bytes"]
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)

    return {
        "dataset": dataset,
        "rows": rows,
        "population": len(tenant.lewis.data) - replay_deltas,
        "repeats": repeats,
        "cold_boot_s": round(cold_s, 6),
        "warm_boot_s": round(warm_s, 6),
        "warm_speedup": round(cold_s / warm_s, 2) if warm_s else float("inf"),
        "snapshot_s": round(snapshot_s, 6),
        "restore_only_s": round(restore_only_s, 6),
        "store_bytes": store_bytes,
        "wal_deltas": replay_deltas,
        "wal_append_s": round(append_s, 6),
        "wal_appends_per_s": round(replay_deltas / append_s, 2) if append_s else float("inf"),
        "wal_replay_s": round(replay_s, 6),
        "wal_replays_per_s": round(replay_deltas / replay_s, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dataset", default=None, help="default: adult (full) / german (smoke)"
    )
    parser.add_argument("--rows", type=int, default=None, help="dataset size")
    parser.add_argument(
        "--deltas", type=int, default=50, help="WAL records for the replay measurement"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes + assert conservative floors (CI guard)",
    )
    args = parser.parse_args(argv)

    from benchmarks.conftest import result_envelope

    dataset = args.dataset or ("german" if args.smoke else "adult")
    rows = args.rows if args.rows is not None else (300 if args.smoke else 20_000)
    deltas = min(args.deltas, 20) if args.smoke else args.deltas
    result = run(dataset, rows, deltas, args.repeats, args.seed)
    result["smoke"] = args.smoke
    result = {"provenance": result_envelope(), **result}

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / ("store_smoke.json" if args.smoke else "store.json")
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {out_path}")

    if args.smoke:
        failures = []
        if result["warm_speedup"] < SMOKE_MIN_WARM_SPEEDUP:
            failures.append(
                f"warm_speedup {result['warm_speedup']} < {SMOKE_MIN_WARM_SPEEDUP}"
            )
        if result["wal_replays_per_s"] < SMOKE_MIN_REPLAY_PER_S:
            failures.append(
                f"wal_replays_per_s {result['wal_replays_per_s']} < "
                f"{SMOKE_MIN_REPLAY_PER_S}"
            )
        if failures:
            print("SMOKE FAILURES:", "; ".join(failures), file=sys.stderr)
            return 1
        print("smoke floors satisfied")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
