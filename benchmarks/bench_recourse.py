"""Section 5.5 + 5.4: recourse optimality, scalability, LinearIP contrast.

Three experiments:

* **Optimality** — sample negative-outcome individuals on the wide
  synthetic SCM, solve recourse at alpha = 0.9, and validate each
  solution against ground truth (re-run the SCM under the intervention):
  the achieved positive rate must clear the threshold's intent, and the
  cost must match exhaustive search on a small actionable set.
* **Scalability** — 100-variable causal graph, actionable set growing
  5 -> 100; the constraint count grows linearly (k + 1) and runtime stays
  within the same order of magnitude (the paper: 1.65s -> 8.35s).
* **LEWIS vs LinearIP** — threshold sweep on German: LinearIP stops
  returning solutions at high thresholds while LEWIS still does.
"""

import time

import numpy as np
import pytest

from repro import load_dataset
from repro.core.recourse import RecourseSolver
from repro.core.scores import ScoreEstimator
from repro.utils.exceptions import RecourseInfeasibleError
from repro.xai.linear_ip import LinearIPRecourse

from benchmarks.conftest import write_report


@pytest.fixture(scope="module")
def wide_setup():
    bundle = load_dataset("wide", n_variables=8, n_rows=6_000, seed=0)
    table = bundle.table.select(bundle.feature_names)
    positive = bundle.table.codes("outcome").astype(bool)
    estimator = ScoreEstimator(table, positive, diagram=bundle.graph)
    return bundle, table, positive, estimator


def test_recourse_optimality_ground_truth(benchmark, wide_setup):
    bundle, table, positive, estimator = wide_setup
    actionable = list(bundle.feature_names)
    solver = RecourseSolver(estimator, actionable)
    negatives = np.nonzero(~positive)[0][:40]

    def run():
        validated, total, costs = 0, 0, []
        for idx in negatives:
            row = table.row_codes(int(idx))
            try:
                recourse = solver.solve(row, alpha=0.9)
            except RecourseInfeasibleError:
                continue
            if recourse.is_empty:
                continue
            total += 1
            costs.append(recourse.total_cost)
            interventions = {
                a.attribute: table.column(a.attribute).categories.index(a.new_value)
                for a in recourse.actions
            }
            cf = bundle.scm.sample(3_000, seed=int(idx), interventions=interventions)
            validated += int(cf.codes("outcome").mean() >= 0.5)
        return validated, total, costs

    validated, total, costs = benchmark.pedantic(run, rounds=1, iterations=1)
    write_report(
        "recourse_optimality",
        [
            "Section 5.5 - recourse analysis (alpha = 0.9, wide SCM)",
            f"solved instances: {total}",
            f"ground-truth validated (intervened positive rate >= 0.5): {validated}",
            f"mean action cost: {np.mean(costs):.2f}" if costs else "no solutions",
        ],
    )
    assert total >= 10
    assert validated / total >= 0.8


def test_recourse_scalability(benchmark):
    """Actionable variables 5 -> 100 on a 100-variable graph."""
    bundle = load_dataset("wide", n_variables=100, n_rows=4_000, seed=0)
    table = bundle.table.select(bundle.feature_names)
    positive = bundle.table.codes("outcome").astype(bool)
    estimator = ScoreEstimator(table, positive, diagram=bundle.graph)
    row = table.row_codes(int(np.nonzero(~positive)[0][0]))
    ks = [5, 25, 50, 100]

    def run():
        timings = []
        for k in ks:
            solver = RecourseSolver(estimator, bundle.feature_names[:k])
            start = time.perf_counter()
            recourse = solver.solve(row, alpha=0.5)
            elapsed = time.perf_counter() - start
            timings.append((k, recourse.n_constraints, elapsed))
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Section 5.5 - recourse scalability (100-variable graph)",
        f"{'actionable':>10s} {'constraints':>12s} {'seconds':>8s}",
    ]
    for k, n_constraints, elapsed in timings:
        lines.append(f"{k:10d} {n_constraints:12d} {elapsed:8.3f}")
    write_report("recourse_scalability", lines)
    # Constraints grow exactly linearly: one per attribute + sufficiency.
    for k, n_constraints, _ in timings:
        assert n_constraints == k + 1
    # Runtime stays in the paper's order of magnitude (1.65s -> 8.35s for
    # 5 -> 100 actionable variables) — seconds, not minutes.
    assert timings[-1][2] < 10.0


def test_lewis_vs_linear_ip_threshold_sweep(benchmark, explainers, bundles):
    """Section 5.4: LinearIP fails at high thresholds, LEWIS does not."""
    lewis = explainers["german"]
    bundle = bundles["german"]
    features = lewis.data
    negatives = lewis.negative_indices()
    # Borderline rejection: most room for both methods.
    proba_like = [
        lewis.estimator.local_probability(
            bundle.actionable[0],
            int(features.codes(bundle.actionable[0])[i]),
            lewis.estimator.local_context(
                bundle.actionable[0], features.row_codes(int(i))
            ),
        )
        for i in negatives[:20]
    ]
    target = int(negatives[int(np.argmax(proba_like))])
    linear_ip = LinearIPRecourse(features, lewis.positive, bundle.actionable)
    thresholds = [0.5, 0.7, 0.8, 0.9, 0.95]

    def run():
        rows = []
        for threshold in thresholds:
            try:
                lew = lewis.recourse(target, actionable=bundle.actionable, alpha=threshold)
                lewis_out = f"cost={lew.total_cost:.0f}"
            except RecourseInfeasibleError:
                lewis_out = "infeasible"
            try:
                lin = linear_ip.solve(features.row_codes(target), threshold)
                linear_out = f"cost={lin.total_cost:.0f}"
            except RecourseInfeasibleError:
                linear_out = "no solution"
            rows.append((threshold, lewis_out, linear_out))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "Section 5.4 - LEWIS vs LinearIP recourse (German)",
        "note: LEWIS's alpha targets the causal *sufficiency* (flip",
        "probability), LinearIP's targets the absolute success probability",
        "of the linear surrogate - the former is the stricter guarantee.",
        f"{'alpha':>6s} {'LEWIS':>12s} {'LinearIP':>12s}",
    ]
    for threshold, lewis_out, linear_out in rows:
        lines.append(f"{threshold:6.2f} {lewis_out:>12s} {linear_out:>12s}")
    write_report("recourse_vs_linear_ip", lines)
    # Both methods solve the low-threshold settings (paper: "both
    # identify the same solution for small thresholds").
    assert rows[0][1] != "infeasible"
    assert rows[0][2] != "no solution"
    # Costs are non-decreasing in the threshold for both methods.
    def costs(col):
        return [
            float(r[col].split("=")[1])
            for r in rows
            if "=" in r[col]
        ]
    for col in (1, 2):
        series = costs(col)
        assert all(b >= a for a, b in zip(series, series[1:]))
