"""Section 5.5: robustness of the estimates to monotonicity violations.

The German-syn structural equations are modified to add a direct
non-monotone age effect of increasing strength; for each strength the
benchmark measures the true violation Λ_viol = Pr(o'_{X<-x} | o, x') and
the estimation error vs ground truth. Paper's claims, asserted:

* Λ_viol grows with the injected violation strength;
* while Λ_viol stays below ~0.25, the NESUF estimates stay within ~5-10%
  of ground truth and the attribute ranking is preserved.
"""

from repro import GroundTruthScores, Lewis, fit_table_model, load_dataset, train_test_split
from repro.xai.ranking import kendall_tau

from benchmarks.conftest import write_report

STRENGTHS = [0.0, 0.5, 1.0]


def _run_one(strength):
    bundle = load_dataset("german_syn", n_rows=8_000, seed=0, violation=strength)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
    model = fit_table_model(
        "random_forest_regressor",
        train,
        bundle.feature_names,
        bundle.label,
        seed=0,
        n_estimators=15,
    )
    lewis = Lewis(model, data=test, graph=bundle.graph, threshold=0.5)
    truth = GroundTruthScores(
        bundle.scm,
        predict=lambda t: model.predict_value(t.select(bundle.feature_names)),
        positive=lambda s: s >= 0.5,
        n_samples=20_000,
        seed=3,
    )
    # The violation is injected through age (codes 1/2 swap direction).
    lam = truth.monotonicity_violation("age", 2, 1)
    estimates, exacts = {}, {}
    for attribute in bundle.feature_names:
        hi = len(lewis.data.domain(attribute)) - 1
        estimates[attribute] = lewis.estimator.necessity_sufficiency(
            {attribute: hi}, {attribute: 0}
        )
        exacts[attribute] = truth.necessity_sufficiency(attribute, hi, 0)
    max_err = max(abs(estimates[a] - exacts[a]) for a in estimates)
    tau = kendall_tau(
        sorted(estimates, key=estimates.get, reverse=True),
        sorted(exacts, key=exacts.get, reverse=True),
    )
    return lam, max_err, tau


def test_monotonicity_violation_sweep(benchmark):
    results = benchmark.pedantic(
        lambda: [(s, *_run_one(s)) for s in STRENGTHS], rounds=1, iterations=1
    )
    lines = [
        "Section 5.5 - robustness to monotonicity violation (German-syn)",
        f"{'strength':>8s} {'Lambda_viol':>12s} {'max |err|':>10s} {'rank tau':>9s}",
    ]
    for strength, lam, max_err, tau in results:
        lines.append(f"{strength:8.2f} {lam:12.3f} {max_err:10.3f} {tau:9.2f}")
    write_report("monotonicity_robustness", lines)

    lams = [lam for _s, lam, _e, _t in results]
    # Violation measure grows with the injected strength.
    assert lams[-1] >= lams[0]
    # In the clean regime the estimates are accurate and rankings stable.
    clean = results[0]
    assert clean[1] <= 0.05  # Λ_viol ~ 0 at strength 0
    assert clean[2] <= 0.15
    assert clean[3] >= 0.4
    # Mild violations keep the ranking broadly intact (paper's finding).
    mild = results[1]
    if mild[1] <= 0.25:
        assert mild[3] >= 0.2
