"""Figure 10: local explanations — LEWIS vs LIME vs SHAP.

For a rejected and an approved individual on German and Adult, the
benchmark regenerates the three methods' local rankings. Asserted shape:
all three agree that *some* attribute matters, and LEWIS's top factor is
causally meaningful (has a non-trivial score), while the LIME/SHAP
orderings can differ — the paper's central observation that the causal
ranking and the correlational rankings diverge.
"""

import pytest

from repro.xai.lime import LimeExplainer
from repro.xai.shap import KernelShapExplainer

from benchmarks.conftest import write_report


def _compare_local(lewis, index, seed=0):
    features = lewis.data.select(lewis.attributes)
    row_codes = {
        name: int(features.codes(name)[index]) for name in lewis.attributes
    }
    predict = lewis.predict_positive
    lewis_exp = lewis.explain_local(index=index)
    lime_exp = LimeExplainer(
        predict, features, attributes=lewis.attributes, n_samples=600, seed=seed
    ).explain(row_codes)
    shap_exp = KernelShapExplainer(
        predict, features, attributes=lewis.attributes, n_background=25, seed=seed
    ).explain(row_codes)
    return lewis_exp, lime_exp, shap_exp


def _render(title, lewis_exp, lime_exp, shap_exp):
    lines = [title, f"{'attribute':16s} {'LEWIS+':>7s} {'LEWIS-':>7s} {'LIME':>7s} {'SHAP':>7s}"]
    for c in lewis_exp.contributions:
        lines.append(
            f"{c.attribute:16s} {c.positive:7.2f} {c.negative:7.2f} "
            f"{lime_exp.weights[c.attribute]:7.3f} {shap_exp.values[c.attribute]:7.3f}"
        )
    return lines


@pytest.mark.parametrize("dataset,fig", [("german", "fig10ab"), ("adult", "fig10cd")])
def test_fig10_local_method_comparison(benchmark, explainers, dataset, fig):
    lewis = explainers[dataset]
    neg = int(lewis.negative_indices()[0])
    pos = int(lewis.positive_indices()[0])

    def run():
        return (_compare_local(lewis, neg), _compare_local(lewis, pos))

    (neg_cmp, pos_cmp) = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = _render(
        f"Figure 10 ({dataset}) - negative-outcome instance", *neg_cmp
    ) + [""] + _render(
        f"Figure 10 ({dataset}) - positive-outcome instance", *pos_cmp
    )
    write_report(f"{fig}_{dataset}_local_methods", lines)

    lewis_neg, lime_neg, shap_neg = neg_cmp
    # LEWIS finds at least one actionable negative contributor.
    assert max(c.negative for c in lewis_neg.contributions) > 0.1
    # LIME and SHAP produce non-degenerate weights on the same instance.
    assert any(abs(w) > 1e-3 for w in lime_neg.weights.values())
    assert any(abs(v) > 1e-3 for v in shap_neg.values.values())
